"""Gao-Rexford route propagation over an AS-relationship graph.

One anycast deployment is a set of *announcements* — (origin AS, site)
pairs, optionally path-prepended or scoped — and propagation answers,
for every AS in the graph, "which site does your best route lead to?"
under the standard policy model:

* **local preference**: routes learned from customers beat routes
  learned from peers beat routes learned from providers (money talks);
* **path length**: within a preference class, shorter AS paths win;
* **deterministic tiebreak**: equal (class, length) routes resolve by a
  keyed per-AS hash of (AS, announcement) — the stand-in for the
  router-ID tiebreak.  A global "lowest announcement wins" rule would
  hand every tie in a short-diameter graph to the same site, collapsing
  anycast catchments to near-unicast; the per-AS hash spreads ties
  across sites the way arbitrary router IDs do, while staying a pure
  function of the inputs;
* **valley-free export**: customer-learned (and self-originated) routes
  are exported to everyone; peer- and provider-learned routes are
  exported to customers only.

The classic consequence is the three-phase structure this module
implements directly: customer routes climb provider edges from the
origins (phase 1), cross at most one peer edge (phase 2), then descend
customer edges (phase 3).  Each phase is a deterministic bucketed BFS
(Dial's algorithm over unit edge weights, with prepends as longer
starting distances).

Two policy violations are modelled on purpose, because the chaos layer
injects them:

* a **route leak** (``Announcement.leak=True``) re-exports an already
  learned route as if it were a customer route — seeded into phase 1 at
  the leaker with the leaked path's length, exactly the Gao-Rexford
  violation that makes real leaks attract traffic uphill;
* a **regional announcement** (``scope="customer-cone"``) skips phases
  1 and 2 for that origin: the route exists only at the origin AS and
  inside its customer cone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .graph import AsGraph

#: Route preference classes, in decreasing preference order.
CLASS_CUSTOMER = 0  # learned from a customer (or self-originated)
CLASS_PEER = 1      # learned from a peer
CLASS_PROVIDER = 2  # learned from a provider
CLASS_NONE = 3      # no route

SCOPE_GLOBAL = "global"
SCOPE_CUSTOMER_CONE = "customer-cone"


@dataclass(frozen=True)
class Announcement:
    """One origin's announcement of the prefix under propagation."""

    origin_as: int
    #: Site index this origin belongs to (what catchments resolve to).
    site: int
    #: AS-path prepending: the announcement starts ``prepend`` hops
    #: "long", making it uniformly less attractive — the classic
    #: catchment-drain knob (Tangled's "AS-path prepend" experiment).
    prepend: int = 0
    #: ``"global"`` exports normally; ``"customer-cone"`` restricts the
    #: announcement to the origin and its customer cone (a regional /
    #: no-export announcement).
    scope: str = SCOPE_GLOBAL
    #: A leaked route: injected into the customer-route phase although
    #: its real provenance is a peer/provider route at the leaker.
    leak: bool = False

    def __post_init__(self) -> None:
        if self.prepend < 0:
            raise ValueError("prepend must be non-negative")
        if self.scope not in (SCOPE_GLOBAL, SCOPE_CUSTOMER_CONE):
            raise ValueError(f"unknown announcement scope {self.scope!r}")


@dataclass
class RoutingOutcome:
    """Per-AS best-route summary for one propagated prefix."""

    #: Winning site per AS; -1 where the prefix is unreachable.
    site: np.ndarray
    #: AS-path length of the best route (prepends included); large
    #: sentinel where unreachable.
    path_len: np.ndarray
    #: Preference class of the best route (CLASS_* codes).
    route_class: np.ndarray
    #: Index (into the propagated announcement list) of the winner.
    announcement: np.ndarray
    #: True where the best route was learned through a leaked
    #: announcement — the traffic a route leak actually captures.
    via_leak: np.ndarray

    @property
    def reachable(self) -> np.ndarray:
        return self.site >= 0

    def captured_by(self, announcement_index: int) -> np.ndarray:
        """Boolean mask of ASes whose best route is one announcement's."""
        return self.announcement == announcement_index


def _tiebreak(a: int, i: int) -> int:
    """Router-ID stand-in: AS ``a``'s preference key for announcement ``i``.

    A deterministic 32-bit mix — equal-(class, length) routes at one AS
    resolve to the announcement minimizing this key.  Keying on the AS
    index spreads ties across announcements instead of handing them all
    to a global favourite.
    """
    x = (a * 2_654_435_761 + i * 97_003) & 0xFFFFFFFF
    x ^= x >> 16
    x = (x * 0x45D9F3B) & 0xFFFFFFFF
    x ^= x >> 16
    return x


def _settle_bucketed(
    n: int,
    seeds: Sequence[Tuple[int, int, int]],
    neighbors,
    expandable,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Deterministic multi-source BFS with per-seed start distances.

    ``seeds`` are ``(as_index, start_dist, announcement_index)``;
    ``neighbors(a)`` yields the frontier expansion of a settled AS;
    ``expandable(a, ann)`` gates whether a settled AS forwards at all.

    Ties at equal distance settle by the per-AS :func:`_tiebreak` key.

    Returns (dist, ann, settled_mask).
    """
    INF = np.iinfo(np.int32).max
    dist = np.full(n, INF, dtype=np.int64)
    ann = np.full(n, -1, dtype=np.int64)
    settled = np.zeros(n, dtype=bool)
    if not seeds:
        return dist, ann, settled

    buckets: dict = {}
    for a, d, i in seeds:
        buckets.setdefault(int(d), []).append((int(i), int(a)))

    d = min(buckets)
    max_guard = n + max(buckets) + 2
    while buckets and d <= max_guard:
        entries = buckets.pop(d, None)
        if entries is None:
            d += 1
            continue
        # Per-AS keyed tiebreak within a distance bucket: group entries
        # by AS, most-preferred candidate first; first settle wins.
        entries.sort(key=lambda t: (t[1], _tiebreak(t[1], t[0]), t[0]))
        for i, a in entries:
            if settled[a]:
                continue
            settled[a] = True
            dist[a] = d
            ann[a] = i
            if not expandable(a, i):
                continue
            nxt = neighbors(a)
            if len(nxt):
                bucket = buckets.setdefault(d + 1, [])
                for b in nxt:
                    if not settled[b]:
                        bucket.append((i, int(b)))
        d += 1
    return dist, ann, settled


def propagate(
    graph: AsGraph, announcements: Sequence[Announcement]
) -> RoutingOutcome:
    """Best valley-free route per AS for one prefix's announcement set.

    Equal (class, length) routes at an AS resolve by the keyed per-AS
    :func:`_tiebreak` — deterministic for a fixed announcement list, and
    stable under *appending* announcements (existing indices keep their
    keys), so injecting an attacker announcement never reshuffles the
    baseline part of the catchment.
    """
    n = graph.n_ases
    INF = np.iinfo(np.int32).max
    anns = list(announcements)
    for a in anns:
        if not 0 <= a.origin_as < n:
            raise ValueError(f"announcement origin {a.origin_as} out of range")

    # ---- Phase 1: customer routes climb provider edges -----------------
    # Cone-scoped origins hold their route but do not export upward; leak
    # seeds are exactly the violation: a non-customer route entering the
    # customer phase.
    seeds1 = [(a.origin_as, a.prepend, i) for i, a in enumerate(anns)]
    up_expandable = [
        a.scope == SCOPE_GLOBAL or a.leak for a in anns
    ]
    dist1, ann1, has1 = _settle_bucketed(
        n,
        seeds1,
        neighbors=graph.providers_of,
        expandable=lambda a, i: up_expandable[i],
    )

    # ---- Phase 2: one peer hop ----------------------------------------
    # Customer routes (and global origins) cross a single peer edge; the
    # receiver prefers any customer route it already holds.
    dist2 = np.full(n, INF, dtype=np.int64)
    ann2 = np.full(n, -1, dtype=np.int64)
    has2 = np.zeros(n, dtype=bool)
    for a in np.nonzero(has1)[0]:
        i = int(ann1[a])
        if not up_expandable[i]:
            continue
        d = int(dist1[a]) + 1
        for b in graph.peers_of(int(a)):
            if has1[b]:
                continue
            bi = int(b)
            cand = (d, _tiebreak(bi, i), i)
            held = (
                (int(dist2[bi]), _tiebreak(bi, int(ann2[bi])), int(ann2[bi]))
                if has2[bi]
                else (INF, 0, 0)
            )
            if cand < held:
                dist2[bi] = d
                ann2[bi] = i
                has2[bi] = True

    # ---- Phase 3: provider routes descend customer edges ---------------
    # Every routed AS exports its best route to its customers; customers
    # holding a customer/peer route refuse (local pref), the rest accept
    # and keep descending.  Routed ASes are *seeds only* — they push
    # candidates downhill but can never be resettled, even by a shorter
    # provider route, which is exactly what local preference demands.
    best_dist = np.where(has1, dist1, dist2)
    best_ann = np.where(has1, ann1, ann2)
    routed = has1 | has2
    dist3 = np.full(n, INF, dtype=np.int64)
    ann3 = np.full(n, -1, dtype=np.int64)
    has3 = np.zeros(n, dtype=bool)
    buckets: dict = {}
    for a in np.nonzero(routed)[0]:
        d = int(best_dist[a]) + 1
        i = int(best_ann[a])
        for b in graph.customers_of(int(a)):
            if not routed[b]:
                buckets.setdefault(d, []).append((i, int(b)))
    if buckets:
        d = min(buckets)
        max_guard = n + max(buckets) + 2
        while buckets and d <= max_guard:
            entries = buckets.pop(d, None)
            if entries is None:
                d += 1
                continue
            entries.sort(key=lambda t: (t[1], _tiebreak(t[1], t[0]), t[0]))
            for i, a in entries:
                if routed[a] or has3[a]:
                    continue
                has3[a] = True
                dist3[a] = d
                ann3[a] = i
                bucket = buckets.setdefault(d + 1, [])
                for b in graph.customers_of(a):
                    if not routed[b] and not has3[b]:
                        bucket.append((i, int(b)))
            d += 1

    # ---- Merge by preference class ------------------------------------
    site_of = np.array([a.site for a in anns], dtype=np.int64)
    leak_of = np.array([a.leak for a in anns], dtype=bool)

    site = np.full(n, -1, dtype=np.int32)
    path_len = np.full(n, INF, dtype=np.int64)
    route_class = np.full(n, CLASS_NONE, dtype=np.int8)
    winner = np.full(n, -1, dtype=np.int64)
    via_leak = np.zeros(n, dtype=bool)

    for mask, dist, ann, cls in (
        (has1, dist1, ann1, CLASS_CUSTOMER),
        (has2, dist2, ann2, CLASS_PEER),
        (has3, dist3, ann3, CLASS_PROVIDER),
    ):
        take = mask & (route_class == CLASS_NONE)
        idx = np.nonzero(take)[0]
        if len(idx) == 0:
            continue
        winner[idx] = ann[idx]
        path_len[idx] = dist[idx]
        route_class[idx] = cls
        site[idx] = site_of[ann[idx]]
        via_leak[idx] = leak_of[ann[idx]]

    return RoutingOutcome(
        site=site,
        path_len=path_len,
        route_class=route_class,
        announcement=winner,
        via_leak=via_leak,
    )
