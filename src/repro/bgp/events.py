"""Routing chaos: keyed route-event injection against the census.

The hijack/leak detector is only as good as the adversities it has been
exercised against, so this module injects *routing-plane* events — BGP
facts, not measurement faults — and makes them visible to the census the
only way real ones are: through the RTT matrix they perturb.

* **MOAS hijack** — a second origin announces the victim /24; VPs whose
  best route prefers the attacker measure RTTs toward the attacker's
  location instead of their true catchment site.
* **Subprefix hijack** — the attacker announces a more-specific; longest
  prefix match wins everywhere, so every VP is captured at once.
* **Route leak** — a multihomed stub re-exports a learned route to its
  other provider (the Gao-Rexford violation); captured VPs keep their
  geolocation but their RTT inflates by the detour through the leaker.
* **Flap** — unstable announcements; a keyed subset of the victim's
  cells simply fails to measure this epoch.
* **Withdrawal** — the victim prefix vanishes from the routed table and
  therefore from the matrix.
* **Prepend / regional announce** — legitimate catchment engineering:
  the deployment re-announces with AS-path prepending or customer-cone
  scope at one site, moving VPs between sites with *plausible* RTTs.
  These must NOT alarm — they are what operators do on purpose.

Every draw is keyed on ``[_ROUTE_SALT, plan seed, event index, event
epoch]``: the same plan replayed against the same world perturbs the
same cells with the same values, no matter what ran before — the same
contract :mod:`repro.measurement.faults` established for measurement
chaos.  An empty plan is inert and leaves the matrix object untouched
(not copied), preserving byte-identical output for chaos-free runs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..geo.coords import pairwise_distances_km
from .propagation import Announcement, propagate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..census.combine import RttMatrix
    from ..internet.deployments import AnycastDeployment
    from ..internet.topology import SyntheticInternet

#: Domain separator for route-event draws; see module docstring.
_ROUTE_SALT = 0x40073


class RouteEventKind(str, enum.Enum):
    """The injectable routing-plane event types."""

    MOAS_HIJACK = "moas-hijack"
    SUBPREFIX_HIJACK = "subprefix-hijack"
    ROUTE_LEAK = "route-leak"
    FLAP = "flap"
    WITHDRAWAL = "withdrawal"
    PREPEND = "prepend"
    REGIONAL_ANNOUNCE = "regional-announce"


@dataclass(frozen=True)
class RouteEvent:
    """One routing-plane event, active for ``duration`` epochs.

    ``victim_prefix`` / ``attacker_city`` / ``leaker_as`` may be left
    unset, in which case the injector resolves them with a keyed draw —
    chaos suites get varied-but-reproducible targets without hand-picking
    them.
    """

    kind: RouteEventKind
    #: First epoch the event is active.
    epoch: int
    #: Number of consecutive epochs the event stays active.
    duration: int = 1
    #: /24 prefix index under attack/engineering; keyed draw when None.
    victim_prefix: Optional[int] = None
    #: Gazetteer city name the attacker announces from; keyed draw when None.
    attacker_city: Optional[str] = None
    #: Site index targeted by prepend/regional-announce/withdrawal.
    site_index: int = 0
    #: Hops prepended by a PREPEND event.
    prepend: int = 3
    #: Leaking AS index; keyed draw among multihomed stubs when None.
    leaker_as: Optional[int] = None
    #: Per-cell loss probability of a FLAP event.
    flap_loss: float = 0.5

    def __post_init__(self) -> None:
        self.__dict__["kind"] = RouteEventKind(self.kind)
        if self.epoch < 0:
            raise ValueError("event epoch must be non-negative")
        if self.duration < 1:
            raise ValueError("event duration must be >= 1")
        if self.site_index < 0:
            raise ValueError("site_index must be non-negative")
        if self.prepend < 1:
            raise ValueError("prepend must be >= 1")
        if not 0.0 < self.flap_loss <= 1.0:
            raise ValueError("flap_loss must be in (0, 1]")

    def active_at(self, epoch: int) -> bool:
        return self.epoch <= epoch < self.epoch + self.duration


@dataclass(frozen=True)
class RouteEventPlan:
    """A reproducible schedule of routing-plane events.

    The default plan is empty and *inert*: the injector returns the
    matrix object unchanged, so configurations that never mention chaos
    cannot be perturbed by it.
    """

    events: Tuple[RouteEvent, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        self.__dict__["events"] = tuple(self.events)

    @property
    def enabled(self) -> bool:
        return bool(self.events)

    @classmethod
    def single(cls, event: RouteEvent, seed: int = 0) -> "RouteEventPlan":
        return cls(events=(event,), seed=seed)

    def with_seed(self, seed: int) -> "RouteEventPlan":
        return replace(self, seed=seed)

    def events_at(self, epoch: int) -> List[Tuple[int, RouteEvent]]:
        """(plan index, event) pairs active at an epoch, in plan order."""
        return [(i, e) for i, e in enumerate(self.events) if e.active_at(epoch)]


class RouteEventInjector:
    """Applies a plan's active events to one epoch's RTT matrix.

    Requires a BGP-mode internet (``internet.bgp_plane`` must exist):
    route events are routing-plane facts, and capture sets come from real
    propagation over the AS graph, not from coin flips.
    """

    def __init__(self, plan: RouteEventPlan, internet: "SyntheticInternet") -> None:
        if getattr(internet, "bgp_plane", None) is None:
            raise ValueError(
                "route events require routing='bgp' (internet has no BGP plane)"
            )
        self.plan = plan
        self.internet = internet
        self.plane = internet.bgp_plane

    # ------------------------------------------------------------------
    # Keyed draws
    # ------------------------------------------------------------------

    def _rng(self, event_index: int, event: RouteEvent, *extra: int) -> np.random.Generator:
        return np.random.default_rng(
            [_ROUTE_SALT, self.plan.seed, event_index, event.epoch, *extra]
        )

    def _resolve_victim(
        self, event_index: int, event: RouteEvent, matrix: "RttMatrix"
    ) -> Optional[int]:
        """The /24 under attack; keyed draw from the kind's victim pool.

        Origin hijacks and route leaks default to *registered-unicast*
        victims — the canonical detectable incident (the paper's Sec. 5
        proposal scopes data-plane hijack detection to knowingly-unicast
        prefixes; attacks that merely add apparent sites to an existing
        anycast deployment sit below the detectability floor).  The
        anycast-native events (subprefix capture, flaps, withdrawals,
        traffic engineering) default to anycast victims.
        """
        if event.victim_prefix is not None:
            return int(event.victim_prefix)
        if event.kind in (RouteEventKind.MOAS_HIJACK, RouteEventKind.ROUTE_LEAK):
            pool = np.asarray(
                sorted(int(h.prefix) for h in self.internet.unicast_hosts)
            )
        else:
            pool = np.asarray(self.internet.prefixes[self.internet.is_anycast])
        present = pool[np.isin(pool, matrix.prefixes)]
        if len(present) == 0:
            return None
        rng = self._rng(event_index, event, 1)
        return int(present[int(rng.integers(0, len(present)))])

    def _resolve_attacker_city(self, event_index: int, event: RouteEvent, victim_sites):
        """Attacker's city — far from every victim site when keyed.

        An attacker inside a victim's own metro is below the census's
        detectability floor *by construction* (capture there looks
        exactly like traffic consolidating onto that site), so keyed
        draws prefer cities at least 1500 km from every victim site and
        only degrade when the gazetteer offers nothing farther.  An
        explicit ``attacker_city`` is honored verbatim — co-located
        attackers are a legitimate edge case to exercise.
        """
        cities = list(self.internet.city_db.cities)
        if event.attacker_city is not None:
            for c in cities:
                if c.name == event.attacker_city:
                    return c
            raise ValueError(f"unknown attacker city {event.attacker_city!r}")
        rng = self._rng(event_index, event, 2)
        order = rng.permutation(len(cities))
        site_lats = [p.lat for p in victim_sites]
        site_lons = [p.lon for p in victim_sites]
        for min_km in (1500.0, 0.0):
            for i in order:
                c = cities[int(i)]
                if site_lats:
                    d = pairwise_distances_km(
                        [c.location.lat], [c.location.lon], site_lats, site_lons
                    )[0]
                    if (d < min_km).any():
                        continue
                return c
        return cities[int(order[0])]

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------

    def perturb(
        self, matrix: "RttMatrix", epoch: int
    ) -> Tuple["RttMatrix", List[Dict]]:
        """Apply all events active at ``epoch``; returns (matrix, records).

        With no active events the input matrix is returned *as is*.
        Otherwise a copy is perturbed and a JSON-ready record per event
        describes what was done (for the archive manifest).
        """
        active = self.plan.events_at(epoch)
        if not active:
            return matrix, []

        from ..census.combine import RttMatrix

        work = RttMatrix(
            prefixes=matrix.prefixes.copy(),
            vp_names=list(matrix.vp_names),
            vp_locations=list(matrix.vp_locations),
            rtt_ms=matrix.rtt_ms.copy(),
            sample_count=matrix.sample_count.copy(),
        )
        records: List[Dict] = []
        for event_index, event in active:
            record = {
                "kind": event.kind.value,
                "event_index": event_index,
                "epoch": epoch,
                "applied": False,
            }
            victim = self._resolve_victim(event_index, event, work)
            if victim is None or victim not in set(int(p) for p in work.prefixes):
                record["reason"] = "victim prefix absent from matrix"
                records.append(record)
                continue
            record["prefix"] = int(victim)
            handler = {
                RouteEventKind.MOAS_HIJACK: self._apply_moas,
                RouteEventKind.SUBPREFIX_HIJACK: self._apply_subprefix,
                RouteEventKind.ROUTE_LEAK: self._apply_leak,
                RouteEventKind.FLAP: self._apply_flap,
                RouteEventKind.WITHDRAWAL: self._apply_withdrawal,
                RouteEventKind.PREPEND: self._apply_engineering,
                RouteEventKind.REGIONAL_ANNOUNCE: self._apply_engineering,
            }[event.kind]
            work = handler(work, epoch, event_index, event, victim, record)
            records.append(record)
        return work, records

    # -- helpers --------------------------------------------------------

    def _vp_coords(self, matrix: "RttMatrix") -> Tuple[np.ndarray, np.ndarray]:
        lats = np.array([p.lat for p in matrix.vp_locations], dtype=np.float64)
        lons = np.array([p.lon for p in matrix.vp_locations], dtype=np.float64)
        return lats, lons

    def _deployment_for(self, victim: int) -> Optional["AnycastDeployment"]:
        try:
            return self.internet.deployment_of(victim)
        except KeyError:
            return None

    def _rewrite_cells(
        self,
        matrix: "RttMatrix",
        row: int,
        captured: np.ndarray,
        distances_km: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Re-measure captured cells as paths to a new location."""
        latency = self.internet.config.latency
        base = latency.path_rtt_ms(distances_km[captured], rng)
        matrix.rtt_ms[row, captured] = latency.probe_rtt_ms(base, rng).astype(np.float32)
        matrix.sample_count[row, captured] = np.maximum(
            matrix.sample_count[row, captured], 1
        )

    # -- event handlers -------------------------------------------------

    def _apply_moas(self, matrix, epoch, event_index, event, victim, record):
        # MOAS works against anycast deployments *and* unicast prefixes —
        # the detectable (and canonical) incident is an attacker
        # originating a registered-unicast prefix, which turns it
        # apparently anycast in the next census.
        dep = self._deployment_for(victim)
        host = None if dep is not None else self._unicast_host_for(victim)
        if dep is None and host is None:
            record["reason"] = "victim prefix unknown to the substrate"
            return matrix
        victim_sites = (
            [r.location for r in dep.replicas]
            if dep is not None
            else [host.location]
        )
        attacker = self._resolve_attacker_city(event_index, event, victim_sites)
        attacker_as = int(
            self.plane.attach_infrastructure(
                [attacker.location.lat], [attacker.location.lon]
            )[0]
        )
        vp_lats, vp_lons = self._vp_coords(matrix)
        vp_as = self.plane.attach_clients(vp_lats, vp_lons)
        if dep is not None:
            extra = Announcement(origin_as=attacker_as, site=dep.site_count)
            routes = self.plane.deployment_routes(dep, extra=[extra])
            attacker_idx = len(routes.announcements) - 1
            captured = routes.outcome.announcement[vp_as] == attacker_idx
        else:
            origin = int(
                self.plane.attach_clients(
                    [host.location.lat], [host.location.lon]
                )[0]
            )
            anns = (
                Announcement(origin_as=origin, site=0),
                Announcement(origin_as=attacker_as, site=1),
            )
            outcome = propagate(self.plane.graph, anns)
            captured = outcome.announcement[vp_as] == 1
        record.update(
            attacker_city=attacker.name,
            attacker_as=attacker_as,
            captured_vps=int(captured.sum()),
            vp_fraction=float(captured.mean()) if len(captured) else 0.0,
        )
        if not captured.any():
            record["reason"] = "attacker captured no vantage points"
            return matrix
        row = matrix.row_of(victim)
        d = pairwise_distances_km(
            vp_lats, vp_lons, [attacker.location.lat], [attacker.location.lon]
        )[:, 0]
        self._rewrite_cells(matrix, row, captured, d, self._rng(event_index, event, 3))
        record["applied"] = True
        return matrix

    def _apply_subprefix(self, matrix, epoch, event_index, event, victim, record):
        dep = self._deployment_for(victim)
        if dep is None:
            record["reason"] = "victim is unicast"
            return matrix
        attacker = self._resolve_attacker_city(
            event_index, event, [r.location for r in dep.replicas]
        )
        # Longest-prefix match beats policy: the more-specific wins at
        # every AS, so every VP measures the attacker.
        vp_lats, vp_lons = self._vp_coords(matrix)
        captured = np.ones(len(vp_lats), dtype=bool)
        record.update(
            attacker_city=attacker.name,
            captured_vps=int(captured.sum()),
            vp_fraction=1.0,
        )
        row = matrix.row_of(victim)
        d = pairwise_distances_km(
            vp_lats, vp_lons, [attacker.location.lat], [attacker.location.lon]
        )[:, 0]
        self._rewrite_cells(matrix, row, captured, d, self._rng(event_index, event, 3))
        record["applied"] = True
        return matrix

    def _unicast_host_for(self, victim: int):
        for host in self.internet.unicast_hosts:
            if int(host.prefix) == victim:
                return host
        return None

    def _apply_leak(self, matrix, epoch, event_index, event, victim, record):
        # Leaks work against anycast deployments *and* unicast prefixes —
        # the canonical real-world incident is a multihomed stub leaking
        # someone's unicast route to its other provider.
        dep = self._deployment_for(victim)
        host = None if dep is not None else self._unicast_host_for(victim)
        if dep is None and host is None:
            record["reason"] = "victim prefix unknown to the substrate"
            return matrix
        vp_lats, vp_lons = self._vp_coords(matrix)
        vp_as = self.plane.attach_clients(vp_lats, vp_lons)
        if event.leaker_as is not None:
            candidates = [int(event.leaker_as)]
        else:
            pool = self.plane.graph.multihomed_stubs()
            if len(pool) == 0:
                record["reason"] = "no multihomed stub to leak through"
                return matrix
            rng = self._rng(event_index, event, 4)
            # A random stub often leaks into a corner of the topology no
            # vantage point routes through; try a bounded keyed sample
            # and keep the first leaker that actually captures traffic.
            order = rng.permutation(len(pool))[:16]
            candidates = [int(pool[int(i)]) for i in order]

        base = base_anns = base_outcome = None
        if dep is not None:
            base = self.plane.deployment_routes(dep)
            old_site = self.plane.catchment(dep, vp_lats, vp_lons, routes=base)
            old_lats = np.array([dep.replicas[int(s)].location.lat for s in old_site])
            old_lons = np.array([dep.replicas[int(s)].location.lon for s in old_site])
        else:
            origin = int(
                self.plane.attach_clients([host.location.lat], [host.location.lon])[0]
            )
            base_anns = (Announcement(origin_as=origin, site=0),)
            base_outcome = propagate(self.plane.graph, base_anns)
            old_lats = np.full(len(vp_lats), host.location.lat)
            old_lons = np.full(len(vp_lats), host.location.lon)
        # Element-wise VP -> old-endpoint distances (the pairwise helper
        # is all-pairs; these are matched pairs).
        d_old = np.array(
            [
                pairwise_distances_km(
                    [vp_lats[j]], [vp_lons[j]], [old_lats[j]], [old_lons[j]]
                )[0, 0]
                for j in range(len(vp_lats))
            ]
        )

        def detour_ms(leaker: int, site_loc, captured: np.ndarray) -> np.ndarray:
            """RTT inflation per VP: VP -> leaker -> leaked endpoint,
            versus the direct path to the VP's old endpoint.  Same
            endpoints as far as geolocation is concerned (RTT grows,
            position does not move) — the signature the leak verdict
            keys on."""
            leaker_lat = self.plane.graph.lats[leaker]
            leaker_lon = self.plane.graph.lons[leaker]
            d_vp_leaker = pairwise_distances_km(
                vp_lats, vp_lons, [leaker_lat], [leaker_lon]
            )[:, 0]
            d_leaker_site = pairwise_distances_km(
                [leaker_lat], [leaker_lon], [site_loc.lat], [site_loc.lon]
            )[0, 0]
            detour_km = np.maximum(d_vp_leaker + d_leaker_site - d_old, 0.0)
            return self.internet.config.latency.propagation_rtt_ms(
                detour_km
            ).astype(np.float32)

        chosen = None
        best_score = 0.0
        reason = "leaker holds no route to victim"
        for leaker in candidates:
            if dep is not None:
                leak_site = int(base.outcome.site[leaker])
                if leak_site < 0:
                    continue
                leak_ann = Announcement(
                    origin_as=leaker, site=leak_site,
                    prepend=int(base.outcome.path_len[leaker]), leak=True,
                )
                outcome = self.plane.deployment_routes(dep, extra=[leak_ann]).outcome
                loc = dep.replicas[leak_site].location
            else:
                leak_site = 0
                if int(base_outcome.site[leaker]) < 0:
                    continue
                leak_ann = Announcement(
                    origin_as=leaker, site=0,
                    prepend=int(base_outcome.path_len[leaker]), leak=True,
                )
                outcome = propagate(self.plane.graph, base_anns + (leak_ann,))
                loc = host.location
            captured = outcome.via_leak[vp_as]
            if not captured.any():
                reason = "leak captured no vantage points"
                continue
            # Prefer the leaker whose detour is both wide and *slow*: a
            # stub on the victim's own path detours nothing and leaves
            # no census-visible symptom.
            inflation = detour_ms(leaker, loc, captured)
            score = float(captured.sum()) * (
                1.0 + float(np.median(inflation[captured]))
            )
            if score > best_score:
                best_score = score
                chosen = (leaker, leak_site, captured, loc, inflation)
        if chosen is None:
            record["reason"] = reason
            return matrix
        leaker, leak_site, captured, site_loc, inflation = chosen
        record.update(
            leaker_as=leaker,
            leak_site=leak_site,
            captured_vps=int(captured.sum()),
            vp_fraction=float(captured.mean()) if len(captured) else 0.0,
        )
        row = matrix.row_of(victim)
        cells = captured & ~np.isnan(matrix.rtt_ms[row])
        matrix.rtt_ms[row, cells] += inflation[cells]
        record["applied"] = bool(cells.any())
        if not record["applied"]:
            record["reason"] = "no measured cells to inflate"
        record["median_inflation_ms"] = (
            float(np.median(inflation[cells])) if cells.any() else 0.0
        )
        return matrix

    def _apply_flap(self, matrix, epoch, event_index, event, victim, record):
        rng = self._rng(event_index, event, epoch, 5)
        row = matrix.row_of(victim)
        lost = rng.random(matrix.n_vps) < event.flap_loss
        measured = ~np.isnan(matrix.rtt_ms[row])
        lost &= measured
        matrix.rtt_ms[row, lost] = np.nan
        matrix.sample_count[row, lost] = 0
        record.update(
            lost_vps=int(lost.sum()),
            vp_fraction=float(lost.mean()) if len(lost) else 0.0,
            applied=bool(lost.any()),
        )
        return matrix

    def _apply_withdrawal(self, matrix, epoch, event_index, event, victim, record):
        from ..census.combine import RttMatrix

        row = matrix.row_of(victim)
        keep = np.ones(matrix.n_targets, dtype=bool)
        keep[row] = False
        record.update(applied=True)
        return RttMatrix(
            prefixes=matrix.prefixes[keep],
            vp_names=matrix.vp_names,
            vp_locations=matrix.vp_locations,
            rtt_ms=matrix.rtt_ms[keep],
            sample_count=matrix.sample_count[keep],
        )

    def _apply_engineering(self, matrix, epoch, event_index, event, victim, record):
        """Prepend / regional announce: legitimate catchment movement."""
        dep = self._deployment_for(victim)
        if dep is None:
            record["reason"] = "victim is unicast"
            return matrix
        site = min(event.site_index, dep.site_count - 1)
        if event.kind is RouteEventKind.PREPEND:
            routes = self.plane.deployment_routes(dep, prepend={site: event.prepend})
        else:
            routes = self.plane.deployment_routes(dep, regional={site})
        base = self.plane.deployment_routes(dep)
        vp_lats, vp_lons = self._vp_coords(matrix)
        old_site = self.plane.catchment(dep, vp_lats, vp_lons, routes=base)
        new_site = self.plane.catchment(dep, vp_lats, vp_lons, routes=routes)
        moved = old_site != new_site
        record.update(
            site_index=site,
            moved_vps=int(moved.sum()),
            vp_fraction=float(moved.mean()) if len(moved) else 0.0,
        )
        if not moved.any():
            record["reason"] = "engineering moved no vantage points"
            return matrix
        new_lats = np.array([dep.replicas[int(s)].location.lat for s in new_site])
        new_lons = np.array([dep.replicas[int(s)].location.lon for s in new_site])
        d_new = np.array(
            [
                pairwise_distances_km(
                    [vp_lats[j]], [vp_lons[j]], [new_lats[j]], [new_lons[j]]
                )[0, 0]
                for j in range(len(vp_lats))
            ]
        )
        rng = self._rng(event_index, event, 6)
        # Every prefix of the deployment moves together: the engineering
        # is per announcement, and all the deployment's /24s share it.
        wanted = np.fromiter((int(p) for p in dep.prefixes), dtype=np.int64)
        present_mask = np.isin(wanted, matrix.prefixes.astype(np.int64))
        rows = matrix.rows_of(wanted[present_mask])
        # Rows rewrite in deployment-prefix order: _rewrite_cells draws
        # from a sequential RNG stream, so the order is part of the bytes.
        for row in rows:
            self._rewrite_cells(matrix, int(row), moved, d_new, rng)
        record["applied"] = True
        record["prefixes_moved"] = int(present_mask.sum())
        return matrix
