"""Binding the BGP routing plane to the synthetic Internet.

:class:`BgpRoutingPlane` owns one AS-relationship graph and answers the
question the census actually cares about: *which replica site serves a
given client location?*  The pieces:

* **client attachment** — every coordinate (vantage point, unicast host)
  belongs to the geographically nearest *stub* AS: eyeballs live in
  access networks, and which access network is a deterministic function
  of where you are;
* **site attachment** — every anycast replica announces from the nearest
  *infrastructure* AS (tier-1 or transit): anycast sites sit in carrier
  PoPs, not in access networks;
* **per-deployment propagation** — the deployment's sites become one
  announcement set (in site order), Gao-Rexford propagation yields each
  AS's serving site, and the client attachment maps that to a
  per-client catchment.

Baseline routes are cached per deployment — BGP is stable on census
timescales, so every census epoch sees the same catchment unless a
routing *event* (prepend, regional announce, withdrawal, hijack)
explicitly perturbs the announcement set via the keyword arguments of
:meth:`BgpRoutingPlane.deployment_routes`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..geo.coords import pairwise_distances_km
from .graph import AsGraph, BgpConfig, build_as_graph
from .propagation import (
    SCOPE_CUSTOMER_CONE,
    SCOPE_GLOBAL,
    Announcement,
    RoutingOutcome,
    propagate,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..internet.deployments import AnycastDeployment
    from ..internet.topology import SyntheticInternet

#: Chunk size for client-attachment distance computations, bounding the
#: temporary distance matrix regardless of client count.
_ATTACH_CHUNK = 4096


@dataclass
class DeploymentRoutes:
    """Propagated routes of one deployment's announcement set."""

    announcements: Tuple[Announcement, ...]
    outcome: RoutingOutcome

    def site_for_ases(self, as_indices: np.ndarray) -> np.ndarray:
        """Serving site per AS index; -1 where unreachable."""
        return self.outcome.site[np.asarray(as_indices, dtype=np.int64)]


class BgpRoutingPlane:
    """The routing plane: one AS graph plus attachment and catchments."""

    def __init__(self, graph: AsGraph) -> None:
        self.graph = graph
        self._stubs = graph.stub_indices()
        self._infra = graph.infrastructure_indices()
        if len(self._stubs) == 0 or len(self._infra) == 0:
            raise ValueError("BGP graph needs both stub and infrastructure ASes")
        self._attach_cache: Dict[bytes, np.ndarray] = {}
        self._routes_cache: Dict[Tuple[int, int], DeploymentRoutes] = {}

    @classmethod
    def for_internet(cls, internet: "SyntheticInternet") -> "BgpRoutingPlane":
        """Build the plane for a synthetic Internet's configuration.

        The graph is keyed on the internet seed (unless the
        :class:`~repro.bgp.graph.BgpConfig` pins its own) and shares the
        internet's gazetteer, so AS homes and replica cities live in the
        same coordinate universe.
        """
        cfg = internet.config.bgp or BgpConfig()
        graph = build_as_graph(cfg, seed=internet.config.seed, city_db=internet.city_db)
        return cls(graph)

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------

    def attach_clients(
        self, lats: Sequence[float], lons: Sequence[float]
    ) -> np.ndarray:
        """Nearest stub AS per client coordinate (deterministic, no RNG)."""
        lats = np.asarray(lats, dtype=np.float64)
        lons = np.asarray(lons, dtype=np.float64)
        key = lats.tobytes() + lons.tobytes()
        cached = self._attach_cache.get(key)
        if cached is not None:
            return cached
        stub_lats = self.graph.lats[self._stubs]
        stub_lons = self.graph.lons[self._stubs]
        out = np.empty(len(lats), dtype=np.int64)
        for start in range(0, len(lats), _ATTACH_CHUNK):
            sl = slice(start, start + _ATTACH_CHUNK)
            d = pairwise_distances_km(lats[sl], lons[sl], stub_lats, stub_lons)
            out[sl] = self._stubs[np.argmin(d, axis=1)]
        out.setflags(write=False)
        self._attach_cache[key] = out
        return out

    def attach_infrastructure(
        self, lats: Sequence[float], lons: Sequence[float]
    ) -> np.ndarray:
        """Nearest infrastructure (tier-1/transit) AS per coordinate."""
        d = pairwise_distances_km(
            lats, lons, self.graph.lats[self._infra], self.graph.lons[self._infra]
        )
        return self._infra[np.argmin(d, axis=1)]

    def site_attachments(self, deployment: "AnycastDeployment") -> np.ndarray:
        """Origin AS per replica site (nearest infrastructure AS)."""
        rep_lats = [r.location.lat for r in deployment.replicas]
        rep_lons = [r.location.lon for r in deployment.replicas]
        return self.attach_infrastructure(rep_lats, rep_lons)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def announcements_for(
        self,
        deployment: "AnycastDeployment",
        *,
        prepend: Optional[Mapping[int, int]] = None,
        regional: Optional[Set[int]] = None,
        withdrawn: Optional[Set[int]] = None,
    ) -> Tuple[Announcement, ...]:
        """The deployment's announcement set, optionally engineered.

        ``prepend`` maps site index → prepended hops; ``regional``
        restricts those sites to their customer cone; ``withdrawn``
        removes sites outright.  A deployment configured with
        ``local_scope_km`` announces its secondary sites regionally —
        the BGP-mode reading of the geo-mode scope radius.
        """
        origins = self.site_attachments(deployment)
        anns = []
        for s, origin in enumerate(origins):
            if withdrawn and s in withdrawn:
                continue
            scope = SCOPE_GLOBAL
            if deployment.local_scope_km is not None and s > 0:
                scope = SCOPE_CUSTOMER_CONE
            if regional and s in regional:
                scope = SCOPE_CUSTOMER_CONE
            hops = int(prepend.get(s, 0)) if prepend else 0
            anns.append(
                Announcement(origin_as=int(origin), site=s, prepend=hops, scope=scope)
            )
        return tuple(anns)

    def deployment_routes(
        self,
        deployment: "AnycastDeployment",
        *,
        prepend: Optional[Mapping[int, int]] = None,
        regional: Optional[Set[int]] = None,
        withdrawn: Optional[Set[int]] = None,
        extra: Sequence[Announcement] = (),
    ) -> DeploymentRoutes:
        """Propagate one deployment's announcements (cached when pristine).

        ``extra`` announcements (hijackers, leaks) are appended *after*
        the deployment's own; the per-AS tiebreak keys of the baseline
        announcements are unchanged by the append, so the uncaptured part
        of the catchment stays exactly where it was.
        """
        pristine = not prepend and not regional and not withdrawn and not extra
        cache_key = (deployment.entry.asn, deployment.site_count)
        if pristine:
            cached = self._routes_cache.get(cache_key)
            if cached is not None:
                return cached
        anns = self.announcements_for(
            deployment, prepend=prepend, regional=regional, withdrawn=withdrawn
        )
        anns = anns + tuple(extra)
        if not anns:
            raise ValueError(
                f"{deployment.entry.name}: no announcements left to propagate"
            )
        routes = DeploymentRoutes(announcements=anns, outcome=propagate(self.graph, anns))
        if pristine:
            self._routes_cache[cache_key] = routes
        return routes

    # ------------------------------------------------------------------
    # Catchments
    # ------------------------------------------------------------------

    def catchment(
        self,
        deployment: "AnycastDeployment",
        client_lats: Sequence[float],
        client_lons: Sequence[float],
        *,
        routes: Optional[DeploymentRoutes] = None,
    ) -> np.ndarray:
        """Serving-site index per client — the BGP replacement for
        :meth:`repro.internet.deployments.AnycastDeployment.catchment`.

        Clients whose AS holds no route (possible only for cone-scoped
        announcement sets) fall back to the geographically nearest
        *globally announced* replica: their traffic still goes somewhere,
        just not via the engineered path.
        """
        routes = routes or self.deployment_routes(deployment)
        attach = self.attach_clients(client_lats, client_lons)
        site = routes.outcome.site[attach].astype(np.int64)
        unreachable = site < 0
        if unreachable.any():
            lats = np.asarray(client_lats, dtype=np.float64)[unreachable]
            lons = np.asarray(client_lons, dtype=np.float64)[unreachable]
            announced = {
                a.site for a in routes.announcements if a.site < deployment.site_count
            }
            candidates = sorted(
                {
                    a.site
                    for a in routes.announcements
                    if a.scope == SCOPE_GLOBAL and a.site < deployment.site_count
                }
                or announced
            ) or list(range(deployment.site_count))
            rep_lats = [deployment.replicas[s].location.lat for s in candidates]
            rep_lons = [deployment.replicas[s].location.lon for s in candidates]
            d = pairwise_distances_km(lats, lons, rep_lats, rep_lons)
            site[unreachable] = np.asarray(candidates, dtype=np.int64)[
                np.argmin(d, axis=1)
            ]
        return site
