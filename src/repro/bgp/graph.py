"""Synthetic CAIDA-style AS-relationship graph.

The CAIDA ``as-rel`` datasets describe the interdomain economy as two
edge kinds — provider-customer (``-1``) and peer-peer (``0``) — over a
graph with a characteristic shape: a small clique of tier-1 transit
providers peering with each other, a regional transit layer buying from
the clique (and selling downstream), and a large fringe of multihomed
stub networks that only buy.  :func:`build_as_graph` generates that
shape deterministically from a seed, with every AS homed in a gazetteer
city so that attachment (which AS serves a given coordinate) and
provider choice (networks buy transit nearby) stay geographically
plausible — the property that keeps BGP catchments correlated with, but
not equal to, great-circle proximity.

The graph is immutable once built and stored as flat CSR-style arrays
(providers / customers / peers per AS), which is what the propagation
engine's frontier sweeps consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..geo.cities import CityDB, default_city_db
from ..geo.coords import pairwise_distances_km

#: Domain separator for every graph-construction draw: AS placement,
#: provider choice and peering are keyed on ``[_GRAPH_SALT, seed]`` and
#: can never collide with measurement or fault streams.
_GRAPH_SALT = 0xA5E19

#: AS tier codes (stored per AS in :attr:`AsGraph.tier`).
TIER_T1 = 0
TIER_TRANSIT = 1
TIER_STUB = 2


@dataclass(frozen=True)
class BgpConfig:
    """Shape of the synthetic AS-relationship graph.

    The defaults give a ~1k-AS miniature with CAIDA-like proportions:
    a dozen-ish tier-1s, a ~15% transit layer, and a stub fringe whose
    multihoming degree matches the broad strokes of the real table
    (most stubs single- or dual-homed).
    """

    n_ases: int = 1024
    n_tier1: int = 10
    #: Fraction of non-tier-1 ASes acting as regional transit.
    transit_fraction: float = 0.15
    #: Mean provider count of a stub (1..3, drawn per stub).
    mean_providers: float = 1.8
    #: Mean peer edges per transit AS (beyond the tier-1 clique).
    peer_degree: float = 2.0
    #: Candidate pool for distance-weighted provider choice.
    provider_candidates: int = 12
    #: Graph seed; ``None`` inherits the internet seed at build time.
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_ases < 8:
            raise ValueError("n_ases must be >= 8")
        if not 2 <= self.n_tier1 <= self.n_ases // 2:
            raise ValueError("n_tier1 must be in [2, n_ases/2]")
        if not 0.0 < self.transit_fraction < 1.0:
            raise ValueError("transit_fraction must be in (0, 1)")
        if not 1.0 <= self.mean_providers <= 3.0:
            raise ValueError("mean_providers must be in [1, 3]")
        if self.peer_degree < 0.0:
            raise ValueError("peer_degree must be non-negative")
        if self.provider_candidates < 1:
            raise ValueError("provider_candidates must be >= 1")

    def with_seed(self, seed: int) -> "BgpConfig":
        from dataclasses import replace

        return replace(self, seed=seed)


class AsGraph:
    """An immutable AS-relationship graph in CSR form.

    ``providers_of(a)`` / ``customers_of(a)`` / ``peers_of(a)`` return
    index arrays; ``tier`` and ``lats``/``lons`` are parallel per-AS
    arrays.  Customer-provider edges are stored once and exposed from
    both ends.
    """

    def __init__(
        self,
        tier: np.ndarray,
        lats: np.ndarray,
        lons: np.ndarray,
        provider_edges: Sequence[Tuple[int, int]],
        peer_edges: Sequence[Tuple[int, int]],
    ) -> None:
        self.tier = np.asarray(tier, dtype=np.int8)
        self.lats = np.asarray(lats, dtype=np.float64)
        self.lons = np.asarray(lons, dtype=np.float64)
        n = len(self.tier)
        if len(self.lats) != n or len(self.lons) != n:
            raise ValueError("AsGraph array length mismatch")
        self._up_ptr, self._up_idx = _to_csr(
            n, [(c, p) for (c, p) in provider_edges]
        )
        self._down_ptr, self._down_idx = _to_csr(
            n, [(p, c) for (c, p) in provider_edges]
        )
        undirected = [(a, b) for (a, b) in peer_edges] + [
            (b, a) for (a, b) in peer_edges
        ]
        self._peer_ptr, self._peer_idx = _to_csr(n, undirected)
        self.provider_edges = tuple(provider_edges)
        self.peer_edges = tuple(peer_edges)

    @property
    def n_ases(self) -> int:
        return len(self.tier)

    @property
    def n_provider_edges(self) -> int:
        return len(self.provider_edges)

    @property
    def n_peer_edges(self) -> int:
        return len(self.peer_edges)

    def providers_of(self, a: int) -> np.ndarray:
        return self._up_idx[self._up_ptr[a] : self._up_ptr[a + 1]]

    def customers_of(self, a: int) -> np.ndarray:
        return self._down_idx[self._down_ptr[a] : self._down_ptr[a + 1]]

    def peers_of(self, a: int) -> np.ndarray:
        return self._peer_idx[self._peer_ptr[a] : self._peer_ptr[a + 1]]

    def stub_indices(self) -> np.ndarray:
        """ASes of the stub fringe (where eyeballs and VPs attach)."""
        return np.nonzero(self.tier == TIER_STUB)[0]

    def infrastructure_indices(self) -> np.ndarray:
        """Tier-1 + transit ASes (where anycast sites attach)."""
        return np.nonzero(self.tier != TIER_STUB)[0]

    def multihomed_stubs(self) -> np.ndarray:
        """Stubs with >= 2 providers — the route-leak candidates."""
        degree = np.diff(self._up_ptr)
        return np.nonzero((self.tier == TIER_STUB) & (degree >= 2))[0]


def _to_csr(n: int, edges: List[Tuple[int, int]]) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted CSR adjacency from a (src, dst) edge list."""
    if not edges:
        return np.zeros(n + 1, dtype=np.int64), np.empty(0, dtype=np.int64)
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    ptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(ptr, src + 1, 1)
    np.cumsum(ptr, out=ptr)
    return ptr, dst


def build_as_graph(
    config: Optional[BgpConfig] = None,
    seed: int = 2015,
    city_db: Optional[CityDB] = None,
) -> AsGraph:
    """Deterministically generate a CAIDA-shaped AS graph.

    Every draw comes from one generator keyed on
    ``[_GRAPH_SALT, effective seed]``: the same (config, seed) pair
    always yields the same graph, independent of anything else the
    process has computed.  ``config.seed`` (when set) wins over the
    ``seed`` argument, so a :class:`BgpConfig` can pin its own world.
    """
    cfg = config or BgpConfig()
    effective_seed = cfg.seed if cfg.seed is not None else seed
    rng = np.random.default_rng([_GRAPH_SALT, effective_seed])
    db = city_db or default_city_db()
    cities = list(db.cities)
    pops = np.array([c.population for c in cities], dtype=np.float64)
    weights = pops / pops.sum()

    n = cfg.n_ases
    n_t1 = cfg.n_tier1
    n_transit = max(1, int(round((n - n_t1) * cfg.transit_fraction)))
    n_stub = n - n_t1 - n_transit

    tier = np.empty(n, dtype=np.int8)
    tier[:n_t1] = TIER_T1
    tier[n_t1 : n_t1 + n_transit] = TIER_TRANSIT
    tier[n_t1 + n_transit :] = TIER_STUB

    # Tier-1s sit in the biggest cities (one each, deterministic order);
    # everything else lands population-weighted, repeats allowed — real
    # metros host many ASes.
    by_pop = sorted(range(len(cities)), key=lambda i: (-cities[i].population, i))
    t1_cities = by_pop[:n_t1]
    rest = rng.choice(len(cities), size=n - n_t1, replace=True, p=weights)
    city_of = np.concatenate([np.array(t1_cities, dtype=np.int64), rest])
    lats = np.array([cities[i].location.lat for i in city_of])
    lons = np.array([cities[i].location.lon for i in city_of])

    provider_edges: List[Tuple[int, int]] = []  # (customer, provider)
    peer_edges: List[Tuple[int, int]] = []

    # Tier-1 clique: settlement-free peering all around.
    for a in range(n_t1):
        for b in range(a + 1, n_t1):
            peer_edges.append((a, b))

    def pick_providers(a: int, pool: np.ndarray, count: int) -> np.ndarray:
        """Distance-weighted provider choice among a candidate pool.

        Transit is bought nearby: candidates are the
        ``provider_candidates`` geographically closest pool members,
        then ``count`` of them are drawn with inverse-distance weights.
        """
        d = pairwise_distances_km(
            lats[a : a + 1], lons[a : a + 1], lats[pool], lons[pool]
        )[0]
        k = min(cfg.provider_candidates, len(pool))
        nearest = pool[np.argsort(d, kind="stable")[:k]]
        dn = pairwise_distances_km(
            lats[a : a + 1], lons[a : a + 1], lats[nearest], lons[nearest]
        )[0]
        w = 1.0 / (dn + 200.0)
        w /= w.sum()
        count = min(count, len(nearest))
        return rng.choice(nearest, size=count, replace=False, p=w)

    # Transit layer: 1-2 providers each, drawn from tier-1s plus
    # already-wired transit ASes (earlier indices), giving the layer a
    # shallow hierarchy rather than a flat star.
    for a in range(n_t1, n_t1 + n_transit):
        pool = np.arange(0, a, dtype=np.int64)
        pool = pool[tier[pool] != TIER_STUB]
        count = 1 + int(rng.random() < 0.5)
        for p in pick_providers(a, pool, count):
            provider_edges.append((a, int(p)))

    # Transit peering: each transit AS peers with ~peer_degree of its
    # nearest transit siblings (deduplicated, no self-edges).
    transit = np.arange(n_t1, n_t1 + n_transit, dtype=np.int64)
    seen_peers = set()
    if len(transit) > 1 and cfg.peer_degree > 0:
        for a in transit:
            others = transit[transit != a]
            k = min(len(others), max(1, int(round(cfg.peer_degree))) + 2)
            d = pairwise_distances_km(
                lats[a : a + 1], lons[a : a + 1], lats[others], lons[others]
            )[0]
            near = others[np.argsort(d, kind="stable")[:k]]
            want = min(len(near), max(1, int(rng.poisson(cfg.peer_degree))))
            chosen = rng.choice(near, size=want, replace=False)
            for b in chosen:
                edge = (min(int(a), int(b)), max(int(a), int(b)))
                if edge not in seen_peers:
                    seen_peers.add(edge)
                    peer_edges.append(edge)

    # Stub fringe: 1-3 providers each, bought from the transit layer
    # (never from other stubs; stubs sell to nobody).
    infra = np.arange(0, n_t1 + n_transit, dtype=np.int64)
    lo = cfg.mean_providers - 1.0  # P(>=2 providers)
    for a in range(n_t1 + n_transit, n):
        u = rng.random()
        if lo >= 1.0:
            count = 2 + int(u < (cfg.mean_providers - 2.0))
        else:
            count = 1 + int(u < lo)
        for p in pick_providers(a, infra, count):
            provider_edges.append((a, int(p)))

    assert n_stub == n - n_t1 - n_transit
    return AsGraph(
        tier=tier,
        lats=lats,
        lons=lons,
        provider_edges=provider_edges,
        peer_edges=peer_edges,
    )
