"""A deterministic BGP routing plane for the synthetic Internet.

The paper's catchments — which client reaches which anycast replica —
are a product of interdomain routing policy, not geography.  The rest of
the repo approximates that with a per-(client, site) lognormal penalty
(``policy_sigma``); this package replaces the heuristic with the real
thing, behind ``InternetConfig(routing="bgp")``:

* :mod:`repro.bgp.graph` — a synthetic CAIDA-style AS-relationship graph
  (customer/provider/peer edges, tiered: clique of tier-1s, regional
  transit, multihomed stubs), every AS homed in a city;
* :mod:`repro.bgp.propagation` — Gao-Rexford route propagation over the
  graph: valley-free export, local-pref (customer > peer > provider)
  before path length before a deterministic tiebreak;
* :mod:`repro.bgp.plane` — the binding to the synthetic Internet: VPs
  and replica sites attach to ASes, per-deployment propagation yields
  per-VP serving sites (the BGP catchment);
* :mod:`repro.bgp.events` — keyed routing chaos: MOAS and subprefix
  hijacks, route leaks, flaps, withdrawals, and the catchment-
  engineering moves (prepend, regional announce), each visible to the
  census only through the RTT matrix it perturbs.

Everything is keyed, never streamed: graphs, attachments, catchments and
chaos draws are pure functions of their seeds, and ``routing="geo"``
(the default) leaves every existing output byte-identical.
"""

from .events import (
    RouteEvent,
    RouteEventInjector,
    RouteEventKind,
    RouteEventPlan,
)
from .graph import AsGraph, BgpConfig, build_as_graph
from .plane import BgpRoutingPlane
from .propagation import (
    CLASS_CUSTOMER,
    CLASS_PEER,
    CLASS_PROVIDER,
    Announcement,
    RoutingOutcome,
    propagate,
)

__all__ = [
    "Announcement",
    "AsGraph",
    "BgpConfig",
    "BgpRoutingPlane",
    "CLASS_CUSTOMER",
    "CLASS_PEER",
    "CLASS_PROVIDER",
    "RouteEvent",
    "RouteEventInjector",
    "RouteEventKind",
    "RouteEventPlan",
    "RoutingOutcome",
    "build_as_graph",
    "propagate",
]
