"""Multi-protocol recall model (paper Fig. 6, Sec. 3.4).

Before settling on ICMP, the paper measured a reduced target set with five
probe types — ICMP echo, TCP SYN to ports 53 and 80, and DNS queries over
UDP and TCP — and found that "protocols other than ICMP have a binary
recall: they work well only if the service is known a priori", while ICMP
replies across all deployments.

The model: a probe succeeds when the target actually runs the matching
service (from its catalog port/software profile), degraded by a small loss
rate; ICMP succeeds everywhere anycast infrastructure is deployed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..internet.deployments import AnycastDeployment
from ..net.services import SOFTWARE_CATALOG, SoftwareCategory


class ProbeProtocol(enum.Enum):
    """The five probe types of the paper's Fig. 6."""

    ICMP = "ICMP"
    TCP_53 = "TCP-53"
    TCP_80 = "TCP-80"
    DNS_UDP = "DNS/UDP"
    DNS_TCP = "DNS/TCP"


#: Residual loss even when the service exists (network noise, filtering).
BASE_LOSS = 0.04


def _runs_dns(dep: AnycastDeployment) -> bool:
    """Whether the deployment actually answers DNS queries.

    An open TCP port 53 is necessary but not sufficient (some CDNs keep it
    open for zone transfers without serving recursive queries); we require
    DNS software in the fingerprint profile as well.
    """
    if 53 not in dep.entry.ports:
        return False
    return any(
        SOFTWARE_CATALOG[name].category is SoftwareCategory.DNS
        for name in dep.entry.software
    )


def response_rate(
    dep: AnycastDeployment,
    protocol: ProbeProtocol,
    probes: int = 100,
    seed: int = 6,
) -> float:
    """Fraction of ``probes`` answered by the deployment for a protocol."""
    if probes < 1:
        raise ValueError("probes must be positive")
    if protocol is ProbeProtocol.ICMP:
        capable = True
    elif protocol is ProbeProtocol.TCP_53:
        capable = 53 in dep.entry.ports
    elif protocol is ProbeProtocol.TCP_80:
        capable = 80 in dep.entry.ports
    else:  # DNS over UDP or TCP
        capable = _runs_dns(dep)
    rng = np.random.default_rng(seed * 100_003 + dep.entry.asn + hash(protocol.value) % 1000)
    if not capable:
        # Binary recall: essentially nothing answers.
        return float((rng.random(probes) < 0.01).mean())
    return float((rng.random(probes) > BASE_LOSS).mean())


def protocol_recall_table(
    deployments: Sequence[AnycastDeployment],
    protocols: Sequence[ProbeProtocol] = tuple(ProbeProtocol),
    probes: int = 100,
) -> Dict[str, Dict[str, float]]:
    """Deployment-name -> protocol -> response rate (the Fig. 6 matrix)."""
    table: Dict[str, Dict[str, float]] = {}
    for dep in deployments:
        table[dep.entry.name] = {
            proto.value: response_rate(dep, proto, probes=probes) for proto in protocols
        }
    return table
