"""BGP-hijack inference from geo-inconsistency (paper Sec. 5).

The paper closes with a forward-looking application: "detecting
geo-inconsistencies for knowingly unicast prefixes is symptomatic of BGP
hijacking attacks" — a prefix that was unicast in the last census and
suddenly exhibits a speed-of-light violation is being announced from a
second location.

This module implements both halves of that pipeline:

* :func:`inject_hijack` — simulate an attack inside an existing RTT
  matrix: a subset of vantage points is captured by a bogus announcement
  and starts measuring RTTs to the attacker's site instead of the victim;
* :func:`detect_hijacks` — diff two census analyses and raise an alarm for
  every previously-unicast prefix that turned anycast, geolocating the
  apparent new origin (the attacker) from the replica set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

import numpy as np

from ..geo.cities import City
from ..geo.coords import GeoPoint, pairwise_distances_km
from ..net.latency import DEFAULT_MODEL, LatencyModel
from .analysis import AnalysisResult
from .combine import RttMatrix


@dataclass(frozen=True)
class HijackAlarm:
    """One previously-unicast prefix now showing geo-inconsistency."""

    prefix: int
    #: Replica cities enumerated after the event; for a genuine hijack,
    #: one of these is the legitimate origin and the others are attackers.
    observed_cities: List[City]
    #: Number of vantage points whose traffic is captured (lower bound:
    #: those contributing disks around the new origin).
    replica_count: int


def inject_hijack(
    matrix: RttMatrix,
    victim_prefix: int,
    attacker_location: GeoPoint,
    captured_fraction: float = 0.4,
    latency: LatencyModel = DEFAULT_MODEL,
    seed: int = 1,
) -> RttMatrix:
    """Return a copy of the matrix with a hijack of ``victim_prefix``.

    ``captured_fraction`` of the vantage points (chosen at random — BGP
    propagation is topology-, not geography-, driven) now reach the
    attacker's announcement; their RTTs are regenerated toward
    ``attacker_location`` with the same latency model the substrate uses,
    so the injected rows are physically consistent.
    """
    if not 0.0 < captured_fraction <= 1.0:
        raise ValueError("captured_fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    row = matrix.row_of(victim_prefix)
    rtt = matrix.rtt_ms.copy()

    captured = rng.random(matrix.n_vps) < captured_fraction
    if not captured.any():
        captured[int(rng.integers(0, matrix.n_vps))] = True
    vp_lats = np.array([p.lat for p in matrix.vp_locations])
    vp_lons = np.array([p.lon for p in matrix.vp_locations])
    distances = pairwise_distances_km(
        vp_lats[captured], vp_lons[captured],
        [attacker_location.lat], [attacker_location.lon],
    )[:, 0]
    base = latency.path_rtt_ms(distances, rng)
    new_rtts = latency.probe_rtt_ms(base, rng).astype(np.float32)
    # Captured VPs that previously had no reply now do (the attacker's
    # announcement answers), and vice-versa measurements are replaced.
    row_values = rtt[row].copy()
    row_values[captured] = new_rtts
    rtt[row] = row_values
    return RttMatrix(
        prefixes=matrix.prefixes,
        vp_names=matrix.vp_names,
        vp_locations=matrix.vp_locations,
        rtt_ms=rtt,
        sample_count=matrix.sample_count,
    )


def detect_hijacks(
    baseline: AnalysisResult,
    current: AnalysisResult,
    known_anycast: Optional[Set[int]] = None,
) -> List[HijackAlarm]:
    """Alarms for prefixes that turned anycast since the baseline census.

    ``known_anycast`` optionally whitelists prefixes known to be legitimate
    anycast (e.g. from an operator registry); they never raise alarms even
    if the baseline census happened to miss them.
    """
    baseline_anycast = set(baseline.anycast_prefixes)
    whitelist = known_anycast or set()
    alarms = []
    for prefix in current.anycast_prefixes:
        if prefix in baseline_anycast or prefix in whitelist:
            continue
        result = current.results[prefix]
        alarms.append(
            HijackAlarm(
                prefix=prefix,
                observed_cities=result.cities,
                replica_count=result.replica_count,
            )
        )
    return sorted(alarms, key=lambda a: a.prefix)
