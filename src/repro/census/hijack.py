"""Hijack and route-leak inference from census-over-routing diffs.

The paper closes with a forward-looking application (Sec. 5): "detecting
geo-inconsistencies for knowingly unicast prefixes is symptomatic of BGP
hijacking attacks".  The naive reading — alarm on every prefix that
turns anycast — drowns in false positives the moment the census itself
evolves: rosters churn, deployments legitimately grow replicas, prefixes
appear and disappear.  This module therefore classifies every
census-to-census routing change into a *typed verdict*:

* ``hijack`` — a new origin captured real traffic: a previously-unicast
  prefix shows a speed-of-light violation that survives roster
  restriction, or an anycast prefix collapsed onto a single location
  excluding every baseline site (the subprefix-capture signature);
* ``leak`` — geolocation unchanged but RTTs inflated on a cluster of
  vantage points beyond what the per-epoch noise floor explains: traffic
  detours through a leaking AS without moving the endpoints;
* ``legitimate-anycast-growth`` — new replicas that are explained by a
  whitelist, by roster additions (new vantage points seeing what was
  always there), or by modest, incoherent growth;
* ``site-drain`` — replicas disappeared or the prefix collapsed onto a
  subset of its known sites (maintenance, withdrawal, flap damage);
* ``new-prefix`` — the prefix was never seen before; there is no
  baseline claim to contradict, so nothing is alarmed.

Only ``hijack`` and ``leak`` are *alarming* verdicts; the rest document
benign evolution.  The legacy helpers (:func:`inject_hijack`,
:func:`detect_hijacks`) are kept for compatibility — with the
misclassification fixed where a prefix absent from the baseline census
used to alarm as a hijack.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..geo.cities import City
from ..geo.coords import GeoPoint, pairwise_distances_km
from ..geo.disks import FIBER_SPEED_KM_PER_MS
from ..net.latency import DEFAULT_MODEL, LatencyModel
from .analysis import AnalysisResult
from .combine import RttMatrix


@dataclass(frozen=True)
class HijackAlarm:
    """One previously-unicast prefix now showing geo-inconsistency."""

    prefix: int
    #: Replica cities enumerated after the event; for a genuine hijack,
    #: one of these is the legitimate origin and the others are attackers.
    observed_cities: List[City]
    #: Number of vantage points whose traffic is captured (lower bound:
    #: those contributing disks around the new origin).
    replica_count: int


class RoutingVerdict(str, enum.Enum):
    """Typed classification of one prefix's census-over-routing diff."""

    HIJACK = "hijack"
    LEAK = "leak"
    GROWTH = "legitimate-anycast-growth"
    SITE_DRAIN = "site-drain"
    NEW_PREFIX = "new-prefix"


#: Verdicts that page an operator; the rest are benign bookkeeping.
ALARMING_VERDICTS = frozenset({RoutingVerdict.HIJACK, RoutingVerdict.LEAK})


@dataclass(frozen=True)
class RoutingAlarm:
    """One typed verdict for one prefix, with its supporting evidence."""

    prefix: int
    verdict: RoutingVerdict
    #: Detector confidence in [0, 1] — driven by the capture fraction
    #: (hijack), inflated-VP excess over the noise floor (leak), or fixed
    #: for the benign verdicts.
    confidence: float
    #: ``"City,CC"`` strings observed after the change (sorted).
    observed_cities: List[str]
    replica_count: int
    baseline_replica_count: int
    #: One-line human-readable evidence summary.
    detail: str = ""

    @property
    def is_alarm(self) -> bool:
        return self.verdict in ALARMING_VERDICTS

    def to_doc(self) -> Dict:
        """JSON-ready form for the archive manifest."""
        return {
            "prefix": int(self.prefix),
            "verdict": self.verdict.value,
            "confidence": round(float(self.confidence), 4),
            "observed_cities": list(self.observed_cities),
            "replica_count": int(self.replica_count),
            "baseline_replica_count": int(self.baseline_replica_count),
            "detail": self.detail,
            "alarm": self.is_alarm,
        }


@dataclass(frozen=True)
class AlarmPolicy:
    """Thresholds separating attacks from benign routing evolution.

    ``min_capture_fraction`` is the hijack detectability floor for
    unicast→anycast flips: the new origin must coherently capture at
    least this fraction of the measured vantage points to be called a
    hijack — below it, the evidence is indistinguishable from growth
    and is classified as such.  (New cities on an *already anycast*
    prefix never alarm by themselves: an RTT disk cannot distinguish a
    new origin from an always-present site outside the baseline's
    sampled catchment.)
    ``leak_min_inflation_ms`` / ``leak_min_fraction`` are the leak
    floor; ``leak_sigma`` scales the self-calibrated noise allowance
    (per-cell RTT spikes make naive diff thresholds false-alarm, so the
    detector measures the background exceedance rate on every *other*
    row and requires the victim row to exceed it by ``leak_sigma``
    standard deviations).
    """

    min_capture_fraction: float = 0.08
    leak_min_inflation_ms: float = 30.0
    leak_min_fraction: float = 0.10
    leak_sigma: float = 4.0
    #: Slack added to disk containment checks (city gazetteer coarseness).
    containment_slack_km: float = 100.0
    #: Fraction of common-roster cells that must have moved materially
    #: for an anycast→unicast collapse to count as a subprefix capture
    #: (a more-specific hijack re-measures *every* vantage point; benign
    #: signature flicker re-routes only a few).
    collapse_rewrite_fraction: float = 0.5
    #: Background-excess rewrite fraction above which a collapse is a
    #: subprefix capture even when RTT geometry cannot exclude the
    #: baseline sites (a longest-prefix match wins at *every* AS, so
    #: essentially the whole row re-measures; a drained site moves only
    #: its own catchment).
    collapse_total_rewrite_fraction: float = 0.9
    #: Suppress unicast→anycast flips whose detection confidence was
    #: degraded by sanitization (quarantined VPs, low sample counts).
    suppress_low_confidence: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.min_capture_fraction <= 1.0:
            raise ValueError("min_capture_fraction must be in (0, 1]")
        if self.leak_min_inflation_ms <= 0:
            raise ValueError("leak_min_inflation_ms must be positive")
        if not 0.0 < self.leak_min_fraction <= 1.0:
            raise ValueError("leak_min_fraction must be in (0, 1]")
        if self.leak_sigma <= 0:
            raise ValueError("leak_sigma must be positive")
        if not 0.0 < self.collapse_rewrite_fraction <= 1.0:
            raise ValueError("collapse_rewrite_fraction must be in (0, 1]")
        if not 0.0 < self.collapse_total_rewrite_fraction <= 1.0:
            raise ValueError(
                "collapse_total_rewrite_fraction must be in (0, 1]"
            )


# ----------------------------------------------------------------------
# Legacy helpers (kept API-compatible)
# ----------------------------------------------------------------------


def inject_hijack(
    matrix: RttMatrix,
    victim_prefix: int,
    attacker_location: GeoPoint,
    captured_fraction: float = 0.4,
    latency: LatencyModel = DEFAULT_MODEL,
    seed: int = 1,
) -> RttMatrix:
    """Return a copy of the matrix with a hijack of ``victim_prefix``.

    ``captured_fraction`` of the vantage points (chosen at random — BGP
    propagation is topology-, not geography-, driven) now reach the
    attacker's announcement; their RTTs are regenerated toward
    ``attacker_location`` with the same latency model the substrate uses,
    so the injected rows are physically consistent.  For capture sets
    derived from actual route propagation, use
    :class:`repro.bgp.RouteEventInjector` instead.
    """
    if not 0.0 < captured_fraction <= 1.0:
        raise ValueError("captured_fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    row = matrix.row_of(victim_prefix)
    rtt = matrix.rtt_ms.copy()

    captured = rng.random(matrix.n_vps) < captured_fraction
    if not captured.any():
        captured[int(rng.integers(0, matrix.n_vps))] = True
    vp_lats = np.array([p.lat for p in matrix.vp_locations])
    vp_lons = np.array([p.lon for p in matrix.vp_locations])
    distances = pairwise_distances_km(
        vp_lats[captured], vp_lons[captured],
        [attacker_location.lat], [attacker_location.lon],
    )[:, 0]
    base = latency.path_rtt_ms(distances, rng)
    new_rtts = latency.probe_rtt_ms(base, rng).astype(np.float32)
    # Captured VPs that previously had no reply now do (the attacker's
    # announcement answers), and vice-versa measurements are replaced.
    row_values = rtt[row].copy()
    row_values[captured] = new_rtts
    rtt[row] = row_values
    return RttMatrix(
        prefixes=matrix.prefixes,
        vp_names=matrix.vp_names,
        vp_locations=matrix.vp_locations,
        rtt_ms=rtt,
        sample_count=matrix.sample_count,
    )


def detect_hijacks(
    baseline: AnalysisResult,
    current: AnalysisResult,
    known_anycast: Optional[Set[int]] = None,
) -> List[HijackAlarm]:
    """Alarms for prefixes that turned anycast since the baseline census.

    ``known_anycast`` optionally whitelists prefixes known to be legitimate
    anycast (e.g. from an operator registry); they never raise alarms even
    if the baseline census happened to miss them.

    A prefix that is *absent from the baseline census entirely* (newly
    routed, newly responsive) is a ``new-prefix``, not a hijack: there is
    no baseline unicast claim for the anycast observation to contradict,
    so it raises no alarm.
    """
    baseline_anycast = set(baseline.anycast_prefixes)
    baseline_seen = set(int(p) for p in baseline.prefixes)
    whitelist = known_anycast or set()
    alarms = []
    for prefix in current.anycast_prefixes:
        if prefix in baseline_anycast or prefix in whitelist:
            continue
        if prefix not in baseline_seen:
            # New prefix: nothing to contradict (satellite fix — this
            # used to alarm although the baseline never saw the prefix).
            continue
        result = current.results[prefix]
        alarms.append(
            HijackAlarm(
                prefix=prefix,
                observed_cities=result.cities,
                replica_count=result.replica_count,
            )
        )
    return sorted(alarms, key=lambda a: a.prefix)


# ----------------------------------------------------------------------
# Typed classification
# ----------------------------------------------------------------------


class _ViewResult:
    """Replica summary for one prefix, reconstructed from a document."""

    def __init__(self, replicas: List) -> None:
        self.replicas = replicas
        self.replica_count = len(replicas)
        self.city_names = sorted(
            {f"{r.city.name},{r.city.country}" for r in replicas}
        )


class _ViewReplica:
    """A replica with a city but no witnessing disk (archived form)."""

    def __init__(self, city: City) -> None:
        self.city = city
        self.disk = None


class DocAnalysisView:
    """:class:`AnalysisResult`-compatible facade over an archived
    results document.

    The longitudinal service archives per-epoch analyses as JSON; the
    routing classifier needs only prefix sets, replica cities with
    locations, and detection confidences — all of which the document
    carries.  (Witness disks are not archived, so the roster-witness
    suppression path degrades gracefully to the default growth verdict.)
    """

    def __init__(self, doc: Dict) -> None:
        targets = doc.get("targets", {})
        self._entries = {int(k): v for k, v in targets.items()}
        self.prefixes = np.array(sorted(self._entries), dtype=np.int64)
        self.anycast_prefixes = [
            p for p in sorted(self._entries) if self._entries[p].get("anycast")
        ]
        self.results: Dict[int, _ViewResult] = {}
        for p in self.anycast_prefixes:
            replicas = [
                _ViewReplica(
                    City(
                        name=rep["city"],
                        country=rep["country"],
                        location=GeoPoint(rep["lat"], rep["lon"]),
                        population=0.0,
                    )
                )
                for rep in self._entries[p].get("replicas", ())
            ]
            self.results[p] = _ViewResult(replicas)

    def confidence_of(self, prefix: int) -> str:
        return str(self._entries.get(int(prefix), {}).get("confidence", "full"))


def _radii_km(row: np.ndarray, speed_km_per_ms: float) -> np.ndarray:
    """Disk radius per VP for one RTT row (NaN-safe; NaN stays NaN)."""
    return np.asarray(row, dtype=np.float64) * speed_km_per_ms / 2.0


def _row_violates(
    matrix: RttMatrix, row_values: np.ndarray, keep: np.ndarray,
    speed_km_per_ms: float,
) -> bool:
    """Does one RTT row prove anycast using only the ``keep`` VPs?

    The single-row version of the census detection step: any pair of
    disks too far apart to overlap is a speed-of-light violation.
    """
    measured = keep & ~np.isnan(row_values)
    idx = np.nonzero(measured)[0]
    if len(idx) < 2:
        return False
    radii = _radii_km(row_values[idx], speed_km_per_ms)
    dist = matrix.vp_distance_matrix()[np.ix_(idx, idx)]
    return bool((dist > radii[:, None] + radii[None, :]).any())


def _capture_fraction(
    matrix: RttMatrix,
    row: int,
    baseline_points: Sequence[GeoPoint],
    new_points: Sequence[GeoPoint],
    speed_km_per_ms: float,
    slack_km: float,
) -> float:
    """Fraction of measured VPs coherently captured by a new origin.

    A VP is captured when its disk (an upper bound on its distance to
    whatever answered) *excludes every baseline position* — it cannot be
    talking to any site the baseline knew about — and, when candidate
    new positions are given, contains at least one of them.
    """
    values = matrix.rtt_ms[row]
    measured = ~np.isnan(values)
    idx = np.nonzero(measured)[0]
    if len(idx) == 0:
        return 0.0
    radii = _radii_km(values[idx], speed_km_per_ms)
    vp_lats = np.array([matrix.vp_locations[j].lat for j in idx])
    vp_lons = np.array([matrix.vp_locations[j].lon for j in idx])
    captured = np.ones(len(idx), dtype=bool)
    if baseline_points:
        d_base = pairwise_distances_km(
            vp_lats, vp_lons,
            [p.lat for p in baseline_points], [p.lon for p in baseline_points],
        )
        captured &= (d_base > radii[:, None] + slack_km).all(axis=1)
    if new_points:
        d_new = pairwise_distances_km(
            vp_lats, vp_lons,
            [p.lat for p in new_points], [p.lon for p in new_points],
        )
        captured &= (d_new <= radii[:, None] + slack_km).any(axis=1)
    return float(captured.mean())


def _replica_vp_names(
    result, matrix: RttMatrix, cities: Set[str]
) -> Set[str]:
    """Names of the VPs whose disks witnessed replicas in ``cities``.

    Disk centers are VP locations; matching them back to the matrix
    roster identifies which vantage points support each replica.
    """
    by_coord = {
        (round(p.lat, 6), round(p.lon, 6)): name
        for name, p in zip(matrix.vp_names, matrix.vp_locations)
    }
    names: Set[str] = set()
    for rep in result.replicas:
        key = f"{rep.city.name},{rep.city.country}"
        if key not in cities or rep.disk is None:
            continue
        center = rep.disk.center
        name = by_coord.get((round(center.lat, 6), round(center.lon, 6)))
        if name is not None:
            names.add(name)
    return names


class _LeakCalibration:
    """One-shot, self-calibrated RTT-inflation statistics for all prefixes.

    Per-cell RTT noise is heavy-tailed (probe spikes), so a fixed diff
    threshold false-alarms constantly.  Instead the background rate of
    ``diff > leak_min_inflation_ms`` is estimated over every *other*
    common row, and a victim row must exceed the binomial expectation by
    ``leak_sigma`` standard deviations *and* the leak floor.  The diff
    matrix over common (prefix, VP) cells is computed once; per-prefix
    queries are O(1).
    """

    def __init__(
        self,
        baseline_matrix: RttMatrix,
        current_matrix: RttMatrix,
        common: List[Tuple[int, int]],
        threshold_ms: float,
    ) -> None:
        self.threshold_ms = float(threshold_ms)
        self.prefixes = np.intersect1d(
            baseline_matrix.prefixes, current_matrix.prefixes
        )
        if not common or len(self.prefixes) < 2:
            self.prefixes = self.prefixes[:0]
            self.k = np.zeros(0, dtype=np.int64)
            self.n = np.zeros(0, dtype=np.int64)
            self.d = np.zeros(0, dtype=np.int64)
            self.c = np.zeros(0, dtype=np.int64)
            self.total_k = 0
            self.total_n = 0
            self.total_d = 0
            self.total_c = 0
            return
        base_cols = np.array([b for b, _ in common])
        cur_cols = np.array([c for _, c in common])
        b_rows = np.searchsorted(baseline_matrix.prefixes, self.prefixes)
        c_rows = np.searchsorted(current_matrix.prefixes, self.prefixes)
        diffs = (
            current_matrix.rtt_ms[np.ix_(c_rows, cur_cols)].astype(np.float64)
            - baseline_matrix.rtt_ms[np.ix_(b_rows, base_cols)].astype(np.float64)
        )
        measured = ~np.isnan(diffs)
        exceed = np.zeros_like(measured)
        exceed[measured] = diffs[measured] > self.threshold_ms
        deflate = np.zeros_like(measured)
        deflate[measured] = diffs[measured] < -self.threshold_ms
        self.k = exceed.sum(axis=1).astype(np.int64)
        self.n = measured.sum(axis=1).astype(np.int64)
        self.d = deflate.sum(axis=1).astype(np.int64)
        self.c = (exceed | deflate).sum(axis=1).astype(np.int64)
        self.total_k = int(self.k.sum())
        self.total_n = int(self.n.sum())
        self.total_d = int(self.d.sum())
        self.total_c = int(self.c.sum())

    def rewrite_stats(self, prefix: int) -> Tuple[int, int]:
        """(materially changed cells, measured cells) for one prefix.

        A subprefix capture re-measures *every* vantage point against the
        attacker's location, so nearly the whole row moves; benign
        signature flicker (a deployment growing or shrinking between
        censuses) re-routes only the vantage points whose best path
        actually changed.
        """
        pos = int(np.searchsorted(self.prefixes, prefix))
        if pos >= len(self.prefixes) or self.prefixes[pos] != prefix:
            return 0, 0
        return int(self.c[pos]), int(self.n[pos])

    def background_change_rate(self, prefix: int) -> float:
        """Fraction of *other* rows' common cells that moved materially.

        Near zero when the two matrices share keyed noise draws (the
        longitudinal-service regime, where unchanged world is
        byte-identical); large when the censuses drew noise
        independently — in which regime per-row change counts carry no
        routing signal and callers must discount them.
        """
        pos = int(np.searchsorted(self.prefixes, prefix))
        if pos >= len(self.prefixes) or self.prefixes[pos] != prefix:
            c = n = 0
        else:
            c, n = int(self.c[pos]), int(self.n[pos])
        return (self.total_c - c) / max(self.total_n - n, 1)

    def relocation_evidence(
        self, prefix: int, policy: AlarmPolicy
    ) -> Tuple[bool, float, str]:
        """(re_homed, confidence, detail): did the endpoint move wholesale?

        A *full-capture* MOAS hijack leaves no anycast signature — every
        vantage point reaches the attacker, so the prefix looks like a
        unicast host that teleported.  The signature needs both halves:
        nearly the whole common-roster row re-measured (excess over the
        background movement rate, so independently-drawn noise
        self-suppresses) AND a significant share of cells getting
        *faster* (some vantage points are closer to the new origin).  A
        leak fails the second half: a detour only ever inflates.
        """
        pos = int(np.searchsorted(self.prefixes, prefix))
        if pos >= len(self.prefixes) or self.prefixes[pos] != prefix:
            return False, 0.0, "prefix not in both matrices"
        n = int(self.n[pos])
        if n == 0:
            return False, 0.0, "victim row empty"
        c = int(self.c[pos])
        d = int(self.d[pos])
        bg_n = max(self.total_n - n, 1)
        excess = c / n - (self.total_c - c) / bg_n
        if excess < policy.collapse_rewrite_fraction:
            return False, 0.0, f"rewrite excess {excess:.0%} below floor"
        p_defl = (self.total_d - d) / bg_n
        exp_d = n * p_defl
        allow_d = policy.leak_sigma * float(
            np.sqrt(max(n * p_defl * (1.0 - p_defl), 0.25))
        )
        if d < max(exp_d + allow_d, 2.0):
            return False, 0.0, "no deflated cells; one-sided change"
        confidence = float(np.clip(0.5 + excess, 0.5, 1.0))
        detail = (
            f"unicast prefix re-homed: {c}/{n} common cells re-measured "
            f"({excess:.0%} over background), {d} got faster "
            "(full-capture hijack signature)"
        )
        return True, confidence, detail

    def evidence(self, prefix: int, policy: AlarmPolicy) -> Tuple[bool, float, str]:
        """(is_leak, confidence, detail) for one prefix's inflation."""
        pos = int(np.searchsorted(self.prefixes, prefix))
        if pos >= len(self.prefixes) or self.prefixes[pos] != prefix:
            return False, 0.0, "prefix not in both matrices"
        n = int(self.n[pos])
        k = int(self.k[pos])
        if n == 0:
            return False, 0.0, "victim row empty"
        deflated = int(self.d[pos])
        bg_n = max(self.total_n - n, 1)
        p_defl = (self.total_d - deflated) / bg_n
        exp_d = n * p_defl
        allow_d = policy.leak_sigma * float(
            np.sqrt(max(n * p_defl * (1.0 - p_defl), 0.25))
        )
        if deflated >= max(exp_d + allow_d, 2.0):
            # A leak is a pure detour: captured VPs get strictly slower,
            # the rest untouched.  Significantly more *faster* cells than
            # the background (spike-redraw) rate means the prefix
            # re-routed — new attachment, new sites, fresh noise draws —
            # not a leak.
            return False, 0.0, (
                f"{deflated}/{n} common VPs got faster; re-route, not a detour"
            )
        p_noise = (self.total_k - k) / bg_n
        expected = n * p_noise
        allowance = policy.leak_sigma * float(
            np.sqrt(max(n * p_noise * (1.0 - p_noise), 0.25))
        )
        floor = max(policy.leak_min_fraction * n, 2.0)
        is_leak = k >= max(expected + allowance, floor)
        confidence = 0.0
        if is_leak:
            headroom = (k - expected) / max(n - expected, 1e-9)
            confidence = float(np.clip(headroom, 0.5, 1.0))
        detail = (
            f"{k}/{n} common VPs inflated >{self.threshold_ms:g}ms "
            f"(noise floor {expected:.1f}±{allowance:.1f})"
        )
        return is_leak, confidence, detail


def classify_routing_changes(
    baseline: AnalysisResult,
    current: AnalysisResult,
    *,
    baseline_matrix: Optional[RttMatrix] = None,
    current_matrix: Optional[RttMatrix] = None,
    known_anycast: Optional[Set[int]] = None,
    baseline_vp_names: Optional[Sequence[str]] = None,
    policy: Optional[AlarmPolicy] = None,
    speed_km_per_ms: float = FIBER_SPEED_KM_PER_MS,
) -> List[RoutingAlarm]:
    """Typed verdict for every prefix whose routing story changed.

    The matrices are optional but load-bearing: without them the
    classifier falls back to analysis-level diffs only (no leak
    detection, no roster suppression, capture fraction assumed 1).
    ``baseline_vp_names`` is the baseline epoch's VP roster — used to
    recognise apparent changes that are really *roster* changes (a new
    VP seeing what was always there must not alarm).
    """
    policy = policy or AlarmPolicy()
    whitelist = known_anycast or set()
    baseline_any = set(baseline.anycast_prefixes)
    current_any = set(current.anycast_prefixes)
    baseline_seen = set(int(p) for p in baseline.prefixes)
    current_seen = set(int(p) for p in current.prefixes)

    common_pairs: List[Tuple[int, int]] = []
    common_names: Set[str] = set()
    if baseline_matrix is not None and current_matrix is not None:
        base_index = {n: j for j, n in enumerate(baseline_matrix.vp_names)}
        for j, name in enumerate(current_matrix.vp_names):
            if name in base_index:
                common_pairs.append((base_index[name], j))
                common_names.add(name)
    elif baseline_vp_names is not None and current_matrix is not None:
        common_names = set(baseline_vp_names) & set(current_matrix.vp_names)

    leak_cal: Optional[_LeakCalibration] = None
    if baseline_matrix is not None and current_matrix is not None:
        leak_cal = _LeakCalibration(
            baseline_matrix, current_matrix, common_pairs,
            policy.leak_min_inflation_ms,
        )

    # Bulk row lookups for every prefix the loops below will touch: one
    # vectorized searchsorted per matrix (RttMatrix.rows_of) instead of a
    # bisect per prefix per verdict branch.
    cur_rows: Dict[int, int] = {}
    base_rows: Dict[int, int] = {}
    if current_matrix is not None:
        wanted = np.fromiter(
            (int(p) for p in current_any | (baseline_any & current_seen)),
            dtype=np.int64,
        )
        hit = wanted[np.isin(wanted, current_matrix.prefixes.astype(np.int64))]
        cur_rows = dict(
            zip(hit.tolist(), current_matrix.rows_of(hit).tolist())
        )
    if baseline_matrix is not None:
        wanted = np.fromiter((int(p) for p in current_any), dtype=np.int64)
        hit = wanted[np.isin(wanted, baseline_matrix.prefixes.astype(np.int64))]
        base_rows = dict(
            zip(hit.tolist(), baseline_matrix.rows_of(hit).tolist())
        )

    alarms: List[RoutingAlarm] = []

    def add(prefix, verdict, confidence, cities, replicas, base_replicas, detail):
        alarms.append(
            RoutingAlarm(
                prefix=int(prefix),
                verdict=verdict,
                confidence=float(confidence),
                observed_cities=sorted(cities),
                replica_count=int(replicas),
                baseline_replica_count=int(base_replicas),
                detail=detail,
            )
        )

    # --- prefixes anycast now -----------------------------------------
    for prefix in sorted(current_any):
        result = current.results[prefix]
        cur_cities = set(result.city_names)

        if prefix not in baseline_seen:
            add(
                prefix, RoutingVerdict.NEW_PREFIX, 0.9, cur_cities,
                result.replica_count, 0,
                "prefix absent from baseline census; no claim to contradict",
            )
            continue

        if prefix in baseline_any:
            base_result = baseline.results[prefix]
            base_cities = set(base_result.city_names)
            new_cities = cur_cities - base_cities
            if not new_cities:
                # Same (or shrunk) city set.  Leaks against *anycast*
                # victims sit below the detectability floor: a detour's
                # RTT inflation is indistinguishable from the re-routing
                # (and fresh per-cell noise draws) of ordinary catchment
                # evolution, so the leak sweep is scoped to prefixes
                # unicast in both censuses — the canonical real-world
                # leak victim, whose endpoint cannot legitimately move.
                if cur_cities < base_cities:
                    add(
                        prefix, RoutingVerdict.SITE_DRAIN, 0.8, cur_cities,
                        result.replica_count, base_result.replica_count,
                        f"lost {len(base_cities - cur_cities)} of "
                        f"{len(base_cities)} baseline cities",
                    )
                continue

            # New cities appeared on a known-anycast prefix.  This is
            # never a hijack verdict on its own: an RTT disk containing a
            # "new" city is geometrically indistinguishable from a site
            # that was always there but outside the baseline's sampled
            # catchment — exactly why the paper scopes hijack detection
            # to *knowingly unicast* prefixes.  Partial-capture attacks
            # on anycast victims sit below the detectability floor of a
            # data-plane census; the typed verdict records the evidence
            # without paging anyone.
            if prefix in whitelist:
                add(
                    prefix, RoutingVerdict.GROWTH, 0.9, cur_cities,
                    result.replica_count, base_result.replica_count,
                    "whitelisted anycast deployment",
                )
                continue
            if current_matrix is not None and common_names:
                witnesses = _replica_vp_names(result, current_matrix, new_cities)
                if witnesses and not (witnesses & common_names):
                    add(
                        prefix, RoutingVerdict.GROWTH, 0.85, cur_cities,
                        result.replica_count, base_result.replica_count,
                        "new cities witnessed only by vantage points absent "
                        "from the baseline roster",
                    )
                    continue
            capture = 1.0
            if current_matrix is not None:
                base_points = [
                    r.city.location
                    for r in base_result.replicas
                ]
                new_points = [
                    r.city.location
                    for r in result.replicas
                    if f"{r.city.name},{r.city.country}" in new_cities
                ]
                capture = _capture_fraction(
                    current_matrix, cur_rows[prefix],
                    base_points, new_points, speed_km_per_ms,
                    policy.containment_slack_km,
                )
            add(
                prefix, RoutingVerdict.GROWTH, 0.7, cur_cities,
                result.replica_count, base_result.replica_count,
                f"{len(new_cities)} new cities on known anycast "
                f"(apparent capture {capture:.0%}; below the anycast-victim "
                "detectability floor)",
            )
            continue

        # --- unicast -> anycast flip ----------------------------------
        if prefix in whitelist:
            add(
                prefix, RoutingVerdict.GROWTH, 0.9, cur_cities,
                result.replica_count, 0, "whitelisted anycast deployment",
            )
            continue
        if policy.suppress_low_confidence and current.confidence_of(prefix) != "full":
            add(
                prefix, RoutingVerdict.GROWTH, 0.3, cur_cities,
                result.replica_count, 0,
                f"detection confidence {current.confidence_of(prefix)!r}; "
                "suppressed",
            )
            continue
        if current_matrix is not None and common_names:
            keep = np.array(
                [name in common_names for name in current_matrix.vp_names]
            )
            row = cur_rows[prefix]
            if not _row_violates(
                current_matrix, current_matrix.rtt_ms[row], keep, speed_km_per_ms
            ):
                add(
                    prefix, RoutingVerdict.GROWTH, 0.6, cur_cities,
                    result.replica_count, 0,
                    "violation vanishes on the common-roster restriction; "
                    "apparent flip is a roster artifact",
                )
                continue
        capture = 1.0
        if current_matrix is not None and baseline_matrix is not None:
            # Two capture estimates, take the stronger.  (1) Excess
            # rewrite: fraction of the common roster whose RTT moved,
            # minus the background movement rate — in the keyed-noise
            # longitudinal regime unchanged rows are byte-stable, so the
            # moved excess IS the captured fraction; when the censuses
            # drew noise independently the background rate soaks it up
            # and the estimate self-suppresses.  (2) Disk containment:
            # VPs whose disks exclude the baseline position — regime-
            # independent but weak at global scale (spiky RTTs make huge
            # disks that swallow the baseline position).
            rewrite_capture = 0.0
            if leak_cal is not None:
                changed, n_common = leak_cal.rewrite_stats(prefix)
                if n_common > 0:
                    rewrite_capture = max(
                        0.0,
                        changed / n_common
                        - leak_cal.background_change_rate(prefix),
                    )
            try:
                base_row = base_rows[prefix]
                b_vals = baseline_matrix.rtt_ms[base_row]
                j = int(np.nanargmin(b_vals))
                base_points = [baseline_matrix.vp_locations[j]]
            except (KeyError, ValueError):
                base_points = []
            disk_capture = _capture_fraction(
                current_matrix, cur_rows[prefix],
                base_points, [], speed_km_per_ms,
                policy.containment_slack_km,
            )
            capture = max(rewrite_capture, disk_capture)
            if capture < policy.min_capture_fraction:
                add(
                    prefix, RoutingVerdict.GROWTH, 0.5, cur_cities,
                    result.replica_count, 0,
                    f"flip below capture floor ({capture:.0%})",
                )
                continue
        add(
            prefix, RoutingVerdict.HIJACK,
            float(np.clip(0.5 + capture, 0.5, 1.0)), cur_cities,
            result.replica_count, 0,
            f"unicast prefix turned anycast; capture {capture:.0%}",
        )

    # --- prefixes that stopped being anycast (or vanished) ------------
    for prefix in sorted(baseline_any - current_any):
        base_result = baseline.results[prefix]
        base_cities = set(base_result.city_names)
        if prefix not in current_seen:
            add(
                prefix, RoutingVerdict.SITE_DRAIN, 0.7, set(),
                0, base_result.replica_count,
                "prefix vanished from the census (withdrawn or unresponsive)",
            )
            continue
        # Still replying, no longer anycast: collapsed onto one apparent
        # location.  The subprefix-capture signature needs *both* halves:
        # the min-RTT disk excludes every baseline site (the traffic no
        # longer reaches anything the baseline knew about) AND most of
        # the common-roster row was re-measured (a more-specific route
        # wins at every AS, so every VP moves; benign signature flicker
        # — a deployment growing or shrinking between censuses — moves
        # only the re-routed few).
        verdict = RoutingVerdict.SITE_DRAIN
        confidence = 0.8
        detail = "anycast collapsed onto a known site"
        if current_matrix is not None:
            row = cur_rows[prefix]
            values = current_matrix.rtt_ms[row]
            rewritten = True
            rewrite_excess = 1.0
            if leak_cal is not None:
                changed, n_common = leak_cal.rewrite_stats(prefix)
                rewritten = (
                    n_common > 0
                    and changed / n_common >= policy.collapse_rewrite_fraction
                )
                if n_common >= 4:
                    rewrite_excess = (
                        changed / n_common
                        - leak_cal.background_change_rate(prefix)
                    )
                else:
                    rewrite_excess = 0.0
            if rewritten and np.isfinite(values).any():
                j = int(np.nanargmin(values))
                radius = float(
                    _radii_km(np.array([values[j]]), speed_km_per_ms)[0]
                )
                vp = current_matrix.vp_locations[j]
                base_points = [r.city.location for r in base_result.replicas]
                d = pairwise_distances_km(
                    [vp.lat], [vp.lon],
                    [p.lat for p in base_points], [p.lon for p in base_points],
                )[0]
                if (d > radius + policy.containment_slack_km).all():
                    verdict = RoutingVerdict.HIJACK
                    confidence = 0.9
                    detail = (
                        "anycast collapsed onto a location excluding every "
                        "baseline site (subprefix-capture signature)"
                    )
                elif rewrite_excess >= policy.collapse_total_rewrite_fraction:
                    # Geometry cannot rule out the baseline footprint (a
                    # wide deployment leaves a site inside almost any RTT
                    # disk), but a drained site cannot re-measure the whole
                    # roster: near-total rewrite over background means a
                    # more-specific route won everywhere.
                    verdict = RoutingVerdict.HIJACK
                    confidence = 0.9
                    detail = (
                        "anycast collapsed and the whole roster re-measured "
                        f"({rewrite_excess:.0%} over background; "
                        "subprefix-capture signature)"
                    )
        add(
            prefix, verdict, confidence, set(),
            0, base_result.replica_count, detail,
        )

    # --- leaks against prefixes unicast in both censuses ---------------
    # A leaked unicast route changes no anycast status and no geolocation;
    # the only census-visible symptom is the RTT detour on the captured
    # vantage points.  Whitelisted (registered-anycast) prefixes are
    # excluded even when both censuses called them unicast: a small
    # deployment under the detection floor still re-routes legitimately,
    # and a re-route onto topologically-nearer-but-farther sites inflates
    # one-sidedly just like a detour would.
    if leak_cal is not None:
        steady_unicast = (
            (baseline_seen & current_seen)
            - baseline_any
            - current_any
            - whitelist
        )
        for prefix in sorted(steady_unicast):
            result = current.results.get(prefix)
            cities = set(result.city_names) if result is not None else set()
            replicas = result.replica_count if result is not None else 1

            re_homed, rh_conf, rh_detail = leak_cal.relocation_evidence(
                prefix, policy
            )
            if re_homed:
                add(
                    prefix, RoutingVerdict.HIJACK, rh_conf, cities,
                    replicas, replicas, rh_detail,
                )
                continue

            is_leak, leak_conf, leak_detail = leak_cal.evidence(prefix, policy)
            if not is_leak:
                continue
            add(
                prefix, RoutingVerdict.LEAK, leak_conf, cities,
                replicas, replicas, leak_detail,
            )

    return sorted(alarms, key=lambda a: (not a.is_alarm, a.prefix))
