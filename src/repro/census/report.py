"""Reporting helpers: distribution math and plain-text tables.

Every benchmark regenerates one paper exhibit; these helpers keep the
formatting and the empirical-distribution arithmetic in one tested place.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np


def empirical_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """(x, F(x)) of the empirical CDF; x sorted ascending, F in (0, 1]."""
    arr = np.sort(np.asarray(values, dtype=np.float64))
    if arr.size == 0:
        return np.array([]), np.array([])
    f = np.arange(1, arr.size + 1, dtype=np.float64) / arr.size
    return arr, f


def empirical_ccdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """(x, P(X >= x)) of the empirical complementary CDF."""
    arr = np.sort(np.asarray(values, dtype=np.float64))
    if arr.size == 0:
        return np.array([]), np.array([])
    # P(X >= x_i) with x ascending: share of points at or after position i.
    p = 1.0 - np.arange(arr.size, dtype=np.float64) / arr.size
    return arr, p


def quantile_at(values: Sequence[float], threshold: float) -> float:
    """Fraction of values <= threshold (a point of the CDF)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("quantile of empty sample")
    return float((arr <= threshold).mean())


def format_table(rows: Sequence[Sequence], headers: Sequence[str]) -> str:
    """Render rows as a fixed-width text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width disagrees with headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def comparison_rows(
    pairs: Dict[str, Tuple[float, float]],
) -> List[Tuple[str, str, str]]:
    """(metric, paper value, measured value) rows for EXPERIMENTS output."""
    out = []
    for metric, (paper, measured) in pairs.items():
        out.append((metric, f"{paper:g}", f"{measured:g}"))
    return out
