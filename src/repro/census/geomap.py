"""Geographic density maps of anycast replicas (paper Fig. 10 / Fig. 5).

The paper publishes browsable maps: a world density map of all replicas
and per-deployment marker maps (e.g. Microsoft as seen from PlanetLab vs
RIPE).  We render the same views as ASCII grids — suitable for terminals,
logs, and tests — via an equirectangular binning of replica locations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from ..geo.cities import City
from ..geo.coords import GeoPoint
from .analysis import AnalysisResult

#: Density glyphs, lightest to heaviest.
GLYPHS = " .:+*#@"


@dataclass
class GeoGrid:
    """An equirectangular lat/lon accumulation grid.

    Rows run north to south (+90 to −90), columns west to east (−180 to
    +180).  ``rows x cols`` defaults to a terminal-friendly 24x72.
    """

    rows: int = 24
    cols: int = 72
    counts: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("grid must have positive dimensions")
        self.counts = np.zeros((self.rows, self.cols), dtype=np.int64)

    def cell_of(self, point: GeoPoint) -> Tuple[int, int]:
        """Grid cell containing a point."""
        row = int((90.0 - point.lat) / 180.0 * self.rows)
        col = int((point.lon + 180.0) / 360.0 * self.cols)
        return (min(row, self.rows - 1), min(col, self.cols - 1))

    def add(self, point: GeoPoint, weight: int = 1) -> None:
        if weight < 0:
            raise ValueError("weight must be non-negative")
        row, col = self.cell_of(point)
        self.counts[row, col] += weight

    def add_all(self, points: Iterable[GeoPoint]) -> None:
        for point in points:
            self.add(point)

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def render(self, markers: Optional[Dict[Tuple[int, int], str]] = None) -> str:
        """Render the grid as ASCII art.

        Density maps to :data:`GLYPHS` on a logarithmic scale (replica
        density is heavy-tailed: a linear scale would show only the top
        cell).  ``markers`` optionally overrides specific cells with a
        custom character (used for per-deployment site maps).
        """
        markers = markers or {}
        peak = self.counts.max()
        lines = []
        for r in range(self.rows):
            chars = []
            for c in range(self.cols):
                if (r, c) in markers:
                    chars.append(markers[(r, c)])
                    continue
                count = self.counts[r, c]
                if count == 0 or peak == 0:
                    chars.append(GLYPHS[0])
                else:
                    level = np.log1p(count) / np.log1p(peak)
                    idx = min(int(level * (len(GLYPHS) - 1) + 0.9999), len(GLYPHS) - 1)
                    chars.append(GLYPHS[idx])
            lines.append("".join(chars))
        return "\n".join(lines)


def replica_density_map(
    analysis: AnalysisResult,
    rows: int = 24,
    cols: int = 72,
) -> GeoGrid:
    """World density of all geolocated replicas (the Fig. 10 map)."""
    grid = GeoGrid(rows=rows, cols=cols)
    for result in analysis.results.values():
        for replica in result.replicas:
            grid.add(replica.city.location)
    return grid


def deployment_map(
    observed_cities: Sequence[City],
    truth_cities: Optional[Sequence[City]] = None,
    rows: int = 24,
    cols: int = 72,
) -> str:
    """Per-deployment marker map (the Fig. 5 view).

    Observed replica sites render as ``O``; ground-truth-only sites (known
    but not observed, e.g. RIPE-only replicas in the paper's Microsoft
    example) render as ``x``.
    """
    grid = GeoGrid(rows=rows, cols=cols)
    markers: Dict[Tuple[int, int], str] = {}
    for city in truth_cities or []:
        markers[grid.cell_of(city.location)] = "x"
    for city in observed_cities:
        markers[grid.cell_of(city.location)] = "O"
    return grid.render(markers=markers)
