"""Alexa frontpage resolution and the anycast-hosting cross-check.

Paper Sec. 4.1 (footnote 2): "we resolve the domain name of the frontpage
found in Alexa to an IP, and disregard content that is referenced in the
frontpage" — then intersect the resolved /24s with the census to find
which popular websites ride on IP anycast.

This module implements the pipeline over the synthetic ground truth: a
deterministic resolver maps each Alexa domain through an optional CNAME
chain (CDN-hosted sites point at their CDN's edge hostname) to an A record
inside the hosting /24, and the cross-check joins resolved prefixes with
census-detected anycast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..internet.deployments import alive_hosts
from ..internet.topology import SyntheticInternet
from ..net.addresses import format_ipv4, host_in_slash24, slash24_of
from .analysis import AnalysisResult
from .ranks import AlexaSite, alexa_anycast_sites


@dataclass(frozen=True)
class Resolution:
    """DNS resolution of one website frontpage."""

    domain: str
    #: CNAME chain traversed (empty for apex A records).
    cname_chain: Tuple[str, ...]
    #: Final A record.
    address: int

    @property
    def slash24(self) -> int:
        return slash24_of(self.address)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        chain = " -> ".join((self.domain,) + self.cname_chain)
        return f"{chain} -> {format_ipv4(self.address)}"


class FrontpageResolver:
    """Deterministic resolver for the synthetic Alexa population.

    CDN-hosted sites resolve through a CNAME at the CDN's domain (as real
    CDN onboarding does); sites hosted directly on the operator's anycast
    space resolve straight to an A record.  The A record is always an
    *alive* host of the hosting /24.
    """

    def __init__(self, internet: SyntheticInternet) -> None:
        self._internet = internet
        self._sites: Dict[str, AlexaSite] = {
            site.domain: site for site in alexa_anycast_sites(internet)
        }

    def __contains__(self, domain: str) -> bool:
        return domain in self._sites

    def resolve(self, domain: str) -> Resolution:
        """Resolve a frontpage domain to its hosting address."""
        site = self._sites.get(domain)
        if site is None:
            raise KeyError(f"unknown domain {domain!r}")
        deployment = self._internet.deployment_of(site.prefix)
        if deployment is None:  # pragma: no cover - catalog guarantees anycast
            raise RuntimeError(f"{domain} not hosted on anycast space")
        entry = deployment.entry
        hosts = alive_hosts(deployment, site.prefix)
        # Deterministic host choice per domain.
        rng = np.random.default_rng(abs(hash(domain)) % (2**31))
        address = host_in_slash24(site.prefix, hosts[int(rng.integers(0, len(hosts)))])
        cname: Tuple[str, ...] = ()
        if entry.category.coarse == "CDN":
            label = entry.name.split(",")[0].lower().replace(" ", "-")
            cname = (f"{domain}.cdn.{label}.net",)
        return Resolution(domain=domain, cname_chain=cname, address=address)

    def resolve_all(self) -> List[Resolution]:
        """Resolve every Alexa frontpage hosted on anycast space."""
        return [self.resolve(domain) for domain in sorted(self._sites)]


@dataclass
class HostingCrossCheck:
    """The Fig. 10 Alexa row, derived by actual resolution."""

    #: Domain -> hosting AS, for frontpages landing on *detected* anycast.
    anycast_hosted: Dict[str, int]
    #: Frontpages whose hosting /24 the census did not flag.
    missed: List[str]

    @property
    def n_sites(self) -> int:
        return len(self.anycast_hosted)

    @property
    def n_ases(self) -> int:
        return len(set(self.anycast_hosted.values()))

    def sites_per_as(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for asn in self.anycast_hosted.values():
            out[asn] = out.get(asn, 0) + 1
        return out


def crosscheck_alexa_hosting(
    analysis: AnalysisResult,
    internet: SyntheticInternet,
) -> HostingCrossCheck:
    """Resolve every Alexa frontpage and join with the census verdicts."""
    resolver = FrontpageResolver(internet)
    detected = set(analysis.anycast_prefixes)
    hosted: Dict[str, int] = {}
    missed: List[str] = []
    for resolution in resolver.resolve_all():
        if resolution.slash24 in detected:
            owner = internet.registry.owner_of(resolution.slash24)
            hosted[resolution.domain] = owner.asn if owner else -1
        else:
            missed.append(resolution.domain)
    return HostingCrossCheck(anycast_hosted=hosted, missed=missed)
