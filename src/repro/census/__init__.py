"""Census analysis & characterization: combine, analyze, characterize."""

from .analysis import AnalysisResult, CensusFunnel, analyze_matrix, census_funnel
from .characterize import ASFootprint, Characterization, GlanceRow
from .combine import RttMatrix, combine_censuses, matrix_from_census, merge_matrices
from .coverage import CoverageReport, coverage_report, spot_check_equivalence
from .fastpath import FastAnalysisEngine, SharedGeometry, analyze_matrix_fast
from .geomap import GeoGrid, deployment_map, replica_density_map
from .hijack import HijackAlarm, detect_hijacks, inject_hijack
from .longitudinal import (
    ASChange,
    EvolutionConfig,
    LongitudinalReport,
    compare_epochs,
    evolve_catalog,
)
from .refine import PrefixRefinement, RefinementReport, refine_detected
from .performance import (
    AffinityReport,
    ProximityReport,
    affinity,
    availability,
    proximity,
)
from .protocols import ProbeProtocol, protocol_recall_table, response_rate
from .ranks import AlexaSite, alexa_anycast_sites, alexa_hosted_prefixes, caida_top_asns
from .report import (
    comparison_rows,
    empirical_ccdf,
    empirical_cdf,
    format_table,
    quantile_at,
)
from .validation import PrefixValidation, ValidationReport, validate_deployment
from .webhosting import (
    FrontpageResolver,
    HostingCrossCheck,
    Resolution,
    crosscheck_alexa_hosting,
)

__all__ = [
    "AnalysisResult",
    "CensusFunnel",
    "analyze_matrix",
    "census_funnel",
    "ASFootprint",
    "Characterization",
    "GlanceRow",
    "RttMatrix",
    "combine_censuses",
    "matrix_from_census",
    "merge_matrices",
    "CoverageReport",
    "coverage_report",
    "spot_check_equivalence",
    "FastAnalysisEngine",
    "SharedGeometry",
    "analyze_matrix_fast",
    "GeoGrid",
    "deployment_map",
    "replica_density_map",
    "HijackAlarm",
    "detect_hijacks",
    "inject_hijack",
    "PrefixRefinement",
    "RefinementReport",
    "refine_detected",
    "ASChange",
    "EvolutionConfig",
    "LongitudinalReport",
    "compare_epochs",
    "evolve_catalog",
    "AffinityReport",
    "ProximityReport",
    "affinity",
    "availability",
    "proximity",
    "ProbeProtocol",
    "protocol_recall_table",
    "response_rate",
    "AlexaSite",
    "alexa_anycast_sites",
    "alexa_hosted_prefixes",
    "caida_top_asns",
    "comparison_rows",
    "empirical_ccdf",
    "empirical_cdf",
    "format_table",
    "quantile_at",
    "PrefixValidation",
    "ValidationReport",
    "validate_deployment",
    "FrontpageResolver",
    "HostingCrossCheck",
    "Resolution",
    "crosscheck_alexa_hosting",
]
