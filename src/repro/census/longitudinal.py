"""Longitudinal anycast censuses (paper Sec. 5).

"Taking periodic censuses and analyzing the time evolution over longer
timescales would allow to track evolution of IP anycast deployments" — and
indeed the paper notes that later censuses already showed "small but
interesting changes in the anycast landscape".

This module provides the two halves of such a study:

* :func:`evolve_catalog` — advance the deployment catalog by one epoch:
  existing deployments grow (occasionally shrink) their replica sites, and
  new small adopters appear.  Thanks to the per-AS deterministic topology
  builder, an evolved catalog yields a world where *unchanged* entities
  are bit-identical and grown deployments keep their existing sites;
* :func:`compare_epochs` — diff the per-AS census views of two epochs into
  grown / shrunk / new / gone deployments.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

import numpy as np

from ..internet.catalog import CatalogEntry
from ..net.asn import BusinessCategory
from .characterize import Characterization

#: Reserved ASN block for epoch-born anycast adopters.  Hashed allocation
#: inside a private block far above every catalog ASN: identity depends on
#: the evolution seed and adopter ordinal, never on the current catalog
#: contents — so a shrunk catalog can never hand a dead AS's number to a
#: newcomer (which would silently merge two different deployments in any
#: longitudinal diff keyed by ASN).
ADOPTER_ASN_BASE = 4_200_000_000
ADOPTER_ASN_SPAN = 94_967_294  # up to the 32-bit ASN ceiling


def _adopter_asn(seed: int, ordinal: int, used: set) -> int:
    """Collision-free ASN for one new adopter, stable in (seed, ordinal)."""
    h = zlib.crc32(f"adopter:{seed}:{ordinal}".encode())
    asn = ADOPTER_ASN_BASE + h % ADOPTER_ASN_SPAN
    while asn in used:  # linear probing inside the reserved block
        asn = ADOPTER_ASN_BASE + (asn - ADOPTER_ASN_BASE + 1) % ADOPTER_ASN_SPAN
    return asn


@dataclass(frozen=True)
class EvolutionConfig:
    """One epoch of anycast-landscape drift."""

    #: Probability an existing deployment adds sites this epoch.
    growth_prob: float = 0.30
    #: Maximum sites added in one epoch.
    max_new_sites: int = 4
    #: Probability a deployment retires some sites.
    shrink_prob: float = 0.05
    #: New small anycast adopters appearing this epoch.
    new_adopters: int = 8

    def __post_init__(self) -> None:
        if not 0.0 <= self.growth_prob <= 1.0:
            raise ValueError("growth_prob must be in [0, 1]")
        if not 0.0 <= self.shrink_prob <= 1.0:
            raise ValueError("shrink_prob must be in [0, 1]")
        if self.max_new_sites < 1:
            raise ValueError("max_new_sites must be >= 1")
        if self.new_adopters < 0:
            raise ValueError("new_adopters must be >= 0")


def evolve_catalog(
    catalog: Sequence[CatalogEntry],
    seed: int,
    config: Optional[EvolutionConfig] = None,
) -> List[CatalogEntry]:
    """Advance a catalog by one census epoch.

    Existing entries keep their identity (ASN, footprint, services); only
    ``n_sites`` moves.  New adopters are appended, so existing prefix
    allocations are untouched.
    """
    cfg = config or EvolutionConfig()
    rng = np.random.default_rng(seed)
    evolved: List[CatalogEntry] = []
    for entry in catalog:
        n_sites = entry.n_sites
        u = rng.random()
        if u < cfg.growth_prob:
            n_sites += int(rng.integers(1, cfg.max_new_sites + 1))
        elif u < cfg.growth_prob + cfg.shrink_prob:
            n_sites = max(1, n_sites - int(rng.integers(1, 3)))
        evolved.append(replace(entry, n_sites=n_sites) if n_sites != entry.n_sites else entry)

    next_rank = max((e.rank for e in catalog), default=0) + 1
    used_asns = {e.asn for e in catalog}
    categories = [BusinessCategory.DNS, BusinessCategory.CDN, BusinessCategory.CLOUD]
    for i in range(cfg.new_adopters):
        asn = _adopter_asn(seed, i, used_asns)
        used_asns.add(asn)
        evolved.append(
            CatalogEntry(
                rank=next_rank + i,
                asn=asn,
                name=f"NEW-ADOPTER-{asn},US",
                country="US",
                category=categories[int(rng.integers(0, len(categories)))],
                n_slash24=int(rng.integers(1, 4)),
                n_sites=int(rng.integers(2, 6)),
                ports=(53, 80, 443),
                software=("nginx",),
            )
        )
    return evolved


@dataclass
class ASChange:
    """Per-AS delta between two census epochs."""

    asn: int
    name: str
    replicas_before: float
    replicas_after: float
    ip24_before: int
    ip24_after: int

    @property
    def replica_delta(self) -> float:
        return self.replicas_after - self.replicas_before

    @property
    def ip24_delta(self) -> int:
        return self.ip24_after - self.ip24_before


@dataclass
class LongitudinalReport:
    """Census-observed changes between two epochs.

    The lists partition the tracked ASes: replica-count motion wins
    (``grown``/``shrunk``), then /24-footprint-only motion
    (``footprint_grown``/``footprint_shrunk`` — an AS serving the same
    replica count from more or fewer prefixes), then ``stable``.
    """

    grown: List[ASChange] = field(default_factory=list)
    shrunk: List[ASChange] = field(default_factory=list)
    stable: List[ASChange] = field(default_factory=list)
    appeared: List[ASChange] = field(default_factory=list)
    disappeared: List[ASChange] = field(default_factory=list)
    #: Replica-stable ASes whose advertised /24 footprint grew / shrank.
    footprint_grown: List[ASChange] = field(default_factory=list)
    footprint_shrunk: List[ASChange] = field(default_factory=list)

    @property
    def n_tracked(self) -> int:
        return (
            len(self.grown) + len(self.shrunk) + len(self.stable)
            + len(self.appeared) + len(self.disappeared)
            + len(self.footprint_grown) + len(self.footprint_shrunk)
        )


def compare_epochs(
    before: Characterization,
    after: Characterization,
    min_delta: float = 1.0,
    min_ip24_delta: int = 1,
) -> LongitudinalReport:
    """Diff two epochs' census characterizations by AS.

    ``min_delta`` is the mean-replica change below which an AS counts as
    replica-stable (one replica of slack absorbs enumeration noise);
    ``min_ip24_delta`` plays the same role for the /24 footprint of
    replica-stable ASes.
    """
    if min_delta < 0:
        raise ValueError("min_delta must be non-negative")
    if min_ip24_delta < 0:
        raise ValueError("min_ip24_delta must be non-negative")
    report = LongitudinalReport()
    before_asns = set(before.footprints)
    after_asns = set(after.footprints)

    for asn in sorted(before_asns | after_asns):
        fp_before = before.footprints.get(asn)
        fp_after = after.footprints.get(asn)
        change = ASChange(
            asn=asn,
            name=(fp_after or fp_before).autonomous_system.name,
            replicas_before=fp_before.mean_replicas if fp_before else 0.0,
            replicas_after=fp_after.mean_replicas if fp_after else 0.0,
            ip24_before=fp_before.n_ip24 if fp_before else 0,
            ip24_after=fp_after.n_ip24 if fp_after else 0,
        )
        if fp_before is None:
            report.appeared.append(change)
        elif fp_after is None:
            report.disappeared.append(change)
        elif change.replica_delta >= min_delta:
            report.grown.append(change)
        elif change.replica_delta <= -min_delta:
            report.shrunk.append(change)
        elif change.ip24_delta >= min_ip24_delta:
            report.footprint_grown.append(change)
        elif change.ip24_delta <= -min_ip24_delta:
            report.footprint_shrunk.append(change)
        else:
            report.stable.append(change)
    return report
