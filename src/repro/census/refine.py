"""Cross-platform refinement of detected deployments (paper Sec. 5).

The paper suggests combining platforms: detect anycast /24s cheaply from
PlanetLab, then "refin[e] via RIPE the geolocation of anycast /24 detected
via PL" — a targeted follow-up campaign over only the O(10^3) detected
prefixes from a platform with far better geographic coverage.  The same
follow-up can "assist in confirming/discarding suspicious deployments
(i.e., those for which we detected 2 replicas from PL)".

:func:`refine_detected` implements the full loop: targeted census from the
second platform, per-cell merge with the original measurements, re-analysis
of the detected prefixes, and a per-prefix before/after report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.igreedy import IGreedyConfig, IGreedyResult
from ..geo.cities import CityDB, default_city_db
from ..internet.topology import SyntheticInternet
from ..measurement.campaign import CensusCampaign
from ..measurement.platform import Platform
from .analysis import AnalysisResult, analyze_matrix
from .combine import RttMatrix, matrix_from_census, merge_matrices


@dataclass
class PrefixRefinement:
    """Before/after view of one refined /24."""

    prefix: int
    before: IGreedyResult
    after: IGreedyResult

    @property
    def replicas_gained(self) -> int:
        return self.after.replica_count - self.before.replica_count

    @property
    def was_suspicious(self) -> bool:
        """Only two replicas seen from the first platform (Sec. 4.2:
        possibly a VP-geolocation artifact rather than real anycast)."""
        return self.before.replica_count <= 2

    @property
    def confirmed(self) -> bool:
        """Still anycast after the second platform weighs in."""
        return self.after.is_anycast


@dataclass
class RefinementReport:
    """Outcome of a cross-platform refinement campaign."""

    refined: Dict[int, PrefixRefinement] = field(default_factory=dict)

    @property
    def n_prefixes(self) -> int:
        return len(self.refined)

    @property
    def total_gain(self) -> int:
        return sum(r.replicas_gained for r in self.refined.values())

    @property
    def improved(self) -> List[PrefixRefinement]:
        return [r for r in self.refined.values() if r.replicas_gained > 0]

    def suspicious_confirmed(self) -> List[PrefixRefinement]:
        return [r for r in self.refined.values() if r.was_suspicious and r.confirmed]

    def suspicious_discarded(self) -> List[PrefixRefinement]:
        """Two-replica detections the second platform could not confirm.

        With our no-false-positive detection these should be rare-to-empty
        (they indicate the original violation hinged on measurements the
        refined view supersedes)."""
        return [r for r in self.refined.values() if r.was_suspicious and not r.confirmed]


def refine_detected(
    analysis: AnalysisResult,
    base_matrix: RttMatrix,
    internet: SyntheticInternet,
    platform: Platform,
    city_db: Optional[CityDB] = None,
    config: Optional[IGreedyConfig] = None,
    seed: int = 900,
    availability: float = 0.95,
) -> RefinementReport:
    """Refine every detected anycast /24 with a second platform.

    Runs one targeted census (detected prefixes only) from ``platform``,
    merges it into ``base_matrix``, re-analyzes the detected prefixes and
    reports per-prefix gains.
    """
    db = city_db or default_city_db()
    detected = analysis.anycast_prefixes
    if not detected:
        return RefinementReport()

    campaign = CensusCampaign(internet, platform, seed=seed)
    census = campaign.run_census(
        availability=availability, target_prefixes=detected
    )
    merged = merge_matrices(base_matrix, matrix_from_census(census))

    refined_analysis = analyze_matrix(merged, city_db=db, config=config)
    report = RefinementReport()
    for prefix in detected:
        after = refined_analysis.results.get(prefix)
        if after is None:
            # The merged view no longer detects it (possible only when the
            # prefix stopped replying); keep the original verdict.
            after = analysis.results[prefix]
        report.refined[prefix] = PrefixRefinement(
            prefix=prefix, before=analysis.results[prefix], after=after
        )
    return report
