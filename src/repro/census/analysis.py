"""Census-wide anycast analysis.

Drives the paper's pipeline over a full RTT matrix: vectorized detection
first (cheap necessary test over every routed /24 that replied), then the
full iGreedy enumeration/geolocation on the detected needles — the same
two-tier structure that lets the paper analyze a census "in under three
hours ... about the same timescale of the census duration".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.detection import detection_mask, radius_matrix
from ..core.igreedy import IGreedyConfig, IGreedyResult, igreedy
from ..core.samples import LatencySample
from ..geo.cities import CityDB, default_city_db
from ..internet.topology import SyntheticInternet
from ..measurement.campaign import Census
from ..obs import current_metrics
from .combine import RttMatrix


@dataclass
class AnalysisResult:
    """Outcome of analyzing one RTT matrix."""

    #: All prefixes that replied, in matrix order.
    prefixes: np.ndarray
    #: Detection verdict per prefix (matrix order).
    anycast_mask: np.ndarray
    #: Full iGreedy output for each detected prefix.
    results: Dict[int, IGreedyResult] = field(default_factory=dict)
    #: Per-target confidence verdict ("full" / "degraded" /
    #: "insufficient"), attached by the resilience layer when the input
    #: matrix was sanitized.  Empty means no verdicts were computed —
    #: consumers should treat every target as full confidence then.
    confidence: Dict[int, str] = field(default_factory=dict)

    @property
    def anycast_prefixes(self) -> List[int]:
        return [int(p) for p in self.prefixes[self.anycast_mask]]

    def confidence_of(self, prefix: int) -> str:
        """The confidence verdict for one target (default ``"full"``)."""
        return self.confidence.get(int(prefix), "full")

    @property
    def n_anycast(self) -> int:
        return int(self.anycast_mask.sum())

    def replica_count(self, prefix: int) -> int:
        result = self.results.get(prefix)
        return result.replica_count if result else 0

    def replica_counts(self) -> Dict[int, int]:
        """Prefix -> enumerated replica count, for every detected prefix."""
        return {p: r.replica_count for p, r in self.results.items()}

    @property
    def total_replicas(self) -> int:
        """Sum of per-/24 replica counts (the Fig. 10 'Replicas' column)."""
        return sum(r.replica_count for r in self.results.values())


def analyze_matrix(
    matrix: RttMatrix,
    city_db: Optional[CityDB] = None,
    config: Optional[IGreedyConfig] = None,
    min_samples: int = 3,
    workers: Optional[int] = None,
) -> AnalysisResult:
    """Detect, enumerate and geolocate every anycast /24 in the matrix.

    ``min_samples`` guards against spurious detections from targets that
    answered almost nobody (too few disks to reason about).

    Engine selection follows ``config.resolved_engine()``: the default
    (``"auto"``) runs the array-native fast path of
    :mod:`repro.census.fastpath`; ``"reference"`` (or the
    ``REPRO_ANALYSIS_ENGINE`` environment variable) forces the original
    per-sample object pipeline kept for differential testing.  Both
    produce equivalent results.  ``workers`` (fast path only) chunks the
    detected targets over a forked worker pool; ``None``/``0`` is serial.
    """
    cfg = config or IGreedyConfig()
    db = city_db or default_city_db()

    if cfg.resolved_engine() == "fast":
        from .fastpath import analyze_matrix_fast

        return analyze_matrix_fast(
            matrix,
            city_db=db,
            config=cfg,
            min_samples=min_samples,
            workers=workers or 0,
        )

    metrics = current_metrics()

    vp_dist = matrix.vp_distance_matrix()
    radii = radius_matrix(matrix.rtt_ms, cfg.speed_km_per_ms)
    filled = (~np.isnan(matrix.rtt_ms)).sum(axis=1)
    enough = filled >= min_samples
    mask = detection_mask(vp_dist, radii) & enough

    if metrics.enabled:
        metrics.gauge("rtt_matrix_cells").set(int(matrix.rtt_ms.size))
        metrics.gauge("rtt_matrix_filled_cells").set(int(filled.sum()))
        metrics.gauge("rtt_matrix_targets").set(matrix.n_targets)
        metrics.counter("targets_analyzed").inc(matrix.n_targets)
        metrics.counter("targets_classified_anycast").inc(int(mask.sum()))

    result = AnalysisResult(prefixes=matrix.prefixes, anycast_mask=mask)
    for row in np.nonzero(mask)[0]:
        prefix = int(matrix.prefixes[row])
        samples = [
            LatencySample(vp_name=name, vp_location=loc, rtt_ms=rtt)
            for name, loc, rtt in matrix.samples_for(prefix)
        ]
        result.results[prefix] = igreedy(samples, city_db=db, config=cfg)
    return result


@dataclass(frozen=True)
class CensusFunnel:
    """The Fig. 4 magnitude funnel for one census."""

    targets: int
    echo_replies: int
    icmp_errors: int
    greylisted: int
    valid_targets: int
    anycast_found: int

    @property
    def reply_ratio(self) -> float:
        return self.echo_replies / max(self.targets, 1)

    def rows(self) -> List[tuple]:
        """(stage, count) rows for the funnel table."""
        return [
            ("hitlist targets", self.targets),
            ("targets with echo reply", self.valid_targets),
            ("echo replies (all VPs)", self.echo_replies),
            ("ICMP errors (all VPs)", self.icmp_errors),
            ("greylisted /24s", self.greylisted),
            ("anycast /24s detected", self.anycast_found),
        ]


def census_funnel(
    census: Census,
    internet: SyntheticInternet,
    analysis: Optional[AnalysisResult] = None,
) -> CensusFunnel:
    """Compute the census magnitude funnel (paper Fig. 4)."""
    records = census.records
    replies = records.replies()
    valid_targets = len(np.unique(replies.prefix))
    return CensusFunnel(
        targets=internet.n_targets,
        echo_replies=len(replies),
        icmp_errors=int((records.flag != 0).sum()),
        greylisted=len(census.greylist),
        valid_targets=valid_targets,
        anycast_found=analysis.n_anycast if analysis is not None else 0,
    )
