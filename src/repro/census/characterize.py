"""Per-AS characterization of census results (paper Sec. 4).

Aggregates per-/24 iGreedy results into the AS-level views the paper
reports: geographical footprints (Fig. 9 bottom), the at-a-glance summary
table (Fig. 10), the business-category breakdown (Fig. 11), the
replicas-per-/24 CDF (Fig. 12), and the /24-per-AS distribution (Fig. 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..internet.topology import SyntheticInternet
from ..net.asn import AutonomousSystem
from .analysis import AnalysisResult


@dataclass
class ASFootprint:
    """Census view of one AS's anycast deployment."""

    autonomous_system: AutonomousSystem
    #: Detected anycast /24s of this AS.
    prefixes: List[int] = field(default_factory=list)
    #: Enumerated replica count per detected /24 (aligned with prefixes).
    replicas_per_prefix: List[int] = field(default_factory=list)
    #: Union of replica city keys observed across the AS's /24s.
    cities: Set[Tuple[str, str]] = field(default_factory=set)

    @property
    def asn(self) -> int:
        return self.autonomous_system.asn

    @property
    def n_ip24(self) -> int:
        return len(self.prefixes)

    @property
    def mean_replicas(self) -> float:
        return float(np.mean(self.replicas_per_prefix)) if self.replicas_per_prefix else 0.0

    @property
    def std_replicas(self) -> float:
        return float(np.std(self.replicas_per_prefix)) if self.replicas_per_prefix else 0.0

    @property
    def max_replicas(self) -> int:
        return max(self.replicas_per_prefix, default=0)

    @property
    def total_replicas(self) -> int:
        return sum(self.replicas_per_prefix)

    @property
    def countries(self) -> Set[str]:
        return {country for _, country in self.cities}


@dataclass(frozen=True)
class GlanceRow:
    """One row of the Fig. 10 summary table."""

    label: str
    ip24: int
    ases: int
    cities: int
    countries: int
    replicas: int


class Characterization:
    """AS-level aggregation of an :class:`AnalysisResult`."""

    def __init__(self, analysis: AnalysisResult, internet: SyntheticInternet) -> None:
        self.analysis = analysis
        self.internet = internet
        self.footprints: Dict[int, ASFootprint] = {}
        for prefix, result in analysis.results.items():
            if not result.is_anycast:
                continue
            owner = internet.registry.owner_of(prefix)
            if owner is None:
                continue  # an anycast /24 outside any registered AS
            fp = self.footprints.get(owner.asn)
            if fp is None:
                fp = ASFootprint(autonomous_system=owner)
                self.footprints[owner.asn] = fp
            fp.prefixes.append(prefix)
            fp.replicas_per_prefix.append(result.replica_count)
            fp.cities.update(c.key for c in result.cities)

    # ------------------------------------------------------------------
    # Confidence (resilience layer): honest labelling of degraded input
    # ------------------------------------------------------------------

    @property
    def has_confidence(self) -> bool:
        """Whether the analysis carries per-target confidence verdicts."""
        return bool(self.analysis.confidence)

    def confidence_counts(self) -> Dict[str, int]:
        """Per-verdict target tally (empty when no verdicts were computed)."""
        counts: Dict[str, int] = {}
        for verdict in self.analysis.confidence.values():
            counts[verdict] = counts.get(verdict, 0) + 1
        return counts

    def footprint_confidence(self, footprint: ASFootprint) -> str:
        """The weakest verdict among a footprint's /24s (default ``full``).

        An AS aggregated from any degraded target is itself degraded —
        tables must not launder partial inputs into full-confidence rows.
        """
        order = {"full": 0, "degraded": 1, "insufficient": 2}
        worst = "full"
        for prefix in footprint.prefixes:
            verdict = self.analysis.confidence_of(prefix)
            if order.get(verdict, 0) > order[worst]:
                worst = verdict
        return worst

    # ------------------------------------------------------------------
    # Fig. 9 — top ASes by geographical footprint
    # ------------------------------------------------------------------

    def top_ases(self, k: int = 100, min_replicas: int = 5) -> List[ASFootprint]:
        """The ``k`` ASes with the largest footprint (≥ ``min_replicas``).

        Ordered by decreasing mean replicas per /24, the paper's Fig. 9
        x-axis ordering.
        """
        qualified = [fp for fp in self.footprints.values() if fp.max_replicas >= min_replicas]
        qualified.sort(key=lambda fp: (-fp.mean_replicas, fp.asn))
        return qualified[:k]

    # ------------------------------------------------------------------
    # Fig. 10 — at-a-glance table
    # ------------------------------------------------------------------

    def glance_table(
        self,
        caida_asns: Optional[Set[int]] = None,
        alexa_prefixes: Optional[Dict[int, Set[int]]] = None,
        min_replicas: int = 5,
    ) -> List[GlanceRow]:
        rows = [self._row("All", list(self.footprints.values()))]

        qualified = [fp for fp in self.footprints.values() if fp.max_replicas >= min_replicas]
        rows.append(self._row(f">= {min_replicas} Replicas", qualified))

        if caida_asns is not None:
            caida = [fp for fp in self.footprints.values() if fp.asn in caida_asns]
            rows.append(self._row("/\\ CAIDA-100", caida))

        if alexa_prefixes is not None:
            restricted = []
            for fp in self.footprints.values():
                hosted = alexa_prefixes.get(fp.asn)
                if not hosted:
                    continue
                sub = ASFootprint(autonomous_system=fp.autonomous_system)
                for prefix, count in zip(fp.prefixes, fp.replicas_per_prefix):
                    if prefix in hosted:
                        sub.prefixes.append(prefix)
                        sub.replicas_per_prefix.append(count)
                        result = self.analysis.results[prefix]
                        sub.cities.update(c.key for c in result.cities)
                if sub.prefixes:
                    restricted.append(sub)
            rows.append(self._row("/\\ Alexa-100k", restricted))
        return rows

    @staticmethod
    def _row(label: str, footprints: Sequence[ASFootprint]) -> GlanceRow:
        cities = set().union(*(fp.cities for fp in footprints)) if footprints else set()
        return GlanceRow(
            label=label,
            ip24=sum(fp.n_ip24 for fp in footprints),
            ases=len(footprints),
            cities=len(cities),
            countries=len({country for _, country in cities}),
            replicas=sum(fp.total_replicas for fp in footprints),
        )

    # ------------------------------------------------------------------
    # Fig. 11 — business-category breakdown
    # ------------------------------------------------------------------

    def category_breakdown(self, min_replicas: int = 5, k: int = 100) -> Dict[str, float]:
        """Share of each coarse business category among the top ASes."""
        top = self.top_ases(k=k, min_replicas=min_replicas)
        if not top:
            return {}
        counts: Dict[str, int] = {}
        for fp in top:
            coarse = fp.autonomous_system.category.coarse
            counts[coarse] = counts.get(coarse, 0) + 1
        total = len(top)
        return {cat: n / total for cat, n in sorted(counts.items(), key=lambda kv: -kv[1])}

    # ------------------------------------------------------------------
    # Fig. 12 — replicas per /24 CDF
    # ------------------------------------------------------------------

    def replicas_per_ip24(self) -> np.ndarray:
        """Replica count of every detected anycast /24 (CDF input)."""
        counts = [
            r.replica_count for r in self.analysis.results.values() if r.is_anycast
        ]
        return np.sort(np.array(counts, dtype=np.int64))

    # ------------------------------------------------------------------
    # Fig. 13 — /24s per AS
    # ------------------------------------------------------------------

    def ip24_per_as(self, min_replicas: int = 0) -> Dict[int, int]:
        """ASN -> number of detected anycast /24s."""
        return {
            fp.asn: fp.n_ip24
            for fp in self.footprints.values()
            if fp.max_replicas >= min_replicas
        }
