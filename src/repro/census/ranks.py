"""Synthetic CAIDA AS-rank and Alexa-100k lists.

The paper cross-checks its census against two external rankings
(Sec. 4.1): the CAIDA AS rank (finding 8 anycasting ASes among the top
100, owning 19 anycast /24s) and the Alexa top-100k websites (242 anycast
/24s of 15 ASes serve popular sites).  Rank membership is part of the
deployment catalog; this module materializes the lists and the joins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from ..internet.topology import SyntheticInternet


def caida_top_asns(internet: SyntheticInternet, k: int = 100) -> Set[int]:
    """ASNs of anycast deployments inside the CAIDA top-``k`` rank.

    Only anycasting members matter for the intersection; the remaining
    CAIDA entries are non-anycast ISPs that never appear in the census.
    """
    return {
        dep.entry.asn
        for dep in internet.deployments
        if dep.entry.caida_rank is not None and dep.entry.caida_rank <= k
    }


@dataclass(frozen=True)
class AlexaSite:
    """One popular website hosted on anycast."""

    rank: int
    domain: str
    asn: int
    prefix: int


def alexa_anycast_sites(internet: SyntheticInternet) -> List[AlexaSite]:
    """The Alexa-100k websites that resolve into anycast /24s.

    Websites are synthesized per catalog entry (``alexa_sites`` each),
    spread round-robin over the deployment's Alexa-hosting prefixes, with
    deterministic pseudo-ranks spread through the top-100k.
    """
    sites: List[AlexaSite] = []
    for dep in internet.deployments:
        entry = dep.entry
        if not entry.alexa_sites:
            continue
        for i in range(entry.alexa_sites):
            prefix = dep.alexa_prefixes[i % len(dep.alexa_prefixes)]
            rank = (entry.asn * 131 + i * 977) % 100_000 + 1
            sites.append(
                AlexaSite(
                    rank=rank,
                    domain=f"site-{entry.asn}-{i:03d}.example",
                    asn=entry.asn,
                    prefix=prefix,
                )
            )
    return sorted(sites, key=lambda s: s.rank)


def alexa_hosted_prefixes(internet: SyntheticInternet) -> Dict[int, Set[int]]:
    """ASN -> the anycast /24s of that AS hosting Alexa-100k websites."""
    out: Dict[int, Set[int]] = {}
    for dep in internet.deployments:
        if dep.alexa_prefixes and dep.entry.alexa_sites:
            out[dep.entry.asn] = set(dep.alexa_prefixes)
    return out
