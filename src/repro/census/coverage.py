"""Hitlist coverage and responsiveness cross-checks (paper Sec. 3.1).

Before trusting a census, the paper validates its target list two ways:

* **coverage** — splitting the announced BGP prefixes (RIS + RouteViews)
  into /24s gives 10,616,435 prefixes, of which 10,615,563 have a hitlist
  representative: >99.99% coverage;
* **responsiveness** — the census captures 4.4M responsive /24s against
  the 4.9M used /24s estimated by independent ICMP scans [48]: ~90%.

:func:`coverage_report` reproduces both checks against the synthetic
ground truth, plus the spot check that any alive host of an anycast /24 is
an equivalent census representative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..internet.deployments import AnycastDeployment, alive_hosts
from ..internet.hitlist import Hitlist
from ..internet.topology import RESP_REPLY, SyntheticInternet
from ..measurement.campaign import Census


@dataclass(frozen=True)
class CoverageReport:
    """Outcome of the Sec. 3.1 target-list sanity checks."""

    routed_slash24: int
    hitlist_entries: int
    #: Fraction of routed /24s with a hitlist representative (paper >99.99%).
    coverage: float
    #: /24s expected responsive from the ground truth ("used" space).
    expected_responsive: int
    #: /24s that actually produced an echo reply in the census.
    observed_responsive: int

    @property
    def responsiveness_recall(self) -> float:
        """Observed/expected responsive /24s (paper: ~90% vs [48])."""
        if self.expected_responsive == 0:
            return 1.0
        return self.observed_responsive / self.expected_responsive


def coverage_report(
    internet: SyntheticInternet,
    hitlist: Hitlist,
    census: Optional[Census] = None,
) -> CoverageReport:
    """Run the coverage and responsiveness cross-checks."""
    routed = [int(p) for p in internet.prefixes]
    coverage = hitlist.coverage_of(routed)
    expected = int((internet.responsiveness == RESP_REPLY).sum())
    observed = 0
    if census is not None:
        observed = len(np.unique(census.records.replies().prefix))
    return CoverageReport(
        routed_slash24=len(routed),
        hitlist_entries=len(hitlist),
        coverage=coverage,
        expected_responsive=expected,
        observed_responsive=observed,
    )


def spot_check_equivalence(
    deployment: AnycastDeployment,
    prefix: int,
    clients: Sequence,
) -> bool:
    """The paper's EdgeCast spot check: within an anycast /24, every alive
    IP is an equivalent representative for anycast detection.

    For each probing client, the serving replica must be identical no
    matter which alive host of the /24 is addressed.  BGP routes on the
    /24, so this holds by construction in the substrate — the check guards
    the model invariant (and the address arithmetic underneath it).
    """
    from ..net.addresses import host_in_slash24, slash24_of

    hosts = alive_hosts(deployment, prefix)
    if not hosts:
        return False
    for client in clients:
        replica = deployment.serving_replica(client)
        for host in hosts:
            address = host_in_slash24(prefix, host)
            if slash24_of(address) != prefix:
                return False  # address escaped its routing unit
            if deployment.serving_replica(client) is not replica:
                return False  # per-host routing would break equivalence
    return True
