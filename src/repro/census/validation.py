"""Ground-truth validation of census geolocation (paper Fig. 7, Sec. 3.4).

For CDNs that reveal the serving replica in HTTP headers (CloudFlare's
CF-RAY, EdgeCast's Server), the paper builds a measured ground truth (GT)
from the same vantage points, compares it to the publicly advertised
information (PAI, the operator's published PoP list), and scores census
geolocation per /24:

* **TPR** — fraction of census-predicted replica cities that agree with the
  GT at city level (77% CloudFlare, 65% EdgeCast in the paper);
* **median error** — for mispredicted replicas, distance from the predicted
  city to the nearest GT city (434 km / 287 km);
* **GT/PAI** — how much of the advertised footprint the platform can see at
  all (high for CloudFlare, low for EdgeCast), bounding achievable recall.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

import numpy as np

from ..core.geolocation import geolocation_error_km
from ..geo.cities import City
from ..internet.deployments import AnycastDeployment
from ..measurement.httpprobe import (
    SiteCodeBook,
    measure_http_ground_truth,
    publicly_advertised_cities,
)
from ..measurement.platform import Platform
from .analysis import AnalysisResult


@dataclass
class PrefixValidation:
    """Validation scores for one anycast /24."""

    prefix: int
    predicted: List[City]
    matched: int
    errors_km: List[float]

    @property
    def precision(self) -> float:
        """City-level agreement rate among predicted replicas.

        Matched fraction of the *predicted* cities — precision.  The
        paper's Fig. 7 labels this quantity "TPR"; :attr:`tpr` is kept as
        a deprecated alias under that historical name.
        """
        return self.matched / len(self.predicted) if self.predicted else 0.0

    @property
    def tpr(self) -> float:
        """Deprecated alias of :attr:`precision` (the paper's label)."""
        return self.precision


@dataclass
class ValidationReport:
    """Aggregate validation for one deployment (one bar group of Fig. 7)."""

    as_name: str
    gt_cities: Set[City]
    pai_cities: Set[City]
    per_prefix: List[PrefixValidation] = field(default_factory=list)

    @property
    def gt_pai(self) -> float:
        """Share of the advertised footprint visible from the platform."""
        return len(self.gt_cities) / len(self.pai_cities) if self.pai_cities else 0.0

    @property
    def precision_mean(self) -> float:
        return float(np.mean([p.precision for p in self.per_prefix])) if self.per_prefix else 0.0

    @property
    def precision_std(self) -> float:
        return float(np.std([p.precision for p in self.per_prefix])) if self.per_prefix else 0.0

    @property
    def tpr_mean(self) -> float:
        """Deprecated alias of :attr:`precision_mean` (the paper's label)."""
        return self.precision_mean

    @property
    def tpr_std(self) -> float:
        """Deprecated alias of :attr:`precision_std` (the paper's label)."""
        return self.precision_std

    @property
    def all_errors_km(self) -> List[float]:
        out: List[float] = []
        for p in self.per_prefix:
            out.extend(p.errors_km)
        return out

    @property
    def median_error_km(self) -> float:
        errors = self.all_errors_km
        return float(np.median(errors)) if errors else 0.0


def validate_deployment(
    analysis: AnalysisResult,
    deployment: AnycastDeployment,
    platform: Platform,
    codebook: Optional[SiteCodeBook] = None,
) -> ValidationReport:
    """Score census geolocation of one deployment against its HTTP GT.

    Only deployments exposing a location header can be validated; a
    deployment without one yields an empty GT (and the paper indeed
    validates only CloudFlare and EdgeCast this way).
    """
    book = codebook or SiteCodeBook()
    gt = measure_http_ground_truth(deployment, platform, book)
    pai = publicly_advertised_cities(deployment)
    report = ValidationReport(
        as_name=deployment.entry.name, gt_cities=gt, pai_cities=pai
    )
    for prefix in deployment.prefixes:
        result = analysis.results.get(prefix)
        if result is None or not result.is_anycast:
            continue
        predicted = result.cities
        matched = sum(1 for city in predicted if city in gt)
        errors = []
        if gt:
            for city in predicted:
                if city in gt:
                    continue
                nearest = min(geolocation_error_km(city, t) for t in gt)
                errors.append(nearest)
        report.per_prefix.append(
            PrefixValidation(
                prefix=prefix, predicted=predicted, matched=matched, errors_km=errors
            )
        )
    return report
