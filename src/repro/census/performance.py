"""Anycast performance metrics: proximity, affinity, availability.

The paper's related work (Sec. 2.2) characterizes deployments through a
standard metric toolkit — proximity [9,10,19,34,43], affinity [9-11,13],
availability [10,32,43] — which the census substrate supports directly.
These metrics complement the census: the census says *where* replicas
are; these say *how well* the deployment serves clients.

* **proximity** — how much farther the serving replica is than the
  geographically nearest one (0 km = perfect geographic routing; BGP
  policy detours inflate it);
* **affinity** — stability of the client→replica mapping across repeated
  measurements (anycast breaks stateful protocols when routing flaps);
* **availability** — fraction of clients with a reachable replica at all
  (regionally-scoped announcements can strand remote clients on one
  faraway primary site).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..geo.coords import pairwise_distances_km
from ..internet.deployments import AnycastDeployment
from ..measurement.platform import Platform
from ..obs import current_tracer


@dataclass(frozen=True)
class ProximityReport:
    """Distribution of the proximity penalty over a client population."""

    #: Extra km to the serving replica vs the nearest one, per client.
    penalties_km: np.ndarray

    @property
    def optimal_fraction(self) -> float:
        """Clients served by their geographically nearest replica."""
        return float((self.penalties_km < 1.0).mean())

    @property
    def median_penalty_km(self) -> float:
        return float(np.median(self.penalties_km))

    @property
    def p95_penalty_km(self) -> float:
        return float(np.percentile(self.penalties_km, 95))


def proximity(
    deployment: AnycastDeployment,
    platform: Platform,
) -> ProximityReport:
    """Proximity of a deployment for a platform's client population."""
    with current_tracer().span("proximity", clients=len(platform)):
        lats, lons = platform.lats, platform.lons
        rep_lats = [r.location.lat for r in deployment.replicas]
        rep_lons = [r.location.lon for r in deployment.replicas]
        distances = pairwise_distances_km(lats, lons, rep_lats, rep_lons)
        serving = deployment.catchment(lats, lons)
        served_distance = distances[np.arange(len(lats)), serving]
        nearest_distance = distances.min(axis=1)
        return ProximityReport(penalties_km=served_distance - nearest_distance)


@dataclass(frozen=True)
class AffinityReport:
    """Catchment stability over repeated measurement rounds."""

    #: Per-client fraction of rounds that hit the modal replica.
    stability: np.ndarray

    @property
    def mean_affinity(self) -> float:
        return float(self.stability.mean())

    @property
    def flapping_fraction(self) -> float:
        """Clients whose serving replica changed at least once."""
        return float((self.stability < 1.0).mean())


def affinity(
    deployment: AnycastDeployment,
    platform: Platform,
    rounds: int = 10,
    flap_prob: float = 0.02,
    seed: int = 5,
) -> AffinityReport:
    """Affinity under occasional BGP path changes.

    The substrate's catchments are deterministic (BGP is stable on census
    timescales); ``flap_prob`` injects per-round route changes — a client
    flips to a uniformly random replica for that round — to measure how
    the metric degrades.  ``flap_prob=0`` gives perfect affinity.
    """
    if rounds < 1:
        raise ValueError("rounds must be positive")
    if not 0.0 <= flap_prob <= 1.0:
        raise ValueError("flap_prob must be in [0, 1]")
    with current_tracer().span("affinity", rounds=rounds):
        rng = np.random.default_rng(seed)
        base = deployment.catchment(platform.lats, platform.lons)
        n = len(base)
        observed = np.tile(base, (rounds, 1))
        flips = rng.random((rounds, n)) < flap_prob
        random_sites = rng.integers(0, deployment.site_count, size=(rounds, n))
        observed = np.where(flips, random_sites, observed)

        stability = np.empty(n, dtype=np.float64)
        for i in range(n):
            values, counts = np.unique(observed[:, i], return_counts=True)
            stability[i] = counts.max() / rounds
        return AffinityReport(stability=stability)


def availability(
    deployment: AnycastDeployment,
    platform: Platform,
    max_distance_km: float = 20_000.0,
) -> float:
    """Fraction of clients with a reachable (in-scope) replica.

    With globally-announced sites this is 1.0 by construction; regionally
    scoped deployments can leave remote clients with only the (possibly
    distant) primary, and ``max_distance_km`` can be tightened to ask
    "what share of clients has a replica within X km".
    """
    if max_distance_km <= 0:
        raise ValueError("max_distance_km must be positive")
    with current_tracer().span("availability", clients=len(platform)):
        lats, lons = platform.lats, platform.lons
        rep_lats = [r.location.lat for r in deployment.replicas]
        rep_lons = [r.location.lon for r in deployment.replicas]
        distances = pairwise_distances_km(lats, lons, rep_lats, rep_lons)
        if deployment.local_scope_km is not None:
            out_of_scope = distances[:, 1:] > deployment.local_scope_km
            distances[:, 1:] = np.where(out_of_scope, np.inf, distances[:, 1:])
        reachable = (distances <= max_distance_km).any(axis=1)
        return float(reachable.mean())
