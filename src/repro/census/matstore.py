"""Shared-memory / memmap backing store for dense census matrices.

At Atlas scale (~10k VPs × 10^6 targets) the combined RTT matrix is
~40 GB of float32 — too big to pickle across a ``Queue``, wasteful to
copy-on-write-dirty per worker, and often too big for RAM outright.
:class:`MatrixStore` materializes the two dense planes of an
:class:`~repro.census.combine.RttMatrix` (``rtt_ms`` float32 and
``sample_count`` uint8) in one of three backends:

* ``inline``  — ordinary heap arrays (the classic path; no store object);
* ``memmap``  — :class:`numpy.memmap` over unlinked-on-close temp files,
  so the matrix can exceed RAM and pages spill to disk;
* ``shared``  — :class:`multiprocessing.shared_memory.SharedMemory`
  segments, so any process that holds the :class:`StoreToken` maps the
  same physical pages.

Workers never receive the arrays themselves: they receive ``(shard
slice, token)`` descriptors and call :func:`attach`, which resolves to
the *inherited mapping* in forked children (a process-local registry
hit — zero syscalls) and opens a fresh mapping otherwise.  Results
travel home as compact per-target records, so no dense matrix ever
crosses a queue in either direction.

The hard invariant, enforced by ``tests/census/test_matstore.py``: every
backend produces byte-identical matrices and analysis output for every
worker count.  A store only changes *where* the bytes live.

Cleanup is belt-and-braces: explicit :meth:`MatrixStore.close`, a
``weakref.finalize`` on the store object, and an ``atexit`` sweep of
everything this process owns — so a worker killed mid-shard (it is
never the owner) cannot orphan a segment, and neither can a parent that
simply drops its matrix on the floor.
"""

from __future__ import annotations

import atexit
import os
import tempfile
import uuid
import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..obs import current_metrics

#: Environment knob overriding the configured store backend (mirrors
#: ``REPRO_ANALYSIS_ENGINE``): ``auto`` | ``inline`` | ``memmap`` | ``shared``.
STORE_ENV_VAR = "REPRO_MATRIX_STORE"

#: Valid store selectors.
BACKENDS = frozenset({"auto", "inline", "memmap", "shared"})

#: ``auto`` keeps matrices below this many cells inline: for small
#: studies the segment bookkeeping costs more than it saves.
AUTO_MIN_CELLS = 1 << 22

#: The two dense planes of an RttMatrix, in canonical order.
MATRIX_FIELDS: Tuple[Tuple[str, str], ...] = (
    ("rtt_ms", "float32"),
    ("sample_count", "uint8"),
)

#: Filename / segment-name prefix of everything this module creates —
#: tests glob for it to prove nothing was orphaned.
SEGMENT_PREFIX = "repro-ms"


def resolve_store(choice: Optional[str] = None, n_cells: int = 0) -> str:
    """The backend to use: ``inline``, ``memmap``, or ``shared``.

    ``REPRO_MATRIX_STORE`` wins over the configured ``choice`` (it is an
    ops/differential-testing knob); ``auto`` resolves to ``shared`` for
    large matrices where POSIX shared memory is available, ``memmap``
    where it is not, and ``inline`` below :data:`AUTO_MIN_CELLS`.
    """
    selected = os.environ.get(STORE_ENV_VAR) or (choice or "auto")
    if selected not in BACKENDS:
        raise ValueError(
            f"matrix store must be one of {sorted(BACKENDS)}, got {selected!r}"
        )
    if selected != "auto":
        return selected
    if n_cells < AUTO_MIN_CELLS:
        return "inline"
    return "shared" if _shm_usable() else "memmap"


def _shm_usable() -> bool:
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - baked into CPython
        return False
    return os.path.isdir("/dev/shm") and os.access("/dev/shm", os.W_OK)


@dataclass(frozen=True)
class StoreToken:
    """Picklable descriptor of one store — everything ``attach`` needs.

    A token is a few hundred bytes regardless of matrix size; it is what
    crosses process boundaries instead of the arrays.
    """

    backend: str                                   # "memmap" | "shared"
    key: str                                       # unique store id
    shape: Tuple[int, int]
    #: ``(field name, dtype string, locator)`` per plane; the locator is
    #: a file path (memmap) or a shared-memory segment name (shared).
    fields: Tuple[Tuple[str, str, str], ...]


#: Stores created or attached by *this* process, by key.  Weak-valued:
#: an entry lives exactly as long as something references the store.
#: Forked children inherit the parent's entries, which is what makes
#: ``attach`` a zero-syscall registry hit on the fork-pool hot path.
_LIVE: "weakref.WeakValueDictionary[str, MatrixStore]" = weakref.WeakValueDictionary()

#: Locator bookkeeping for segments *owned* by this process, swept at
#: interpreter exit.  Keyed by store key; removed on release.
_OWNED: Dict[str, Tuple[str, Tuple[Tuple[str, str, str], ...]]] = {}


def active_segments() -> List[str]:
    """Keys of the stores this process currently owns (test introspection)."""
    return sorted(_OWNED)


def _set_store_gauges() -> None:
    metrics = current_metrics()
    if not getattr(metrics, "enabled", False):
        return
    live = [store for store in _LIVE.values() if store is not None]
    metrics.gauge("matrix_store_segments").set(len(live))
    metrics.gauge("matrix_store_bytes").set(sum(s.nbytes for s in live))


def _release_segments(
    backend: str,
    key: str,
    entries: Tuple[Tuple[str, str, str], ...],
    owner: bool,
    handles: List[object],
) -> None:
    """Free one store's mappings and (when owner) its segments.

    Static on purpose: this is the ``weakref.finalize`` callback and must
    not hold the store alive.  Unlinking while mappings still exist is
    safe on POSIX — live views stay valid; the kernel reclaims the pages
    when the last mapping dies.
    """
    for handle in handles:
        try:
            handle.close()
        except BufferError:
            # An array still views the buffer: leave the mapping to die
            # with it; the unlink below already severs the name.
            pass
        except (OSError, ValueError):
            pass
    handles.clear()
    if owner:
        for _name, _dtype, locator in entries:
            try:
                if backend == "memmap":
                    os.unlink(locator)
                else:
                    from multiprocessing import shared_memory

                    segment = shared_memory.SharedMemory(name=locator)
                    segment.close()
                    segment.unlink()
            except (FileNotFoundError, OSError):
                pass
        _OWNED.pop(key, None)


@atexit.register
def _sweep_owned_segments() -> None:  # pragma: no cover - exit-path safety net
    for key, (backend, entries) in list(_OWNED.items()):
        _release_segments(backend, key, entries, owner=True, handles=[])


class MatrixStore:
    """One matrix's backing segments plus the arrays mapped onto them."""

    def __init__(
        self,
        backend: str,
        key: str,
        shape: Tuple[int, int],
        fields: Tuple[Tuple[str, str, str], ...],
        arrays: Dict[str, np.ndarray],
        owner: bool,
        handles: List[object],
    ) -> None:
        self.backend = backend
        self.key = key
        self.shape = tuple(shape)
        self._fields = fields
        self.arrays = arrays
        self.owner = owner
        self._handles = handles
        self._finalizer = weakref.finalize(
            self, _release_segments, backend, key, fields, owner, handles
        )
        _LIVE[key] = self
        if owner:
            _OWNED[key] = (backend, fields)
        _set_store_gauges()

    # -- construction --------------------------------------------------

    @classmethod
    def create(
        cls,
        shape: Tuple[int, int],
        backend: str,
        fields: Tuple[Tuple[str, str], ...] = MATRIX_FIELDS,
        dir: Optional[str] = None,
    ) -> "MatrixStore":
        """Allocate fresh zero-filled segments for ``shape``."""
        if backend not in ("memmap", "shared"):
            raise ValueError(f"cannot materialize backend {backend!r}")
        key = uuid.uuid4().hex[:12]
        arrays: Dict[str, np.ndarray] = {}
        located: List[Tuple[str, str, str]] = []
        handles: List[object] = []
        n_cells = int(shape[0]) * int(shape[1])
        for name, dtype_str in fields:
            dtype = np.dtype(dtype_str)
            if backend == "memmap":
                fd, path = tempfile.mkstemp(
                    prefix=f"{SEGMENT_PREFIX}-{key}-{name}-", suffix=".bin", dir=dir
                )
                os.close(fd)
                arrays[name] = np.memmap(path, dtype=dtype, mode="w+", shape=shape)
                located.append((name, dtype_str, path))
            else:
                from multiprocessing import shared_memory

                segment = shared_memory.SharedMemory(
                    create=True,
                    size=max(n_cells * dtype.itemsize, 1),
                    name=f"{SEGMENT_PREFIX}-{key}-{name}",
                )
                handles.append(segment)
                arrays[name] = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
                arrays[name][:] = 0
                located.append((name, dtype_str, segment.name))
        return cls(backend, key, shape, tuple(located), arrays, True, handles)

    @classmethod
    def attach(cls, token: StoreToken) -> "MatrixStore":
        """Map an existing store from its token.

        In a forked child (or the creating process itself) this is a
        registry hit returning the inherited mapping — the zero-copy hot
        path.  Otherwise fresh read-write mappings are opened.
        """
        existing = _LIVE.get(token.key)
        if existing is not None:
            return existing
        arrays: Dict[str, np.ndarray] = {}
        handles: List[object] = []
        for name, dtype_str, locator in token.fields:
            dtype = np.dtype(dtype_str)
            if token.backend == "memmap":
                arrays[name] = np.memmap(
                    locator, dtype=dtype, mode="r+", shape=tuple(token.shape)
                )
            else:
                from multiprocessing import shared_memory

                segment = shared_memory.SharedMemory(name=locator)
                _untrack_segment(segment)
                handles.append(segment)
                arrays[name] = np.ndarray(
                    tuple(token.shape), dtype=dtype, buffer=segment.buf
                )
        return cls(
            token.backend, token.key, tuple(token.shape), token.fields,
            arrays, False, handles,
        )

    # -- descriptors and views -----------------------------------------

    def token(self) -> StoreToken:
        return StoreToken(self.backend, self.key, self.shape, self._fields)

    def shard(self, lo: int, hi: int) -> Dict[str, np.ndarray]:
        """Zero-copy row-shard views ``[lo:hi)`` of every plane."""
        if not 0 <= lo <= hi <= self.shape[0]:
            raise ValueError(f"shard [{lo}, {hi}) outside {self.shape[0]} rows")
        return {name: array[lo:hi] for name, array in self.arrays.items()}

    @property
    def nbytes(self) -> int:
        return sum(array.nbytes for array in self.arrays.values())

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Release mappings now; the owner also unlinks the segments.

        Idempotent, and implied eventually by garbage collection — the
        explicit call just makes teardown deterministic.
        """
        self.arrays = {}
        self._finalizer()
        _set_store_gauges()

    @property
    def released(self) -> bool:
        return not self._finalizer.alive


def _untrack_segment(segment) -> None:
    """Detach an attach-only segment from the resource tracker.

    CPython < 3.13 registers *attaches* too, so a non-owner process exit
    would try to unlink a segment it never owned (premature destruction
    plus tracker noise).  The owner's own registration is untouched.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def allocate_matrix_planes(
    n_targets: int,
    n_vps: int,
    backend: str,
) -> Tuple[np.ndarray, np.ndarray, Optional[MatrixStore]]:
    """The combine fold's output planes, on the requested backend.

    Returns ``(rtt_ms, sample_count, store)`` with ``rtt_ms`` pre-filled
    with ``+inf`` (the fold identity) and counts zeroed; ``store`` is
    ``None`` on the inline path.  The arrays are bit-indistinguishable
    from heap arrays — only their backing differs.
    """
    if backend == "inline" or n_targets * n_vps == 0:
        rtt = np.full((n_targets, n_vps), np.inf, dtype=np.float32)
        counts = np.zeros((n_targets, n_vps), dtype=np.uint8)
        return rtt, counts, None
    store = MatrixStore.create((n_targets, n_vps), backend)
    rtt = store.arrays["rtt_ms"]
    counts = store.arrays["sample_count"]
    rtt[:] = np.inf
    return rtt, counts, store
