"""Array-native batched analysis engine — the census fast path.

The reference pipeline (:func:`repro.core.igreedy.igreedy` driven by
:func:`repro.census.analysis.analyze_matrix`) re-derives identical
geometry for every target: each of ~1,500 anycast /24s rebuilds a
pairwise haversine matrix over disks that are all centered on the same
~300 vantage points, materializes a ``LatencySample``/``Disk`` object per
matrix cell, and classifies each selected disk with per-city Python
arithmetic.  This module exploits the structural fact the paper's own
optimization leans on (Sec. 3.5): **the disk centers are fixed**.

* :class:`SharedGeometry` computes the VP-to-VP great-circle matrix once
  per :class:`~repro.census.combine.RttMatrix` (cached on the matrix
  object) and derives every target's disk-overlap matrix as a slice of
  that cache plus a radii outer sum — zero per-target trigonometry.
* Classification reads a cached city-to-VP distance matrix and the
  gazetteer's cached population array, with a per-``(vp_index, radius)``
  replica cache (iterative enumeration re-classifies near-identical
  disks across rounds and across targets).
* :func:`analyze_matrix_fast` optionally chunks the detected targets
  across the :mod:`repro.exec` fork pool and merges results in canonical
  row order, so any worker count produces identical output.

The hard invariant: for every configuration (strict/iterative
enumeration, any ``population_exponent``, ``max_rtt_ms`` on or off) and
any worker count, the fast path's :class:`AnalysisResult` is equivalent
object-for-object to the reference path's — same prefixes, masks,
replica cities, confidences and iteration counts.  Equality is bitwise
because every distance consumed here is produced by the same elementwise
haversine the reference calls, just computed once instead of per target
(see ``tests/test_fastpath_equivalence.py``).
"""

from __future__ import annotations

import queue as queue_mod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.detection import DetectionResult, detection_mask, radius_matrix
from ..core.enumeration import greedy_mis
from ..core.geolocation import classify_disks
from ..core.igreedy import IGreedyConfig, IGreedyResult, _dedup_by_city
from ..geo.cities import CityDB, default_city_db
from ..geo.coords import pairwise_distances_from_radians
from ..geo.disks import Disk
from ..obs import current_metrics, current_tracer
from .combine import RttMatrix


class SharedGeometry:
    """Geometry shared by every target of one (matrix, gazetteer) pair.

    Every disk of every target is centered on a vantage point, and
    iterative enumeration only ever moves a center onto a city — so three
    cached matrices (VP-VP, city-VP, city-city) cover every distance the
    whole analysis can ask for.
    """

    def __init__(self, matrix: RttMatrix, city_db: CityDB) -> None:
        self.matrix = matrix
        self.city_db = city_db
        #: (V, V) great-circle gaps, cached on the matrix instance.
        self.vp_gap = matrix.vp_distance_matrix()
        self.vp_points = matrix.vp_locations
        self.n_vps = matrix.n_vps
        # Lexicographic rank of each VP name: min_rtt_samples orders
        # ties by name, and ranks let an integer lexsort reproduce that.
        order = np.argsort(np.array(matrix.vp_names))
        self.name_rank = np.empty(len(order), dtype=np.int64)
        self.name_rank[order] = np.arange(len(order))
        self._vp_lat_rad = np.radians(
            np.array([p.lat for p in self.vp_points], dtype=np.float64)
        )
        self._vp_lon_rad = np.radians(
            np.array([p.lon for p in self.vp_points], dtype=np.float64)
        )
        self._city_vp: Optional[np.ndarray] = None
        self._combined: Optional[np.ndarray] = None

    @property
    def city_vp(self) -> np.ndarray:
        """(n_cities, n_vps) city-to-VP distances — the classification input.

        Column *j* is bit-identical to what ``classify_disk`` computes
        fresh for a disk centered on VP *j*.
        """
        if self._city_vp is None:
            lat_rad, lon_rad = self.city_db.coordinates_radians()
            matrix = pairwise_distances_from_radians(
                lat_rad, lon_rad, self._vp_lat_rad, self._vp_lon_rad
            )
            matrix.setflags(write=False)
            self._city_vp = matrix
        return self._city_vp

    @property
    def combined(self) -> np.ndarray:
        """(V+C, V+C) gap matrix over VPs then cities (iterative mode).

        Point id *p* is VP *p* for ``p < n_vps`` and city ``p - n_vps``
        otherwise; any mix of original and collapsed disk centers can be
        compared by fancy-indexing this one matrix.
        """
        if self._combined is None:
            city_lat, city_lon = self.city_db.coordinates_radians()
            lat = np.concatenate([self._vp_lat_rad, city_lat])
            lon = np.concatenate([self._vp_lon_rad, city_lon])
            # One call over the concatenated coordinates: every entry is
            # computed in exactly the orientation ``overlap_matrix`` would
            # use for the same pair, with no symmetry assumption.
            combined = pairwise_distances_from_radians(lat, lon, lat, lon)
            combined.setflags(write=False)
            self._combined = combined
        return self._combined

    def target_arrays(self, row: int) -> Tuple[np.ndarray, np.ndarray]:
        """One target's ``(vp_indices, rtt_ms)`` in reference sample order.

        Reproduces ``min_rtt_samples``: ascending RTT, ties broken by VP
        name — but as a lexsort over the row, with no objects built.
        """
        rtt_row = self.matrix.rtt_ms[row].astype(np.float64)
        present = np.nonzero(~np.isnan(rtt_row))[0]
        rtt = rtt_row[present]
        order = np.lexsort((self.name_rank[present], rtt))
        return present[order], rtt[order]

    def overlap_submatrix(self, vp_indices: np.ndarray, radii_km: np.ndarray) -> np.ndarray:
        """Disk-overlap matrix for VP-centered disks, from the cached gaps.

        Equivalent to :func:`repro.geo.disks.overlap_matrix` on the same
        disks — a slice plus a radii outer sum instead of fresh haversine.
        """
        gaps = self.vp_gap[np.ix_(vp_indices, vp_indices)]
        return gaps <= radii_km[:, None] + radii_km[None, :] + 1e-9


class FastAnalysisEngine:
    """Per-run state of the fast path: geometry plus classification cache."""

    def __init__(
        self,
        matrix: RttMatrix,
        city_db: Optional[CityDB] = None,
        config: Optional[IGreedyConfig] = None,
    ) -> None:
        self.config = config or IGreedyConfig()
        self.city_db = city_db or default_city_db()
        self.geometry = SharedGeometry(matrix, self.city_db)
        #: (vp_index, radius_km) -> (GeolocatedReplica, city index).  The
        #: same disk recurs across iterative rounds and across targets
        #: (quantized RTTs from the same VP); classification depends only
        #: on the key once the gazetteer and exponent are fixed.
        self._replica_cache: Dict[Tuple[int, float], Tuple[object, int]] = {}

    def warm(self, iterative: bool = False) -> None:
        """Materialize the lazy caches (e.g. before forking workers)."""
        self.geometry.city_vp
        if iterative:
            self.geometry.combined

    # -- classification ------------------------------------------------

    def classify_vp_disks(
        self, vp_indices: Sequence[int], radii_km: Sequence[float]
    ) -> List[Tuple[object, int]]:
        """Batched geolocation of VP-centered disks, through the cache.

        Uncached disks are classified in one :meth:`CityDB.classify_disks`
        call whose geometry is a column slice of the cached city-VP
        matrix; results are memoized per ``(vp_index, radius)``.
        """
        keys = [(int(v), float(r)) for v, r in zip(vp_indices, radii_km)]
        missing = [k for k in keys if k not in self._replica_cache]
        if missing:
            # Deduplicate while preserving order (dict keys are ordered).
            missing = list(dict.fromkeys(missing))
            disks = [
                Disk(center=self.geometry.vp_points[v], radius_km=r)
                for v, r in missing
            ]
            cols = self.geometry.city_vp[:, [v for v, _ in missing]]
            replicas = classify_disks(
                disks,
                self.city_db,
                population_exponent=self.config.population_exponent,
                center_distances=cols,
            )
            for key, replica in zip(missing, replicas):
                self._replica_cache[key] = (
                    replica,
                    self.city_db.index_of(replica.city),
                )
        return [self._replica_cache[k] for k in keys]

    # -- per-target pipeline -------------------------------------------

    def igreedy_arrays(
        self, vp_indices: np.ndarray, rtt_ms: np.ndarray
    ) -> IGreedyResult:
        """The full iGreedy pipeline on ``(vp_index, rtt)`` arrays.

        Mirrors :func:`repro.core.igreedy.igreedy` stage for stage —
        detection, MIS enumeration, classification, optional iterative
        collapse — but every distance is a cached-matrix lookup.
        """
        cfg = self.config
        geo = self.geometry
        metrics = current_metrics()
        n = len(vp_indices)

        with current_tracer().span("igreedy", samples=n) as span:
            radii = rtt_ms / 2.0 * cfg.speed_km_per_ms

            # Detection: any disjoint pair among the unfiltered disks.
            if n < 2:
                detection = DetectionResult(is_anycast=False, sample_count=n)
                return IGreedyResult(detection=detection)
            overlap_all = geo.overlap_submatrix(vp_indices, radii)
            disjoint = ~overlap_all
            if not disjoint.any():
                detection = DetectionResult(
                    is_anycast=False, witness=None, sample_count=n
                )
                return IGreedyResult(detection=detection)
            i, j = np.argwhere(disjoint)[0]
            detection = DetectionResult(
                is_anycast=True, witness=(int(i), int(j)), sample_count=n
            )
            result = IGreedyResult(detection=detection)

            # Uninformative-sample filter (with the reference's fallback
            # to the unfiltered set when it leaves fewer than two disks).
            if cfg.max_rtt_ms is not None:
                keep = np.nonzero(rtt_ms <= cfg.max_rtt_ms)[0]
                if len(keep) < 2:
                    keep = np.arange(n)
            else:
                keep = np.arange(n)
            vps = vp_indices[keep]
            radii_f = radii[keep]
            overlap = overlap_all[np.ix_(keep, keep)]
            m = len(vps)
            metrics.histogram("disks_per_target").observe(m)

            if cfg.strict_enumeration:
                selected = greedy_mis(overlaps=overlap, radii_km=radii_f)
                classified = self.classify_vp_disks(
                    vps[selected], radii_f[selected]
                )
                result.replicas = _dedup_by_city([r for r, _ in classified])
                result.iterations = 1
            else:
                self._iterate(result, vps, radii_f, overlap)

            metrics.histogram("igreedy_iterations").observe(result.iterations)
            metrics.counter("replicas_enumerated").inc(result.replica_count)
            span.set("replicas", result.replica_count)
            return result

    def _iterate(
        self,
        result: IGreedyResult,
        vps: np.ndarray,
        radii: np.ndarray,
        overlap: np.ndarray,
    ) -> None:
        """Paper-style iteration: collapse classified disks, re-run MIS."""
        cfg = self.config
        geo = self.geometry
        m = len(vps)
        # Point ids into the combined gap matrix: VP index while original,
        # n_vps + city index once collapsed onto a classified city.
        point_ids = vps.astype(np.int64).copy()
        cur_radii = radii.copy()
        classified: List[Optional[object]] = [None] * m
        current_overlap = overlap

        for iteration in range(1, cfg.max_iterations + 1):
            selected = greedy_mis(overlaps=current_overlap, radii_km=cur_radii)
            fresh = [i for i in selected if classified[i] is None]
            if fresh:
                for i, (replica, city_idx) in zip(
                    fresh,
                    self.classify_vp_disks(vps[fresh], radii[fresh]),
                ):
                    classified[i] = replica
                    point_ids[i] = geo.n_vps + city_idx
                    cur_radii[i] = 0.0
            result.iterations = iteration
            if not fresh:
                break
            gaps = geo.combined[np.ix_(point_ids, point_ids)]
            current_overlap = (
                gaps <= cur_radii[:, None] + cur_radii[None, :] + 1e-9
            )

        final = greedy_mis(overlaps=current_overlap, radii_km=cur_radii)
        result.replicas = _dedup_by_city(
            [classified[i] for i in final if classified[i] is not None]
        )

    def analyze_row(self, row: int) -> IGreedyResult:
        """Analyze one matrix row end to end."""
        vp_indices, rtt = self.geometry.target_arrays(row)
        return self.igreedy_arrays(vp_indices, rtt)


# -- parallel stage -----------------------------------------------------


def _encode_result(result: IGreedyResult, city_db: CityDB) -> tuple:
    """Flatten one result to primitives for the queue (compact record).

    A pickled :class:`IGreedyResult` drags ``City`` objects (names,
    country strings, populations) across the pipe per replica; the
    compact form is the city's gazetteer index plus the disk scalars —
    a few dozen bytes per target regardless of gazetteer size.
    """
    detection = result.detection
    return (
        detection.is_anycast,
        detection.witness,
        detection.sample_count,
        result.iterations,
        tuple(
            (
                city_db.index_of(replica.city),
                replica.disk.center.lat,
                replica.disk.center.lon,
                replica.disk.radius_km,
                replica.confidence,
            )
            for replica in result.replicas
        ),
    )


def _decode_result(encoded: tuple, city_db: CityDB) -> IGreedyResult:
    """Rebuild the exact :class:`IGreedyResult` from its compact record.

    Cities resolve through the shared gazetteer (the same objects the
    serial path classifies to), so decoded results are object-for-object
    equivalent to never having crossed a process boundary.
    """
    from ..core.geolocation import GeolocatedReplica
    from ..geo.coords import GeoPoint

    is_anycast, witness, sample_count, iterations, replicas = encoded
    result = IGreedyResult(
        detection=DetectionResult(
            is_anycast=is_anycast, witness=witness, sample_count=sample_count
        ),
        iterations=iterations,
    )
    result.replicas = [
        GeolocatedReplica(
            city=city_db.city_at(city_index),
            disk=Disk(center=GeoPoint(lat, lon), radius_km=radius_km),
            confidence=confidence,
        )
        for city_index, lat, lon, radius_km, confidence in replicas
    ]
    return result


@dataclass
class _AnalysisUnitContext:
    """Duck-typed :class:`repro.exec.pool.UnitContext` for analysis chunks.

    Shipped to workers by fork inheritance; a unit is one chunk of
    detected matrix rows, and its payload is the per-prefix results.
    When the matrix is store-backed the context also carries the
    :class:`~repro.census.matstore.StoreToken`, and workers re-attach
    their row shards from it (``prepare_worker``) instead of trusting
    inherited heap pages — the descriptor that crosses the fork is
    ``(chunk row slice, token)``, never the dense planes.  Results are
    compacted at the queue boundary (``encode_payload``) so the return
    traffic is per-target records, not pickled object graphs.
    """

    engine: FastAnalysisEngine
    chunks: Tuple[np.ndarray, ...]
    store_token: Optional[object] = field(default=None)
    worker_faults: Optional[object] = field(default=None)

    def execute(self, unit_id: int) -> List[Tuple[int, IGreedyResult]]:
        rows = self.chunks[unit_id]
        prefixes = self.engine.geometry.matrix.prefixes
        return [(int(prefixes[row]), self.engine.analyze_row(row)) for row in rows]

    # -- pool hooks (see repro.exec.pool.worker_main) -------------------

    def prepare_worker(self, worker_id: int) -> None:
        """Re-bind the matrix planes to the attached store, once per worker.

        In a forked child the attach is a registry hit on the inherited
        mapping (zero-copy either way); the point is that the worker's
        view is the *store's* pages — file- or shm-backed and shared —
        not private copies the fork could be asked to duplicate.
        """
        if self.store_token is None:
            return
        from .matstore import MatrixStore

        store = MatrixStore.attach(self.store_token)
        matrix = self.engine.geometry.matrix
        matrix.rtt_ms = store.arrays["rtt_ms"]
        matrix.sample_count = store.arrays["sample_count"]

    def encode_payload(self, payload: List[Tuple[int, IGreedyResult]]) -> list:
        city_db = self.engine.city_db
        return [(prefix, _encode_result(result, city_db)) for prefix, result in payload]

    def decode_payload(self, payload: list) -> List[Tuple[int, IGreedyResult]]:
        city_db = self.engine.city_db
        return [(prefix, _decode_result(encoded, city_db)) for prefix, encoded in payload]


def _analyze_rows_parallel(
    engine: FastAnalysisEngine,
    rows: np.ndarray,
    workers: int,
) -> Dict[int, IGreedyResult]:
    """Fan detected rows over the :mod:`repro.exec` fork pool.

    Chunks are merged in canonical chunk order, so the resulting dict's
    contents *and insertion order* are identical to the serial loop for
    any worker count.  A worker that dies or errors has its chunks
    re-executed in the parent — same computation, same result (or the
    same exception the serial path would have raised).
    """
    from ..exec.pool import (
        MSG_ERR,
        MSG_METRICS,
        MSG_OK,
        WorkerPool,
        drain_worker_metrics,
        fork_available,
    )

    from ..exec.plan import split_rows

    matrix = engine.geometry.matrix
    n_chunks = min(len(rows), max(workers * 4, workers))
    chunks = split_rows(rows, n_chunks)
    context = _AnalysisUnitContext(
        engine=engine,
        chunks=chunks,
        store_token=matrix.store.token() if matrix.store is not None else None,
    )

    if not fork_available():
        # Same plan, same merge order, no parallelism.
        payloads = {cid: context.execute(cid) for cid in range(n_chunks)}
        return _merge_payloads(payloads, n_chunks)

    # Materialize the shared geometry before forking so children inherit
    # it copy-on-write instead of each recomputing it.
    engine.warm(iterative=not engine.config.strict_enumeration)

    payloads: Dict[int, List[Tuple[int, IGreedyResult]]] = {}
    pending = set(range(n_chunks))
    pool = WorkerPool(context)
    metrics = current_metrics()
    metrics_received: set = set()
    try:
        handles = [pool.spawn() for _ in range(min(workers, n_chunks))]
        for cid in range(n_chunks):
            handles[cid % len(handles)].dispatch(cid)
        for handle in handles:
            handle.task_q.put(None)  # drain sentinel after the last chunk
        while pending:
            try:
                kind, _wid, unit_id, payload = pool.out_q.get(timeout=0.5)
            except queue_mod.Empty:
                # Salvage chunks stranded on dead workers in the parent.
                for handle in list(pool.workers.values()):
                    if handle.alive or handle.retired:
                        continue
                    for unit in handle.assigned:
                        if unit in pending:
                            payloads[unit] = context.execute(unit)
                            pending.discard(unit)
                            metrics.counter("analysis_chunks_salvaged").inc()
                    pool.retire(handle)
                continue
            if kind == MSG_METRICS:
                # A drained worker's in-worker registry (per-target
                # histograms): merge so parallel totals match serial.
                metrics_received.add(_wid)
                metrics.merge(payload)
            elif kind == MSG_OK:
                payloads[unit_id] = context.decode_payload(payload)
                pending.discard(unit_id)
            elif kind == MSG_ERR:
                # Re-run in the parent: deterministic — it either succeeds
                # (transient worker trouble) or raises exactly what the
                # serial path would have raised.
                payloads[unit_id] = context.execute(unit_id)
                pending.discard(unit_id)
        drain_worker_metrics(
            pool, metrics, received=metrics_received, send_sentinels=False
        )
    finally:
        pool.shutdown()
    metrics.counter("analysis_chunks_completed").inc(n_chunks)
    return _merge_payloads(payloads, n_chunks)


def _merge_payloads(
    payloads: Dict[int, List[Tuple[int, IGreedyResult]]], n_chunks: int
) -> Dict[int, IGreedyResult]:
    """Canonical-order merge: ascending chunk id, then row order within."""
    results: Dict[int, IGreedyResult] = {}
    for cid in range(n_chunks):
        for prefix, result in payloads[cid]:
            results[prefix] = result
    return results


# -- entry point --------------------------------------------------------


def analyze_matrix_fast(
    matrix: RttMatrix,
    city_db: Optional[CityDB] = None,
    config: Optional[IGreedyConfig] = None,
    min_samples: int = 3,
    workers: int = 0,
):
    """Array-native equivalent of :func:`repro.census.analysis.analyze_matrix`.

    ``workers > 0`` chunks the detected targets over a forked worker pool
    (``repro.exec``); ``0`` runs the same chunk plan serially in-process.
    Output is identical for every worker count, and so are metric totals:
    each worker records per-target histograms in its own registry and
    ships the snapshot home on drain, where it is merged bucket-wise
    (:func:`repro.exec.pool.drain_worker_metrics`).
    """
    from .analysis import AnalysisResult

    cfg = config or IGreedyConfig()
    db = city_db or default_city_db()
    metrics = current_metrics()

    vp_dist = matrix.vp_distance_matrix()
    radii = radius_matrix(matrix.rtt_ms, cfg.speed_km_per_ms)
    filled = (~np.isnan(matrix.rtt_ms)).sum(axis=1)
    enough = filled >= min_samples
    mask = detection_mask(vp_dist, radii) & enough

    if metrics.enabled:
        metrics.gauge("rtt_matrix_cells").set(int(matrix.rtt_ms.size))
        metrics.gauge("rtt_matrix_filled_cells").set(int(filled.sum()))
        metrics.gauge("rtt_matrix_targets").set(matrix.n_targets)
        if matrix.store is not None:
            metrics.gauge("matrix_store_bytes").set(int(matrix.store.nbytes))
        metrics.counter("targets_analyzed").inc(matrix.n_targets)
        metrics.counter("targets_classified_anycast").inc(int(mask.sum()))

    engine = FastAnalysisEngine(matrix, city_db=db, config=cfg)
    rows = np.nonzero(mask)[0]
    result = AnalysisResult(prefixes=matrix.prefixes, anycast_mask=mask)
    if workers and workers > 0 and len(rows) > 0:
        result.results = _analyze_rows_parallel(engine, rows, workers)
    else:
        for row in rows:
            result.results[int(matrix.prefixes[row])] = engine.analyze_row(row)
    return result
