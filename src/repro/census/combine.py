"""Combining censuses into a per-(VP, target) minimum-RTT matrix.

The paper's headline results come from the *combination* of four censuses
(Sec. 4.1): per vantage point and target, the minimum RTT across censuses
is kept — the best available estimate of pure propagation delay, which
tightens every disk and adds ~200 anycast /24s over any individual census
(Fig. 12).

Censuses run from different node subsets (261/255/269/240 of ~308), so the
combination is keyed on VP *name*; the union of nodes across censuses is
the effective platform of the combined dataset.

Scale notes (the Atlas-size path):

* The scattered fold is a packed-key sort + group reduction, not
  ``np.minimum.at``.  Packing ``(cell id << 32) | rtt_bits`` into one
  int64 and sorting makes each group's minimum its first element — one
  ``np.sort`` replaces two scattered ufunc passes.  Measured ~2× faster
  than the ``ufunc.at`` fast path of numpy >= 1.25 at 10^6+ records (and
  ~10–40× against the per-element dispatch of older numpys) while
  producing **identical bytes** (a float32 minimum is order-independent,
  NaN poisoning included, and uint8 counts wrap mod 256 either way) — see
  ``benchmarks/bench_scaling_frontier.py`` for the measured gap and
  ``tests/census/test_combine.py`` for the exact-bytes regression.
* Folds run in bounded chunks, so peak temp memory is O(chunk) no matter
  how many records stream through (:func:`matrix_from_record_batches`).
* The output planes can live on a :class:`~repro.census.matstore.MatrixStore`
  (memmap or POSIX shared memory) instead of the heap — same bytes,
  different backing — so workers attach instead of copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..geo.coords import GeoPoint, pairwise_distances_km
from ..measurement.campaign import Census
from ..measurement.platform import VantagePoint
from ..measurement.recordio import CensusRecords
from .matstore import MatrixStore, allocate_matrix_planes, resolve_store

#: Records per fold chunk: bounds the lexsort temporaries (~60 MB) while
#: keeping the vectorized reduction long enough to amortize.
_FOLD_CHUNK = 1 << 21


@dataclass
class RttMatrix:
    """Dense per-target, per-VP minimum-RTT view of one or more censuses.

    ``rtt_ms[i, j]`` is the smallest RTT any contributing census measured
    from VP ``vp_names[j]`` toward ``prefixes[i]``; NaN where no reply was
    ever received.
    """

    prefixes: np.ndarray          # (n_targets,) uint32, sorted
    vp_names: List[str]           # (n_vps,)
    vp_locations: List[GeoPoint]  # (n_vps,)
    rtt_ms: np.ndarray            # (n_targets, n_vps) float32, NaN = missing
    #: Number of censuses contributing at least one reply per cell.
    sample_count: np.ndarray      # (n_targets, n_vps) uint8
    #: Backing store when the planes live on memmap/shared segments
    #: (``None`` on the classic inline path).  Purely a *where*, never a
    #: *what*: bytes are identical across backends.
    store: Optional[MatrixStore] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        n_t, n_v = self.rtt_ms.shape
        if len(self.prefixes) != n_t or len(self.vp_names) != n_v:
            raise ValueError("RttMatrix dimension mismatch")
        if len(self.vp_locations) != n_v:
            raise ValueError("vp_locations length mismatch")
        self._vp_distances: Optional[np.ndarray] = None

    @property
    def n_targets(self) -> int:
        return len(self.prefixes)

    @property
    def n_vps(self) -> int:
        return len(self.vp_names)

    def vp_distance_matrix(self) -> np.ndarray:
        """Great-circle distances between all VP pairs (detection input).

        Computed once and cached on the instance (read-only): detection,
        the per-target enumeration geometry, and the throughput benchmark
        all share the same matrix, and every disk of every target is
        centered on one of these VPs — so per-target overlap matrices are
        slices of this cache plus a radii outer sum, with zero fresh
        trigonometry.
        """
        if self._vp_distances is None:
            lats = [p.lat for p in self.vp_locations]
            lons = [p.lon for p in self.vp_locations]
            distances = pairwise_distances_km(lats, lons, lats, lons)
            distances.setflags(write=False)
            self._vp_distances = distances
        return self._vp_distances

    def row_of(self, prefix: int) -> int:
        """Row index of a /24 prefix."""
        idx = int(np.searchsorted(self.prefixes, prefix))
        if idx >= len(self.prefixes) or self.prefixes[idx] != prefix:
            raise KeyError(f"prefix index {prefix} not in matrix")
        return idx

    def rows_of(self, prefixes: Sequence[int]) -> np.ndarray:
        """Vectorized bulk :meth:`row_of`: one searchsorted for the batch.

        Raises :exc:`KeyError` (naming up to five offenders) when any
        queried prefix is not in the matrix — the same contract as the
        scalar lookup, validated for the whole batch at once.
        """
        query = np.asarray(prefixes, dtype=np.int64)
        if query.size == 0:
            return np.empty(0, dtype=np.int64)
        n = len(self.prefixes)
        idx = np.searchsorted(self.prefixes, query)
        in_range = idx < n
        ok = in_range.copy()
        if in_range.any():
            safe = np.where(in_range, idx, 0)
            ok &= self.prefixes[safe].astype(np.int64) == query
        if not ok.all():
            missing = query[~ok][:5].tolist()
            raise KeyError(f"prefix indices not in matrix: {missing}")
        return idx.astype(np.int64)

    def bulk_samples(self, rows: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`samples_for`: masked-array access for many rows.

        Returns ``(present, rtt)`` — a boolean reply mask and the RTT
        block for the requested rows, both ``(len(rows), n_vps)``.  Sample
        ``(i, j)`` corresponds to ``(vp_names[j], vp_locations[j],
        rtt[i, j])``; consumers index the roster lists with
        ``np.nonzero(present[i])`` instead of looping targets in Python.
        """
        block = self.rtt_ms[np.asarray(rows, dtype=np.int64)]
        return ~np.isnan(block), block

    def samples_for(self, prefix: int):
        """(vp_name, vp_location, rtt) triples with a reply, for one target."""
        row = self.rtt_ms[self.row_of(prefix)]
        out = []
        for j in np.nonzero(~np.isnan(row))[0]:
            out.append((self.vp_names[j], self.vp_locations[j], float(row[j])))
        return out


# ----------------------------------------------------------------------
# The scattered (min, count) fold
# ----------------------------------------------------------------------


def _fold_chunk(
    rtt: np.ndarray,
    counts: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
) -> None:
    """Fold one chunk of ``(row, col, rtt)`` samples into the planes.

    Exact replacement for ``np.minimum.at(rtt, (rows, cols), values)`` +
    ``np.add.at(counts, (rows, cols), 1)`` via one packed-key sort: the
    flat cell id goes in the upper 32 bits and the RTT's raw float32 bits
    in the lower 32.  IEEE bit patterns of non-negative floats are
    order-isomorphic to unsigned integers (NaN above +inf), so after one
    ``np.sort`` each group's minimum is simply its first element, group
    sizes fall out of the boundaries, and the per-group results land on
    now-unique indices with plain fancy assignment.  NaN poisoning is
    preserved (a NaN anywhere in the group sorts last; the group is then
    poisoned), and count increments wrap mod 256 exactly as the uint8
    scattered add did.

    Precondition: values are non-negative or NaN — true of RTTs by
    construction, and what makes the bit-packing order-exact.
    """
    n_v = rtt.shape[1]
    flat = rows.astype(np.int64) * n_v + cols.astype(np.int64)
    keys = (flat << 32) | values.view(np.uint32).astype(np.int64)
    keys.sort()
    cell = keys >> 32
    boundaries = np.empty(len(cell), dtype=bool)
    boundaries[0] = True
    np.not_equal(cell[1:], cell[:-1], out=boundaries[1:])
    starts = np.flatnonzero(boundaries)
    ends = np.append(starts[1:], len(cell)) - 1
    group_min = (keys[starts] & 0xFFFFFFFF).astype(np.uint32).view(np.float32)
    group_max = (keys[ends] & 0xFFFFFFFF).astype(np.uint32).view(np.float32)
    group_min = np.where(np.isnan(group_max), np.float32(np.nan), group_min)
    r, c = np.divmod(cell[starts], n_v)
    rtt[r, c] = np.minimum(rtt[r, c], group_min)
    sizes = np.diff(np.append(starts, len(cell)))
    counts[r, c] += sizes.astype(counts.dtype)


def _fold_min_count(
    rtt: np.ndarray,
    counts: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    chunk: int = _FOLD_CHUNK,
) -> None:
    """Chunked scattered fold: O(chunk) temps regardless of batch size.

    Splitting is free for correctness: the minimum is associative and
    commutative (NaN included) and count addition wraps identically, so
    any chunking produces the same bytes as one pass.
    """
    n = len(values)
    if n == 0:
        return
    values = np.ascontiguousarray(values, dtype=np.float32)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        _fold_chunk(rtt, counts, rows[start:stop], cols[start:stop], values[start:stop])


def _infs_to_nan(rtt: np.ndarray, row_chunk: int = 65536) -> None:
    """Rewrite the fold identity (+inf) to the matrix convention (NaN).

    Chunked over rows so the boolean temp never approaches matrix size.
    """
    for lo in range(0, rtt.shape[0], row_chunk):
        block = rtt[lo : lo + row_chunk]
        block[np.isinf(block)] = np.nan


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------


def combine_censuses(
    censuses: Sequence[Census], store: Optional[str] = None
) -> RttMatrix:
    """Fold one or more censuses into the minimum-RTT matrix.

    ``store`` selects the backing of the output planes (``auto`` /
    ``inline`` / ``memmap`` / ``shared``; see
    :func:`repro.census.matstore.resolve_store`).  Bytes are identical
    across backends.
    """
    if not censuses:
        raise ValueError("no censuses to combine")

    # Union of vantage points across censuses, keyed by name.
    vp_index: Dict[str, int] = {}
    vp_locations: List[GeoPoint] = []
    for census in censuses:
        for vp in census.platform.vantage_points:
            if vp.name not in vp_index:
                vp_index[vp.name] = len(vp_index)
                vp_locations.append(vp.location)
    vp_names = sorted(vp_index, key=lambda n: vp_index[n])

    # Union of prefixes that ever replied.
    reply_parts = [c.records.replies() for c in censuses]
    all_prefixes = np.unique(np.concatenate([r.prefix for r in reply_parts]))
    n_t, n_v = len(all_prefixes), len(vp_index)

    backend = resolve_store(store, n_cells=n_t * n_v)
    rtt, counts, store_obj = allocate_matrix_planes(n_t, n_v, backend)

    for census, replies in zip(censuses, reply_parts):
        # Map census-local VP indices to global columns.
        local_to_global = np.array(
            [vp_index[vp.name] for vp in census.platform.vantage_points],
            dtype=np.int64,
        )
        rows = np.searchsorted(all_prefixes, replies.prefix)
        cols = local_to_global[replies.vp_index]
        _fold_min_count(rtt, counts, rows, cols, replies.rtt_ms)

    _infs_to_nan(rtt)
    return RttMatrix(
        prefixes=all_prefixes,
        vp_names=vp_names,
        vp_locations=vp_locations,
        rtt_ms=rtt,
        sample_count=counts,
        store=store_obj,
    )


def matrix_from_census(census: Census, store: Optional[str] = None) -> RttMatrix:
    """Single-census convenience wrapper."""
    return combine_censuses([census], store=store)


def matrix_from_records(
    records: "CensusRecords",
    vp_names: List[str],
    vp_locations: List[GeoPoint],
    store: Optional[str] = None,
) -> RttMatrix:
    """Rebuild a single-census matrix from archived records.

    The archive stores a census's raw records plus its VP roster (names
    and locations, in platform order); this reproduces exactly what
    :func:`matrix_from_census` computed on the live census — same fold,
    same float32 minima, same ordering — so analyses recomputed from the
    archive are byte-comparable to the originals.
    """
    replies = records.replies()
    prefixes = np.unique(replies.prefix)
    return matrix_from_record_batches(
        [records],
        vp_names,
        vp_locations,
        prefixes=prefixes,
        store=store,
    )


def reply_prefix_union(batches: Iterable["CensusRecords"]) -> np.ndarray:
    """Sorted union of reply prefixes across record batches, O(union) memory.

    The first of the two streaming passes over an archived journal: the
    union fixes the matrix row space so the fold pass can run in O(batch).
    Identical to ``np.unique(all_replies.prefix)`` on the concatenation.
    """
    union = np.empty(0, dtype=np.uint32)
    for batch in batches:
        union = np.union1d(union, np.unique(batch.replies().prefix))
    return union.astype(np.uint32)


def matrix_from_record_batches(
    batches: Iterable["CensusRecords"],
    vp_names: List[str],
    vp_locations: List[GeoPoint],
    prefixes: np.ndarray,
    store: Optional[str] = None,
) -> RttMatrix:
    """Streaming :func:`matrix_from_records`: fold batches as they arrive.

    Peak memory is O(batch) + the output planes: nothing concatenates.
    ``prefixes`` is the sorted row space (see :func:`reply_prefix_union`
    for the streaming first pass); a reply outside it is an error, never
    a silent drop.  Bytes equal the one-shot builder's for any batching.
    """
    prefixes = np.asarray(prefixes, dtype=np.uint32)
    n_t, n_v = len(prefixes), len(vp_names)
    backend = resolve_store(store, n_cells=n_t * n_v)
    rtt, counts, store_obj = allocate_matrix_planes(n_t, n_v, backend)

    for batch in batches:
        replies = batch.replies()
        if len(replies) == 0:
            continue
        rows = np.searchsorted(prefixes, replies.prefix)
        safe = np.minimum(rows, max(n_t - 1, 0))
        if n_t == 0 or not np.array_equal(prefixes[safe], replies.prefix):
            raise ValueError("reply prefix outside the provided row space")
        cols = replies.vp_index.astype(np.int64)
        if len(cols) and int(cols.max()) >= n_v:
            raise ValueError("reply vp_index outside the provided roster")
        _fold_min_count(rtt, counts, rows, cols, replies.rtt_ms)

    _infs_to_nan(rtt)
    return RttMatrix(
        prefixes=prefixes,
        vp_names=list(vp_names),
        vp_locations=list(vp_locations),
        rtt_ms=rtt,
        sample_count=counts,
        store=store_obj,
    )


def merge_matrices(
    a: RttMatrix, b: RttMatrix, store: Optional[str] = None
) -> RttMatrix:
    """Merge two RTT matrices (minimum per cell, union of VPs/targets).

    The cross-platform case of the paper's Sec. 5: measurements of the
    same targets from PlanetLab and RIPE Atlas are combined into one view,
    keyed by VP name (platforms use disjoint name spaces).

    Each operand streams into the output in bounded row blocks — the old
    implementation materialized full-matrix coordinate arrays for both
    operands (a third full-size allocation on top of the output); now the
    only full-size planes are the output's own, and the per-block
    ``fmin`` (NaN-ignoring minimum) reproduces the masked scattered fold
    byte for byte.
    """
    vp_index: Dict[str, int] = {}
    vp_locations: List[GeoPoint] = []
    for matrix in (a, b):
        for name, location in zip(matrix.vp_names, matrix.vp_locations):
            if name not in vp_index:
                vp_index[name] = len(vp_index)
                vp_locations.append(location)
    vp_names = sorted(vp_index, key=lambda n: vp_index[n])

    prefixes = np.union1d(a.prefixes, b.prefixes)
    n_t, n_v = len(prefixes), len(vp_index)
    backend = resolve_store(store, n_cells=n_t * n_v)
    rtt, counts, store_obj = allocate_matrix_planes(n_t, n_v, backend)

    row_chunk = max(1, _FOLD_CHUNK // max(n_v, 1))
    for matrix in (a, b):
        cols = np.array([vp_index[n] for n in matrix.vp_names], dtype=np.int64)
        rows = np.searchsorted(prefixes, matrix.prefixes)
        for lo in range(0, matrix.n_targets, row_chunk):
            hi = min(lo + row_chunk, matrix.n_targets)
            window = np.ix_(rows[lo:hi], cols)
            block = matrix.rtt_ms[lo:hi]
            # fmin keeps the present side: NaN source cells leave the
            # output untouched, exactly like the masked scattered fold.
            rtt[window] = np.fmin(rtt[window], block)
            # Counts only ever came from present cells (poisoned planes
            # may carry counts under NaN RTTs; those never merged before
            # and must not now).
            contribution = np.where(
                np.isnan(block), 0, matrix.sample_count[lo:hi]
            ).astype(counts.dtype)
            counts[window] += contribution

    _infs_to_nan(rtt)
    return RttMatrix(
        prefixes=prefixes,
        vp_names=vp_names,
        vp_locations=vp_locations,
        rtt_ms=rtt,
        sample_count=counts,
        store=store_obj,
    )
