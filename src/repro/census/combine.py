"""Combining censuses into a per-(VP, target) minimum-RTT matrix.

The paper's headline results come from the *combination* of four censuses
(Sec. 4.1): per vantage point and target, the minimum RTT across censuses
is kept — the best available estimate of pure propagation delay, which
tightens every disk and adds ~200 anycast /24s over any individual census
(Fig. 12).

Censuses run from different node subsets (261/255/269/240 of ~308), so the
combination is keyed on VP *name*; the union of nodes across censuses is
the effective platform of the combined dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..geo.coords import GeoPoint, pairwise_distances_km
from ..measurement.campaign import Census
from ..measurement.platform import VantagePoint
from ..measurement.recordio import CensusRecords


@dataclass
class RttMatrix:
    """Dense per-target, per-VP minimum-RTT view of one or more censuses.

    ``rtt_ms[i, j]`` is the smallest RTT any contributing census measured
    from VP ``vp_names[j]`` toward ``prefixes[i]``; NaN where no reply was
    ever received.
    """

    prefixes: np.ndarray          # (n_targets,) uint32, sorted
    vp_names: List[str]           # (n_vps,)
    vp_locations: List[GeoPoint]  # (n_vps,)
    rtt_ms: np.ndarray            # (n_targets, n_vps) float32, NaN = missing
    #: Number of censuses contributing at least one reply per cell.
    sample_count: np.ndarray      # (n_targets, n_vps) uint8

    def __post_init__(self) -> None:
        n_t, n_v = self.rtt_ms.shape
        if len(self.prefixes) != n_t or len(self.vp_names) != n_v:
            raise ValueError("RttMatrix dimension mismatch")
        if len(self.vp_locations) != n_v:
            raise ValueError("vp_locations length mismatch")
        self._vp_distances: Optional[np.ndarray] = None

    @property
    def n_targets(self) -> int:
        return len(self.prefixes)

    @property
    def n_vps(self) -> int:
        return len(self.vp_names)

    def vp_distance_matrix(self) -> np.ndarray:
        """Great-circle distances between all VP pairs (detection input).

        Computed once and cached on the instance (read-only): detection,
        the per-target enumeration geometry, and the throughput benchmark
        all share the same matrix, and every disk of every target is
        centered on one of these VPs — so per-target overlap matrices are
        slices of this cache plus a radii outer sum, with zero fresh
        trigonometry.
        """
        if self._vp_distances is None:
            lats = [p.lat for p in self.vp_locations]
            lons = [p.lon for p in self.vp_locations]
            distances = pairwise_distances_km(lats, lons, lats, lons)
            distances.setflags(write=False)
            self._vp_distances = distances
        return self._vp_distances

    def row_of(self, prefix: int) -> int:
        """Row index of a /24 prefix."""
        idx = int(np.searchsorted(self.prefixes, prefix))
        if idx >= len(self.prefixes) or self.prefixes[idx] != prefix:
            raise KeyError(f"prefix index {prefix} not in matrix")
        return idx

    def samples_for(self, prefix: int):
        """(vp_name, vp_location, rtt) triples with a reply, for one target."""
        row = self.rtt_ms[self.row_of(prefix)]
        out = []
        for j in np.nonzero(~np.isnan(row))[0]:
            out.append((self.vp_names[j], self.vp_locations[j], float(row[j])))
        return out


def combine_censuses(censuses: Sequence[Census]) -> RttMatrix:
    """Fold one or more censuses into the minimum-RTT matrix."""
    if not censuses:
        raise ValueError("no censuses to combine")

    # Union of vantage points across censuses, keyed by name.
    vp_index: Dict[str, int] = {}
    vp_locations: List[GeoPoint] = []
    for census in censuses:
        for vp in census.platform.vantage_points:
            if vp.name not in vp_index:
                vp_index[vp.name] = len(vp_index)
                vp_locations.append(vp.location)
    vp_names = sorted(vp_index, key=lambda n: vp_index[n])

    # Union of prefixes that ever replied.
    reply_parts = [c.records.replies() for c in censuses]
    all_prefixes = np.unique(np.concatenate([r.prefix for r in reply_parts]))
    n_t, n_v = len(all_prefixes), len(vp_index)

    rtt = np.full((n_t, n_v), np.inf, dtype=np.float32)
    counts = np.zeros((n_t, n_v), dtype=np.uint8)

    for census, replies in zip(censuses, reply_parts):
        # Map census-local VP indices to global columns.
        local_to_global = np.array(
            [vp_index[vp.name] for vp in census.platform.vantage_points],
            dtype=np.int64,
        )
        rows = np.searchsorted(all_prefixes, replies.prefix)
        cols = local_to_global[replies.vp_index]
        np.minimum.at(rtt, (rows, cols), replies.rtt_ms)
        np.add.at(counts, (rows, cols), 1)

    rtt[np.isinf(rtt)] = np.nan
    return RttMatrix(
        prefixes=all_prefixes,
        vp_names=vp_names,
        vp_locations=vp_locations,
        rtt_ms=rtt,
        sample_count=counts,
    )


def matrix_from_census(census: Census) -> RttMatrix:
    """Single-census convenience wrapper."""
    return combine_censuses([census])


def matrix_from_records(
    records: "CensusRecords",
    vp_names: List[str],
    vp_locations: List[GeoPoint],
) -> RttMatrix:
    """Rebuild a single-census matrix from archived records.

    The archive stores a census's raw records plus its VP roster (names
    and locations, in platform order); this reproduces exactly what
    :func:`matrix_from_census` computed on the live census — same fold,
    same float32 minima, same ordering — so analyses recomputed from the
    archive are byte-comparable to the originals.
    """
    replies = records.replies()
    prefixes = np.unique(replies.prefix)
    n_t, n_v = len(prefixes), len(vp_names)
    rtt = np.full((n_t, n_v), np.inf, dtype=np.float32)
    counts = np.zeros((n_t, n_v), dtype=np.uint8)
    rows = np.searchsorted(prefixes, replies.prefix)
    cols = replies.vp_index.astype(np.int64)
    np.minimum.at(rtt, (rows, cols), replies.rtt_ms)
    np.add.at(counts, (rows, cols), 1)
    rtt[np.isinf(rtt)] = np.nan
    return RttMatrix(
        prefixes=prefixes,
        vp_names=list(vp_names),
        vp_locations=list(vp_locations),
        rtt_ms=rtt,
        sample_count=counts,
    )


def merge_matrices(a: RttMatrix, b: RttMatrix) -> RttMatrix:
    """Merge two RTT matrices (minimum per cell, union of VPs/targets).

    The cross-platform case of the paper's Sec. 5: measurements of the
    same targets from PlanetLab and RIPE Atlas are combined into one view,
    keyed by VP name (platforms use disjoint name spaces).
    """
    vp_index: Dict[str, int] = {}
    vp_locations: List[GeoPoint] = []
    for matrix in (a, b):
        for name, location in zip(matrix.vp_names, matrix.vp_locations):
            if name not in vp_index:
                vp_index[name] = len(vp_index)
                vp_locations.append(location)
    vp_names = sorted(vp_index, key=lambda n: vp_index[n])

    prefixes = np.union1d(a.prefixes, b.prefixes)
    n_t, n_v = len(prefixes), len(vp_index)
    rtt = np.full((n_t, n_v), np.inf, dtype=np.float32)
    counts = np.zeros((n_t, n_v), dtype=np.uint8)

    for matrix in (a, b):
        cols = np.array([vp_index[n] for n in matrix.vp_names], dtype=np.int64)
        rows = np.searchsorted(prefixes, matrix.prefixes)
        present = ~np.isnan(matrix.rtt_ms)
        r_idx, c_idx = np.nonzero(present)
        np.minimum.at(rtt, (rows[r_idx], cols[c_idx]), matrix.rtt_ms[r_idx, c_idx])
        np.add.at(counts, (rows[r_idx], cols[c_idx]), matrix.sample_count[r_idx, c_idx])

    rtt[np.isinf(rtt)] = np.nan
    return RttMatrix(
        prefixes=prefixes,
        vp_names=vp_names,
        vp_locations=vp_locations,
        rtt_ms=rtt,
        sample_count=counts,
    )
