"""Measurement platform simulator: platforms, prober, censuses, portscan."""

from .archive import load_census, save_census
from .ark import ArkDataset, ark_round
from .atlas import AtlasBudget, CampaignCost, campaign_cost, census_feasible
from .campaign import (
    CampaignHealthReport,
    Census,
    CensusAborted,
    CensusCampaign,
    CensusInterrupted,
)
from .faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    RetryPolicy,
    VpHealth,
    VpHealthTracker,
)
from .greylist import Blacklist, Greylist
from .httpprobe import (
    HttpResponse,
    SiteCodeBook,
    http_probe,
    measure_http_ground_truth,
    publicly_advertised_cities,
    replica_city_from_headers,
)
from .lfsr import GaloisLFSR, lfsr_permutation, width_for
from .platform import Platform, VantagePoint, planetlab_platform, ripe_platform
from .portscan import (
    HostScan,
    PortObservation,
    PortscanReport,
    nmap_is_ssl,
    nmap_service_name,
    run_portscan,
    scan_deployment,
)
from .prober import (
    ERROR_EMISSION_PROB,
    FULL_RATE_PPS,
    SAFE_RATE_PPS,
    VpScanResult,
    base_rtt_row,
    simulate_vp_scan,
)
from .recordio import (
    FLAG_OTHER_ERROR,
    FLAG_REPLY,
    CensusJournal,
    CensusRecords,
    CorruptBatchError,
    JournalBatch,
    concatenate,
    flag_for,
    outcome_for,
)

__all__ = [
    "load_census",
    "save_census",
    "CampaignHealthReport",
    "CensusAborted",
    "CensusInterrupted",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "RetryPolicy",
    "VpHealth",
    "VpHealthTracker",
    "CensusJournal",
    "CorruptBatchError",
    "JournalBatch",
    "ArkDataset",
    "ark_round",
    "AtlasBudget",
    "CampaignCost",
    "campaign_cost",
    "census_feasible",
    "Census",
    "CensusCampaign",
    "Blacklist",
    "Greylist",
    "HttpResponse",
    "SiteCodeBook",
    "http_probe",
    "measure_http_ground_truth",
    "publicly_advertised_cities",
    "replica_city_from_headers",
    "GaloisLFSR",
    "lfsr_permutation",
    "width_for",
    "Platform",
    "VantagePoint",
    "planetlab_platform",
    "ripe_platform",
    "HostScan",
    "PortObservation",
    "PortscanReport",
    "nmap_is_ssl",
    "nmap_service_name",
    "run_portscan",
    "scan_deployment",
    "ERROR_EMISSION_PROB",
    "FULL_RATE_PPS",
    "SAFE_RATE_PPS",
    "VpScanResult",
    "base_rtt_row",
    "simulate_vp_scan",
    "FLAG_OTHER_ERROR",
    "FLAG_REPLY",
    "CensusRecords",
    "concatenate",
    "flag_for",
    "outcome_for",
]
