"""nmap-like TCP portscan of anycast deployments (paper Sec. 4.3).

The paper complements the latency census with an nmap campaign: for every
anycast /24 of the top-100 ASes, one representative IP is scanned on all
2^16 TCP ports at low rate; open ports are classified against the
well-known service registry and the answering software is fingerprinted.

Simulation model:

* a deployment's open ports are its catalog profile plus, for seedbox-rich
  hosts (OVH, Incapsula), a deterministic set of random high ports;
* on-path firewalls silently filter a small fraction of (target, port)
  pairs — the paper notes its port counts are conservative for exactly this
  reason;
* fingerprinting succeeds only part of the time; unidentified services are
  reported as ``tcpwrapped`` exactly as nmap does (for 44 of 67 ASes on
  port 53 the paper's nmap could not name the daemon).

nmap's service table names ~6,000 of the 65,535 ports; our exact registry
(:mod:`repro.net.services`) covers the head, and a deterministic
pseudo-registry extends it so that a uniformly random high port is
well-known with nmap-like probability (~4.5%) — this is what makes OVH's
10k open ports yield the paper's ~450 well-known services.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..internet.deployments import AnycastDeployment
from ..internet.topology import SyntheticInternet
from ..net.services import (
    SOFTWARE_CATALOG,
    is_ssl,
    is_well_known,
    service_name,
)

#: Probability a genuinely open port is filtered on-path and missed.
FILTER_PROB = 0.04

#: Probability nmap identifies the software behind an open port.
FINGERPRINT_PROB = 0.55

#: Fraction of all TCP ports nmap's service table can name.
NMAP_COVERAGE = 0.045

#: Fraction of the pseudo-registry's named services that run over SSL.
PSEUDO_SSL_FRACTION = 0.38


def nmap_service_name(port: int) -> Optional[str]:
    """Well-known name nmap would print for a port, or ``None``.

    Exact registry first; beyond it, a deterministic pseudo-registry marks
    ~4.5% of the remaining port space as named services (``svc-<port>``),
    matching the density of nmap's real table.
    """
    exact = service_name(port)
    if exact is not None:
        return exact
    digest = zlib.crc32(port.to_bytes(2, "big")) % 1000
    if digest < NMAP_COVERAGE * 1000:
        return f"svc-{port}"
    return None


def nmap_is_ssl(port: int) -> bool:
    """Whether the (possibly pseudo-registered) service runs over SSL."""
    if is_ssl(port):
        return True
    name = nmap_service_name(port)
    if name is None or not name.startswith("svc-"):
        return False
    return zlib.crc32(port.to_bytes(2, "big") + b"s") % 1000 < PSEUDO_SSL_FRACTION * 1000


# Port families used to route fingerprints to the right software category.
_DNS_PORTS = {53, 853}
_WEB_PORTS = {80, 443, 8080, 8443, 8000, 8081, 2052, 2053, 2082, 2083, 2086, 2087, 2095, 2096, 8880}
_MAIL_PORTS = {25, 110, 143, 465, 587, 993, 995}
_SSH_PORTS = {22}
_DB_PORTS = {1433, 3306, 5432}


@dataclass(frozen=True)
class PortObservation:
    """One open port on one scanned IP."""

    port: int
    service: Optional[str]
    software: Optional[str]
    ssl: bool

    @property
    def is_well_known(self) -> bool:
        return self.service is not None

    @property
    def is_tcpwrapped(self) -> bool:
        return self.software is None


@dataclass
class HostScan:
    """Scan result for one representative IP of an anycast /24."""

    prefix: int
    asn: int
    observations: List[PortObservation]

    @property
    def open_ports(self) -> List[int]:
        return [o.port for o in self.observations]


@dataclass
class PortscanReport:
    """Aggregated results of a portscan campaign."""

    scans: List[HostScan]

    @property
    def n_hosts(self) -> int:
        return len(self.scans)

    @property
    def responding_hosts(self) -> List[HostScan]:
        return [s for s in self.scans if s.observations]

    @property
    def n_ases(self) -> int:
        return len({s.asn for s in self.responding_hosts})

    def ports_by_as(self) -> Dict[int, Set[int]]:
        """Distinct open ports per AS (the unit of Sec. 4.3's statistics)."""
        out: Dict[int, Set[int]] = {}
        for scan in self.scans:
            out.setdefault(scan.asn, set()).update(scan.open_ports)
        return {asn: ports for asn, ports in out.items() if ports}

    @property
    def total_open_ports(self) -> int:
        """Sum of per-AS distinct open ports (paper: 10,499)."""
        return sum(len(p) for p in self.ports_by_as().values())

    def well_known_services(self) -> Set[str]:
        """Distinct well-known service names observed (paper: 457)."""
        names = set()
        for scan in self.scans:
            for obs in scan.observations:
                if obs.service is not None:
                    names.add(obs.service)
        return names

    def ssl_services(self) -> Set[str]:
        """Well-known services observed over SSL (paper: 185)."""
        names = set()
        for scan in self.scans:
            for obs in scan.observations:
                if obs.service is not None and obs.ssl:
                    names.add(obs.service)
        return names

    def software_seen(self) -> Set[str]:
        """Distinct fingerprinted software (paper: 30)."""
        out = set()
        for scan in self.scans:
            for obs in scan.observations:
                if obs.software is not None:
                    out.add(obs.software)
        return out

    def top_ports_by_as(self, k: int = 10) -> List[Tuple[int, int]]:
        """Top-k ports by number of ASes exposing them (Fig. 14 top)."""
        counts: Dict[int, int] = {}
        for ports in self.ports_by_as().values():
            for port in ports:
                counts[port] = counts.get(port, 0) + 1
        return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:k]

    def top_ports_by_prefix(self, k: int = 10) -> List[Tuple[int, int]]:
        """Top-k ports by number of /24s exposing them (Fig. 14 bottom).

        Dominated by whichever AS owns the most /24s — the class-imbalance
        effect the paper highlights (CloudFlare's management ports flood
        the per-/24 ranking).
        """
        counts: Dict[int, int] = {}
        for scan in self.scans:
            for port in set(scan.open_ports):
                counts[port] = counts.get(port, 0) + 1
        return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:k]

    def open_ports_per_as(self) -> Dict[int, int]:
        """AS -> count of distinct open ports (Fig. 15's CCDF input)."""
        return {asn: len(ports) for asn, ports in self.ports_by_as().items()}

    def software_by_as(self) -> Dict[str, Set[int]]:
        """Software name -> set of ASes running it (Fig. 16's histogram)."""
        out: Dict[str, Set[int]] = {}
        for scan in self.scans:
            for obs in scan.observations:
                if obs.software is not None:
                    out.setdefault(obs.software, set()).add(scan.asn)
        return out


def _deployment_open_ports(dep: AnycastDeployment) -> List[int]:
    """Ground-truth open ports of a deployment (profile + seedbox tail)."""
    ports = set(dep.entry.ports)
    extra = dep.entry.extra_random_ports
    if extra:
        rng = np.random.default_rng(dep.entry.asn * 31 + 7)
        candidates = rng.permutation(np.arange(1024, 65536))
        for port in candidates:
            if len(ports) >= len(dep.entry.ports) + extra:
                break
            ports.add(int(port))
    return sorted(ports)


def _software_for_port(dep: AnycastDeployment, port: int, rng: np.random.Generator) -> Optional[str]:
    """Which of the deployment's software answers on a port, if nmap can tell."""
    if rng.random() > FINGERPRINT_PROB:
        return None
    from ..net.services import SoftwareCategory

    def of_category(cat: SoftwareCategory) -> Optional[str]:
        for name in dep.entry.software:
            if SOFTWARE_CATALOG[name].category is cat:
                return name
        return None

    if port in _DNS_PORTS:
        return of_category(SoftwareCategory.DNS)
    if port in _WEB_PORTS:
        return of_category(SoftwareCategory.WEB)
    if port in _MAIL_PORTS:
        return of_category(SoftwareCategory.MAIL)
    if port in _SSH_PORTS:
        return "OpenSSH" if "OpenSSH" in dep.entry.software else None
    if port in _DB_PORTS:
        for name in ("MySQL", "Microsoft SQL"):
            if name in dep.entry.software:
                return name
        return None
    # High/unusual ports: fingerprint only occasionally maps to something.
    other = of_category(SoftwareCategory.OTHER)
    if other is not None and rng.random() < 0.3:
        return other
    return None


def scan_deployment(
    dep: AnycastDeployment,
    seed: int = 1000,
    prefixes: Optional[Sequence[int]] = None,
) -> List[HostScan]:
    """Scan one representative IP per /24 of a deployment."""
    rng = np.random.default_rng(seed + dep.entry.asn)
    true_ports = _deployment_open_ports(dep)
    scans = []
    for prefix in (prefixes if prefixes is not None else dep.prefixes):
        observations = []
        for port in true_ports:
            if rng.random() < FILTER_PROB:
                continue  # silently filtered on path: conservative undercount
            observations.append(
                PortObservation(
                    port=port,
                    service=nmap_service_name(port),
                    software=_software_for_port(dep, port, rng),
                    ssl=nmap_is_ssl(port),
                )
            )
        scans.append(HostScan(prefix=prefix, asn=dep.entry.asn, observations=observations))
    return scans


def run_portscan(
    internet: SyntheticInternet,
    deployments: Optional[Sequence[AnycastDeployment]] = None,
    seed: int = 1000,
) -> PortscanReport:
    """Portscan campaign over the given deployments (default: top-100).

    Mirrors the paper's restriction to "interesting deployments": the /24s
    of the 100 ASes with the largest geographic footprint.
    """
    if deployments is None:
        deployments = [d for d in internet.deployments if d.entry.rank <= 100]
    scans: List[HostScan] = []
    for dep in deployments:
        scans.extend(scan_deployment(dep, seed=seed))
    return PortscanReport(scans=scans)
