"""RIPE Atlas constraint model (paper Sec. 3.2).

The paper explains why RIPE Atlas — despite better geographic coverage —
could not host the census: "it has a limited control on the rate and type
of measurements, as well as their instantiation for such a large scale
campaign (i.e., upload of the hitlist, probing budget)".

Atlas meters usage in **credits**: one ping result costs ~1 credit per
probe, daily spending is capped per user, and a single measurement cannot
target millions of destinations.  This module encodes those constraints so
the infeasibility argument is executable rather than anecdotal.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AtlasBudget:
    """A RIPE-Atlas-like usage policy.

    Values follow the public Atlas defaults of the paper's era (order of
    magnitude is what matters for the argument).
    """

    #: Credits charged per ping result (one probe, one target).
    credits_per_ping: float = 1.0
    #: Maximum credits a user may spend per day.
    daily_credit_cap: float = 1_000_000.0
    #: Maximum concurrent targets of one measurement definition.
    max_targets_per_measurement: int = 1_000
    #: Maximum probes one measurement may request.
    max_probes_per_measurement: int = 1_000

    def __post_init__(self) -> None:
        if self.credits_per_ping <= 0 or self.daily_credit_cap <= 0:
            raise ValueError("credit parameters must be positive")
        if self.max_targets_per_measurement < 1 or self.max_probes_per_measurement < 1:
            raise ValueError("measurement caps must be positive")


@dataclass(frozen=True)
class CampaignCost:
    """Feasibility summary of a census-like campaign on Atlas."""

    total_pings: int
    total_credits: float
    days_at_daily_cap: float
    measurements_needed: int

    @property
    def feasible_within(self) -> float:
        """Days needed respecting the daily cap (the headline number)."""
        return self.days_at_daily_cap


def campaign_cost(
    n_targets: int,
    n_probes: int,
    budget: AtlasBudget = AtlasBudget(),
) -> CampaignCost:
    """Cost of probing ``n_targets`` from ``n_probes`` Atlas probes.

    An anycast census needs *every* probe to measure *every* target
    (Sec. 2.2: targets cannot be split across vantage points).
    """
    if n_targets < 1 or n_probes < 1:
        raise ValueError("targets and probes must be positive")
    total_pings = n_targets * n_probes
    total_credits = total_pings * budget.credits_per_ping
    days = total_credits / budget.daily_credit_cap
    import math

    measurements = math.ceil(n_targets / budget.max_targets_per_measurement) * math.ceil(
        n_probes / budget.max_probes_per_measurement
    )
    return CampaignCost(
        total_pings=total_pings,
        total_credits=total_credits,
        days_at_daily_cap=days,
        measurements_needed=measurements,
    )


def census_feasible(
    n_targets: int,
    n_probes: int,
    deadline_days: float,
    budget: AtlasBudget = AtlasBudget(),
) -> bool:
    """Can the campaign complete within ``deadline_days`` under the budget?

    The paper's census (6.6M targets x even a modest 100 probes) busts any
    realistic deadline; a follow-up campaign on the O(10^3) *detected*
    prefixes fits comfortably — which is exactly the division of labour
    Sec. 5 proposes (detect with PlanetLab, refine with Atlas).
    """
    if deadline_days <= 0:
        raise ValueError("deadline must be positive")
    return campaign_cost(n_targets, n_probes, budget).days_at_daily_cap <= deadline_days
