"""Census record formats: compact binary vs textual CSV.

A scalability lesson of the paper (Sec. 3.5, Tab. 1): the first census was
logged as text (270 MB per node, 79 GB total) and took >3 days to analyze;
switching to "a stripped-down binary format containing a timestamp, delay
and ICMP flag" (~20 MB per node, 6 GB per census) brought analysis under
three hours.  We implement both formats so the benchmark can reproduce the
size/throughput gap.

A record exists for every probe that got *some* answer (echo reply or ICMP
error); silence produces no packet and hence no record.  The ``flag`` field
encodes the outcome exactly as the paper does — "encoding greylist return
codes 9, 10, or 13 as a negative sign":

* ``0``   echo reply (``rtt_ms`` is valid),
* ``-13`` / ``-10`` / ``-9``  administratively-prohibited errors,
* ``1``   other ICMP error.
"""

from __future__ import annotations

import io
import json
import os
import pathlib
import struct
import zlib
from dataclasses import dataclass
from typing import BinaryIO, Dict, Optional, Sequence, TextIO, Tuple, Union

import numpy as np

from ..net.addresses import format_slash24, parse_slash24
from ..net.icmp import IcmpOutcome

FLAG_REPLY = 0
FLAG_OTHER_ERROR = 1

_MAGIC = b"ACEN"
_VERSION = 2
_HEADER = struct.Struct("<4sHHQ")  # magic, version, census_id, n_records

_RAW_MAGIC = b"ACRW"
_RAW_HEADER = struct.Struct("<4sHHQ")  # magic, version, census_id, n_records

#: RTT quantum of the binary format: 0.01 ms.
RTT_QUANTUM_MS = 0.01


def flag_for(outcome: IcmpOutcome) -> int:
    """Encode an ICMP outcome in the record flag convention."""
    if outcome is IcmpOutcome.ECHO_REPLY:
        return FLAG_REPLY
    if outcome.triggers_greylist:
        return -outcome.icmp_code
    if outcome.is_error:
        return FLAG_OTHER_ERROR
    raise ValueError(f"{outcome} produces no record")


def outcome_for(flag: int) -> IcmpOutcome:
    """Decode a record flag back to an ICMP outcome."""
    if flag == FLAG_REPLY:
        return IcmpOutcome.ECHO_REPLY
    if flag == FLAG_OTHER_ERROR:
        return IcmpOutcome.UNREACHABLE
    if flag < 0:
        from ..net.icmp import outcome_from_code

        return outcome_from_code(-flag)
    raise ValueError(f"unknown record flag {flag!r}")


@dataclass
class CensusRecords:
    """Columnar storage of one census's probe records.

    Parallel arrays indexed by record number:

    * ``vp_index``   uint16 — vantage-point position within the census;
    * ``prefix``     uint32 — the /24 prefix index probed;
    * ``timestamp_ms`` float64 — probe send time since census start;
    * ``rtt_ms``     float32 — RTT (NaN unless the flag says reply);
    * ``flag``       int8   — outcome encoding (see module docstring).
    """

    census_id: int
    vp_index: np.ndarray
    prefix: np.ndarray
    timestamp_ms: np.ndarray
    rtt_ms: np.ndarray
    flag: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.vp_index)
        for name in ("prefix", "timestamp_ms", "rtt_ms", "flag"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"column {name} length mismatch")
        self.vp_index = np.asarray(self.vp_index, dtype=np.uint16)
        self.prefix = np.asarray(self.prefix, dtype=np.uint32)
        self.timestamp_ms = np.asarray(self.timestamp_ms, dtype=np.float64)
        self.rtt_ms = np.asarray(self.rtt_ms, dtype=np.float32)
        self.flag = np.asarray(self.flag, dtype=np.int8)

    def __len__(self) -> int:
        return len(self.vp_index)

    @classmethod
    def empty(cls, census_id: int) -> "CensusRecords":
        """A well-typed zero-record batch (e.g. a fully-masked scan)."""
        return cls(
            census_id,
            np.empty(0, np.uint16),
            np.empty(0, np.uint32),
            np.empty(0, np.float64),
            np.empty(0, np.float32),
            np.empty(0, np.int8),
        )

    def checksum(self) -> int:
        """CRC-32 over the batch content (census id + all columns).

        Computed on the node right after a scan and re-checked when the
        batch is collected, so silently-corrupted batches (bad RAM, torn
        writes, mangled transfers) are detected instead of polluting the
        census.  Byte-order-independent: columns are hashed in canonical
        little-endian layout.
        """
        crc = zlib.crc32(struct.pack("<Q", self.census_id))
        for column, dtype in (
            (self.vp_index, "<u2"),
            (self.prefix, "<u4"),
            (self.timestamp_ms, "<f8"),
            (self.rtt_ms, "<f4"),
            (self.flag, "i1"),
        ):
            crc = zlib.crc32(np.ascontiguousarray(column, dtype=dtype).tobytes(), crc)
        return crc & 0xFFFFFFFF

    @property
    def reply_mask(self) -> np.ndarray:
        return self.flag == FLAG_REPLY

    def replies(self) -> "CensusRecords":
        """Only the echo-reply records (the analysis input)."""
        return self.select(self.reply_mask)

    def greylistable(self) -> "CensusRecords":
        """Only records carrying administratively-prohibited errors."""
        return self.select(self.flag < 0)

    def select(self, mask: np.ndarray) -> "CensusRecords":
        return CensusRecords(
            census_id=self.census_id,
            vp_index=self.vp_index[mask],
            prefix=self.prefix[mask],
            timestamp_ms=self.timestamp_ms[mask],
            rtt_ms=self.rtt_ms[mask],
            flag=self.flag[mask],
        )

    # ------------------------------------------------------------------
    # Binary format
    # ------------------------------------------------------------------

    def write_binary(self, fp: BinaryIO) -> int:
        """Write the compact binary format; return bytes written."""
        n = len(self)
        header = _HEADER.pack(_MAGIC, _VERSION, self.census_id, n)
        fp.write(header)
        written = len(header)
        # RTT quantized to centi-milliseconds; NaN encoded as 0 (the flag
        # already says whether the RTT is meaningful).
        rtt_q = np.where(np.isnan(self.rtt_ms), 0.0, self.rtt_ms / RTT_QUANTUM_MS)
        columns = (
            self.vp_index.astype("<u2"),
            self.prefix.astype("<u4"),
            np.round(self.timestamp_ms).astype("<u4"),
            np.round(rtt_q).astype("<u4"),
            self.flag.astype("i1"),
        )
        for col in columns:
            buf = col.tobytes()
            fp.write(buf)
            written += len(buf)
        return written

    @classmethod
    def read_binary(cls, fp: BinaryIO) -> "CensusRecords":
        header = fp.read(_HEADER.size)
        magic, version, census_id, n = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise ValueError("not a census binary file")
        if version != _VERSION:
            raise ValueError(f"unsupported census format version {version}")
        def col(dtype: str, width: int) -> np.ndarray:
            raw = fp.read(n * width)
            if len(raw) != n * width:
                raise ValueError("truncated census binary file")
            return np.frombuffer(raw, dtype=dtype)

        vp = col("<u2", 2)
        prefix = col("<u4", 4)
        ts = col("<u4", 4).astype(np.float64)
        rtt_q = col("<u4", 4)
        flag = col("i1", 1)
        rtt = rtt_q.astype(np.float32) * RTT_QUANTUM_MS
        rtt = np.where(flag == FLAG_REPLY, rtt, np.float32(np.nan))
        return cls(census_id, vp, prefix, ts, rtt.astype(np.float32), flag)

    def binary_size_bytes(self) -> int:
        """Size of the binary serialization without writing it out."""
        return _HEADER.size + len(self) * (2 + 4 + 4 + 4 + 1)

    # ------------------------------------------------------------------
    # Lossless (checkpoint) format
    # ------------------------------------------------------------------

    def write_raw(self, fp: BinaryIO) -> int:
        """Write the full-precision columns; return bytes written.

        Unlike :meth:`write_binary` (which quantizes timestamps and RTTs
        for compactness, as the paper's stripped-down format does), this
        round-trips exactly — required by the checkpoint journal, whose
        determinism guarantee is that a resumed census is *bit-for-bit*
        equal to an uninterrupted one.
        """
        header = _RAW_HEADER.pack(_RAW_MAGIC, 1, self.census_id, len(self))
        fp.write(header)
        written = len(header)
        for column, dtype in (
            (self.vp_index, "<u2"),
            (self.prefix, "<u4"),
            (self.timestamp_ms, "<f8"),
            (self.rtt_ms, "<f4"),
            (self.flag, "i1"),
        ):
            buf = np.ascontiguousarray(column, dtype=dtype).tobytes()
            fp.write(buf)
            written += len(buf)
        return written

    @classmethod
    def read_raw(cls, fp: BinaryIO) -> "CensusRecords":
        header = fp.read(_RAW_HEADER.size)
        magic, version, census_id, n = _RAW_HEADER.unpack(header)
        if magic != _RAW_MAGIC:
            raise ValueError("not a raw census record blob")
        if version != 1:
            raise ValueError(f"unsupported raw record version {version}")

        def col(dtype: str, width: int) -> np.ndarray:
            raw = fp.read(n * width)
            if len(raw) != n * width:
                raise ValueError("truncated raw census record blob")
            return np.frombuffer(raw, dtype=dtype)

        return cls(
            census_id,
            col("<u2", 2),
            col("<u4", 4),
            col("<f8", 8).astype(np.float64),
            col("<f4", 4).astype(np.float32),
            col("i1", 1),
        )

    # ------------------------------------------------------------------
    # Textual format
    # ------------------------------------------------------------------

    def write_csv(self, fp: TextIO) -> int:
        """Write the verbose textual format; return characters written."""
        written = fp.write("# census_id,vp_index,prefix,timestamp_ms,rtt_ms,flag\n")
        for i in range(len(self)):
            rtt = self.rtt_ms[i]
            rtt_text = "" if np.isnan(rtt) else f"{float(rtt):.6f}"
            line = (
                f"{self.census_id},{int(self.vp_index[i])},"
                f"{format_slash24(int(self.prefix[i]))},"
                f"{float(self.timestamp_ms[i]):.3f},{rtt_text},{int(self.flag[i])}\n"
            )
            written += fp.write(line)
        return written

    @classmethod
    def read_csv(cls, fp: TextIO) -> "CensusRecords":
        census_id = 0
        vp, prefix, ts, rtt, flag = [], [], [], [], []
        for line in fp:
            if not line.strip() or line.startswith("#"):
                continue
            parts = line.rstrip("\n").split(",")
            if len(parts) != 6:
                raise ValueError(f"malformed census CSV line: {line!r}")
            census_id = int(parts[0])
            vp.append(int(parts[1]))
            prefix.append(parse_slash24(parts[2]))
            ts.append(float(parts[3]))
            rtt.append(float(parts[4]) if parts[4] else np.nan)
            flag.append(int(parts[5]))
        return cls(
            census_id,
            np.array(vp, dtype=np.uint16),
            np.array(prefix, dtype=np.uint32),
            np.array(ts, dtype=np.float64),
            np.array(rtt, dtype=np.float32),
            np.array(flag, dtype=np.int8),
        )

    def csv_size_bytes(self) -> int:
        """Size of the CSV serialization without keeping it around."""
        sink = _CountingTextSink()
        self.write_csv(sink)
        return sink.count


class _CountingTextSink(io.TextIOBase):
    """A write-only text stream that just counts characters."""

    def __init__(self) -> None:
        self.count = 0

    def write(self, s: str) -> int:  # type: ignore[override]
        self.count += len(s)
        return len(s)


class CorruptPayloadError(ValueError):
    """A checksummed payload failed its integrity check (torn or flipped)."""


# Footer of the checksummed raw container: magic, payload CRC-32, payload
# length (mod 2^32).  A footer — not a header — so truncation strips the
# seal itself and is caught even when the payload happens to parse.
_SEAL_MAGIC = b"ACSM"
_SEAL_FOOTER = struct.Struct("<4sII")


def write_raw_checksummed(records: "CensusRecords", fp: BinaryIO) -> int:
    """Write :meth:`CensusRecords.write_raw` plus an integrity footer.

    The archive's payload format: the raw lossless columns followed by a
    CRC-32 seal over them.  :func:`read_raw_checksummed` refuses torn or
    bit-flipped files with :class:`CorruptPayloadError` instead of
    returning silently-wrong data.
    """
    sink = io.BytesIO()
    records.write_raw(sink)
    payload = sink.getvalue()
    footer = _SEAL_FOOTER.pack(
        _SEAL_MAGIC, zlib.crc32(payload) & 0xFFFFFFFF, len(payload) & 0xFFFFFFFF
    )
    fp.write(payload)
    fp.write(footer)
    return len(payload) + len(footer)


def read_raw_checksummed(fp: BinaryIO) -> "CensusRecords":
    """Read a checksummed raw payload, verifying the seal first.

    Raises :class:`CorruptPayloadError` on any integrity failure:
    missing/garbled footer, truncated payload, or CRC mismatch.  For
    bounded-memory access to large payloads use :func:`iter_raw_batches`,
    which performs the same verification without materializing the file.
    """
    data = fp.read()
    if len(data) < _SEAL_FOOTER.size:
        raise CorruptPayloadError("payload too short for integrity footer")
    payload, footer = data[: -_SEAL_FOOTER.size], data[-_SEAL_FOOTER.size :]
    magic, crc, length = _SEAL_FOOTER.unpack(footer)
    if magic != _SEAL_MAGIC:
        raise CorruptPayloadError("missing integrity footer (torn write?)")
    if len(payload) & 0xFFFFFFFF != length:
        raise CorruptPayloadError(
            f"payload length {len(payload)} != sealed length {length}"
        )
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise CorruptPayloadError("payload CRC mismatch (bit rot or tampering)")
    try:
        return CensusRecords.read_raw(io.BytesIO(payload))
    except ValueError as exc:  # seal ok but content unparseable
        raise CorruptPayloadError(f"sealed payload unreadable: {exc}") from exc


#: Raw-format column layout: (attribute dtype, on-disk dtype, width).
_RAW_COLUMNS = (
    ("<u2", 2),
    ("<u4", 4),
    ("<f8", 8),
    ("<f4", 4),
    ("i1", 1),
)
_RAW_RECORD_BYTES = sum(width for _dtype, width in _RAW_COLUMNS)

#: IO chunk of the streaming CRC pass.
_STREAM_CHUNK = 1 << 22


def iter_raw_batches(fp: BinaryIO, batch_records: int = 1 << 18):
    """Stream a checksummed raw container in bounded record batches.

    The memory-flat replay path: the seal is verified with a chunked CRC
    pass (never holding more than :data:`_STREAM_CHUNK` bytes), then the
    column-major payload is served as :class:`CensusRecords` batches of
    at most ``batch_records`` rows via per-column slice reads — peak
    memory is O(batch) regardless of file size.  Raises
    :class:`CorruptPayloadError` for exactly the failures
    :func:`read_raw_checksummed` rejects.  Requires a seekable stream;
    concatenating the yielded batches reproduces the one-shot read.
    """
    if not fp.seekable():  # pragma: no cover - all our containers are files
        raise ValueError("iter_raw_batches requires a seekable stream")
    if batch_records < 1:
        raise ValueError("batch_records must be >= 1")
    start = fp.tell()
    fp.seek(0, os.SEEK_END)
    total = fp.tell() - start
    if total < _SEAL_FOOTER.size:
        raise CorruptPayloadError("payload too short for integrity footer")
    payload_len = total - _SEAL_FOOTER.size
    fp.seek(start + payload_len)
    magic, crc, length = _SEAL_FOOTER.unpack(fp.read(_SEAL_FOOTER.size))
    if magic != _SEAL_MAGIC:
        raise CorruptPayloadError("missing integrity footer (torn write?)")
    if payload_len & 0xFFFFFFFF != length:
        raise CorruptPayloadError(
            f"payload length {payload_len} != sealed length {length}"
        )
    fp.seek(start)
    running = 0
    remaining = payload_len
    while remaining:
        chunk = fp.read(min(_STREAM_CHUNK, remaining))
        if not chunk:
            raise CorruptPayloadError("payload truncated under its seal")
        running = zlib.crc32(chunk, running)
        remaining -= len(chunk)
    if running & 0xFFFFFFFF != crc:
        raise CorruptPayloadError("payload CRC mismatch (bit rot or tampering)")

    fp.seek(start)
    header = fp.read(_RAW_HEADER.size)
    try:
        header_magic, version, census_id, n = _RAW_HEADER.unpack(header)
        if header_magic != _RAW_MAGIC:
            raise ValueError("not a raw census record blob")
        if version != 1:
            raise ValueError(f"unsupported raw record version {version}")
        if _RAW_HEADER.size + n * _RAW_RECORD_BYTES > payload_len:
            raise ValueError("truncated raw census record blob")
    except (struct.error, ValueError) as exc:
        raise CorruptPayloadError(f"sealed payload unreadable: {exc}") from exc

    # Column offsets within the payload: columns are stored contiguously.
    offsets = []
    position = start + _RAW_HEADER.size
    for _dtype, width in _RAW_COLUMNS:
        offsets.append(position)
        position += n * width

    for lo in range(0, max(n, 1), batch_records):
        hi = min(lo + batch_records, n)
        if n == 0:
            hi = 0
        columns = []
        for (dtype, width), offset in zip(_RAW_COLUMNS, offsets):
            fp.seek(offset + lo * width)
            raw = fp.read((hi - lo) * width)
            columns.append(np.frombuffer(raw, dtype=dtype))
        yield CensusRecords(
            census_id,
            columns[0],
            columns[1],
            columns[2].astype(np.float64),
            columns[3].astype(np.float32),
            columns[4],
        )
        if n == 0:
            return


class CorruptBatchError(ValueError):
    """A record batch failed its integrity checksum."""

    def __init__(self, indices: Sequence[int]) -> None:
        self.indices = tuple(indices)
        super().__init__(
            f"{len(self.indices)} corrupt record batch(es) at indices {self.indices}"
        )


def concatenate(
    parts: Tuple[CensusRecords, ...],
    checksums: Optional[Sequence[int]] = None,
    on_corrupt: str = "raise",
) -> CensusRecords:
    """Concatenate per-VP record batches into one census-wide set.

    When ``checksums`` (one expected :meth:`CensusRecords.checksum` per
    batch) is given, every batch is validated first.  ``on_corrupt``
    selects what happens on a mismatch: ``"raise"`` (default) raises
    :class:`CorruptBatchError`; ``"drop"`` silently excludes the corrupt
    batches — callers wanting accounting should validate per batch
    themselves (as :class:`~repro.measurement.campaign.CensusCampaign`
    does) and use ``concatenate`` as the final integrity gate.
    """
    if checksums is not None:
        if len(checksums) != len(parts):
            raise ValueError("one checksum per batch required")
        if on_corrupt not in ("raise", "drop"):
            raise ValueError(f"unknown on_corrupt mode {on_corrupt!r}")
        bad = [
            i
            for i, (part, expected) in enumerate(zip(parts, checksums))
            if part.checksum() != int(expected)
        ]
        if bad:
            if on_corrupt == "raise":
                raise CorruptBatchError(bad)
            parts = tuple(p for i, p in enumerate(parts) if i not in set(bad))
    if not parts:
        raise ValueError("nothing to concatenate")
    ids = {p.census_id for p in parts}
    if len(ids) != 1:
        raise ValueError(f"mixed census ids: {sorted(ids)}")
    return CensusRecords(
        census_id=parts[0].census_id,
        vp_index=np.concatenate([p.vp_index for p in parts]),
        prefix=np.concatenate([p.prefix for p in parts]),
        timestamp_ms=np.concatenate([p.timestamp_ms for p in parts]),
        rtt_ms=np.concatenate([p.rtt_ms for p in parts]),
        flag=np.concatenate([p.flag for p in parts]),
    )


# ----------------------------------------------------------------------
# Checkpoint journal
# ----------------------------------------------------------------------

_JOURNAL_MAGIC = b"ACJ1"
_JOURNAL_FRAME = struct.Struct("<4sIII")  # magic, json len, blob len, crc32


class JournalBatch:
    """One journaled per-VP scan outcome: metadata plus optional records.

    Records load lazily: a batch recovered from disk holds only its blob
    coordinates until :attr:`records` is first touched, so scanning or
    resuming a large journal costs O(metadata), not O(journal) — the
    arrays of a VP nobody asks about are never materialized.
    """

    def __init__(
        self,
        payload: Dict,
        records: Optional[CensusRecords] = None,
        source: Optional[Tuple[pathlib.Path, int, int]] = None,
    ) -> None:
        self.payload = payload
        self._records = records
        #: ``(journal path, blob offset, blob length)`` for lazy loading.
        self._source = source

    @property
    def records(self) -> Optional[CensusRecords]:
        if self._records is None and self._source is not None:
            path, offset, length = self._source
            with open(path, "rb") as fp:
                fp.seek(offset)
                blob = fp.read(length)
            self._records = CensusRecords.read_raw(io.BytesIO(blob))
        return self._records


class CensusJournal:
    """Append-only, crash-tolerant journal of completed per-VP batches.

    A census writes one ``census-meta`` entry up front (identifying the
    campaign seed, census id, participating VPs and probe mask) and one
    batch entry per completed VP scan.  Each entry is framed with a
    CRC-32 so a torn trailing write — the journal's own crash mode — is
    detected and discarded on load; everything before it is recovered.

    Resuming a census with a matching journal skips the already-finished
    VPs entirely.  Because every per-VP scan RNG is keyed rather than
    streamed, a resumed census is bit-for-bit identical to an
    uninterrupted one under the same seed.
    """

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)
        self.meta: Optional[Dict] = None
        self.batches: Dict[str, JournalBatch] = {}
        if self.path.exists():
            self._load()

    # -- persistence -------------------------------------------------------

    def _load(self) -> None:
        """Incremental frame scan: O(largest entry) memory, lazy blobs.

        Each frame's CRC still covers metadata *and* blob, so every blob
        byte is read once here (in bounded chunks) — but the decoded
        record arrays are not materialized; batches remember their blob
        coordinates and deserialize on first access instead.
        """
        size = self.path.stat().st_size
        with open(self.path, "rb") as fp:
            offset = 0
            while offset + _JOURNAL_FRAME.size <= size:
                fp.seek(offset)
                head = fp.read(_JOURNAL_FRAME.size)
                if len(head) < _JOURNAL_FRAME.size:
                    break
                magic, json_len, blob_len, crc = _JOURNAL_FRAME.unpack(head)
                if magic != _JOURNAL_MAGIC:
                    break
                end = offset + _JOURNAL_FRAME.size + json_len + blob_len
                if end > size:
                    break  # torn tail: the writer died mid-entry
                body = fp.read(json_len)
                running = zlib.crc32(body)
                remaining = blob_len
                while remaining:
                    chunk = fp.read(min(1 << 20, remaining))
                    if not chunk:
                        break
                    running = zlib.crc32(chunk, running)
                    remaining -= len(chunk)
                if remaining or running & 0xFFFFFFFF != crc:
                    break  # corrupted tail entry
                entry = json.loads(body.decode("utf-8"))
                if entry.get("kind") == "census-meta":
                    self.meta = entry
                else:
                    source = (
                        (self.path, offset + _JOURNAL_FRAME.size + json_len, blob_len)
                        if blob_len
                        else None
                    )
                    self.batches[entry["vp"]] = JournalBatch(entry, source=source)
                offset = end

    def _append(self, entry: Dict, records: Optional[CensusRecords]) -> None:
        blob = b""
        if records is not None:
            sink = io.BytesIO()
            records.write_raw(sink)
            blob = sink.getvalue()
        body = json.dumps(entry, sort_keys=True).encode("utf-8")
        payload = body + blob
        frame = _JOURNAL_FRAME.pack(
            _JOURNAL_MAGIC, len(body), len(blob), zlib.crc32(payload) & 0xFFFFFFFF
        )
        with open(self.path, "ab") as fp:
            fp.write(frame + payload)
            fp.flush()
            os.fsync(fp.fileno())

    # -- writing -----------------------------------------------------------

    def reset(self) -> None:
        """Discard all journal content (e.g. a stale journal file)."""
        self.path.write_bytes(b"")
        self.meta = None
        self.batches = {}

    def write_meta(self, meta: Dict) -> None:
        entry = {**meta, "kind": "census-meta"}
        self._append(entry, None)
        self.meta = entry

    def write_batch(self, payload: Dict, records: Optional[CensusRecords]) -> None:
        """Journal one completed VP scan (``payload['vp']`` names the VP)."""
        self._append(payload, records)
        self.batches[payload["vp"]] = JournalBatch(payload, records)

    # -- querying ----------------------------------------------------------

    def meta_matches(self, expected: Dict) -> bool:
        """Whether the journaled census identity equals ``expected``."""
        if self.meta is None:
            return False
        return all(self.meta.get(key) == value for key, value in expected.items())

    def valid_batch(self, vp_name: str) -> Optional[JournalBatch]:
        """The journaled batch for a VP, if present and integrity-clean."""
        batch = self.batches.get(vp_name)
        if batch is None:
            return None
        expected = batch.payload.get("checksum")
        if batch.records is not None and expected is not None:
            if batch.records.checksum() != int(expected):
                return None  # bit rot inside the journal: rescan this VP
        return batch

    def __len__(self) -> int:
        return len(self.batches)
