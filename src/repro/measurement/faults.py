"""Fault injection and resilience primitives for census campaigns.

The paper's censuses ran from ~308 shared PlanetLab hosts, of which only
261/255/269/240 were usable per census (Sec. 3.3) and a straggler cohort
took many times the nominal scan duration (Fig. 8).  Shared testbed nodes
crash, hang, and corrupt data mid-scan; a census runner has to survive all
of it.  This module provides the two halves of that story:

* a **seeded fault model** (:class:`FaultPlan` / :class:`FaultInjector`)
  that makes a simulated vantage point misbehave in the four canonical
  ways — crash mid-scan, hang past any reasonable deadline, hand back a
  corrupted record batch, or flap (disappear for a whole census);
* the **resilience knobs** the campaign supervisor uses to cope —
  a bounded :class:`RetryPolicy` with exponential backoff and a
  :class:`VpHealthTracker` that quarantines repeatedly-failing nodes.

Every fault decision is drawn from an RNG keyed on
``(plan seed, census id, vantage point, attempt)`` rather than from a
sequential stream, so decisions are independent of evaluation order.
That is what makes checkpoint/resume bit-for-bit deterministic: replaying
a census re-derives exactly the same faults for the vantage points that
still need scanning.

A default-constructed :class:`FaultPlan` injects nothing, and the
campaign skips the fault path entirely in that case — fault-free output
is byte-identical to a campaign without the fault layer.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..geo.coords import GeoPoint
from ..internet.hitlist import HitlistEntry
from .prober import VpScanResult
from .recordio import CensusRecords

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (combine -> campaign)
    from ..census.combine import RttMatrix

#: Domain-separation constant mixed into every fault RNG key so fault
#: draws can never collide with the scan RNG streams.
_FAULT_SALT = 0x5FA17

#: Separate salt for the data poisoner: poison draws are independent of
#: node-fault draws even under the same seed.
_POISON_SALT = 0x901507


class FaultKind(enum.Enum):
    """The four node-fault archetypes of shared measurement testbeds."""

    #: The scanner process dies mid-scan; records are truncated at a
    #: random probe offset but the partial batch survives on disk.
    CRASH = "crash"
    #: The scan completes but takes far longer than the nominal duration
    #: (swapping host, wedged NIC); a supervisor timeout treats it as dead.
    HANG = "hang"
    #: The record batch arrives but its contents were mangled in storage
    #: or transfer (bad RAM, torn writes); detectable by checksum only.
    CORRUPT = "corrupt"
    #: The node is unreachable for the entire census (reboot, network
    #: partition); no retry within the census can help.
    FLAP = "flap"


@dataclass(frozen=True)
class FaultPlan:
    """Per-fault probabilities for one campaign, plus the fault seed.

    All probabilities are per-(vantage point, census): e.g. with
    ``crash_prob=0.1`` roughly one scan attempt in ten crashes mid-way.
    ``crash_prob + hang_prob + corrupt_prob`` must not exceed 1 (they
    partition a single uniform draw per attempt); ``flap_prob`` is drawn
    separately per (vantage point, census) because a flap outlasts any
    retry.  The default plan injects nothing.
    """

    crash_prob: float = 0.0
    hang_prob: float = 0.0
    corrupt_prob: float = 0.0
    flap_prob: float = 0.0
    #: Seed of the fault RNG — independent from every measurement seed.
    seed: int = 0
    #: Duration multiplier applied by a hang (Fig. 8's far tail).
    hang_factor: float = 100.0
    #: Fraction of a corrupted batch's records that get mangled.
    corrupt_fraction: float = 0.05

    def __post_init__(self) -> None:
        for name in ("crash_prob", "hang_prob", "corrupt_prob", "flap_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        if self.crash_prob + self.hang_prob + self.corrupt_prob > 1.0:
            raise ValueError("crash_prob + hang_prob + corrupt_prob must be <= 1")
        if self.seed < 0:
            raise ValueError("fault seed must be non-negative")
        if self.hang_factor < 1.0:
            raise ValueError("hang_factor must be >= 1")
        if not 0.0 < self.corrupt_fraction <= 1.0:
            raise ValueError("corrupt_fraction must be in (0, 1]")

    @property
    def enabled(self) -> bool:
        """Whether this plan can inject any fault at all."""
        return (
            self.crash_prob > 0.0
            or self.hang_prob > 0.0
            or self.corrupt_prob > 0.0
            or self.flap_prob > 0.0
        )

    @classmethod
    def uniform(cls, rate: float, seed: int = 0, flap_prob: float = 0.0) -> "FaultPlan":
        """A plan spreading ``rate`` evenly over crash, hang and corrupt.

        Convenience for "X% of scans fault somehow" experiments — the
        acceptance scenario (crash+hang+corruption at 20% of VPs) is
        ``FaultPlan.uniform(0.2)``.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        share = rate / 3.0
        return cls(
            crash_prob=share,
            hang_prob=share,
            corrupt_prob=share,
            flap_prob=flap_prob,
            seed=seed,
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same plan under a different fault seed."""
        return replace(self, seed=seed)


class FaultInjector:
    """Draws and applies faults according to a :class:`FaultPlan`.

    All randomness is keyed, not streamed: ``fault_for(c, v, a)`` always
    returns the same answer for the same plan, regardless of how many
    other draws happened before it.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    def _rng(self, *keys: int) -> np.random.Generator:
        return np.random.default_rng([_FAULT_SALT, self.plan.seed, *keys])

    # -- decisions -------------------------------------------------------

    def flaps(self, census_id: int, platform_index: int) -> bool:
        """Whether this VP is down for the whole of this census."""
        if self.plan.flap_prob <= 0.0:
            return False
        rng = self._rng(census_id, platform_index, 0xF1A9)
        return bool(rng.random() < self.plan.flap_prob)

    def fault_for(
        self, census_id: int, platform_index: int, attempt: int
    ) -> Optional[FaultKind]:
        """The fault (if any) striking one scan attempt."""
        rng = self._rng(census_id, platform_index, attempt)
        u = float(rng.random())
        edge = self.plan.crash_prob
        if u < edge:
            return FaultKind.CRASH
        edge += self.plan.hang_prob
        if u < edge:
            return FaultKind.HANG
        edge += self.plan.corrupt_prob
        if u < edge:
            return FaultKind.CORRUPT
        return None

    # -- effects -----------------------------------------------------------

    def crash(
        self,
        result: VpScanResult,
        rate_pps: float,
        census_id: int,
        platform_index: int,
        attempt: int,
    ) -> VpScanResult:
        """Truncate a scan at a random probe offset, as a mid-scan crash.

        The surviving records are exactly those whose probes were sent
        before the crash instant; the partial batch is internally
        consistent (its checksum still validates) — that is what makes it
        salvageable.
        """
        rng = self._rng(census_id, platform_index, attempt, 0xC8A5)
        fraction = float(rng.uniform(0.1, 0.9))
        span_ms = result.probes_sent / rate_pps * 1000.0
        cutoff_ms = fraction * span_ms
        records = result.records
        kept = records.select(records.timestamp_ms <= cutoff_ms)
        return VpScanResult(
            records=kept,
            duration_hours=result.duration_hours * fraction,
            drop_rate=result.drop_rate,
            probes_sent=int(round(result.probes_sent * fraction)),
        )

    def corrupt(
        self,
        records: CensusRecords,
        census_id: int,
        platform_index: int,
        attempt: int,
    ) -> CensusRecords:
        """Mangle a copy of a record batch (prefixes and flags).

        Models silent storage/transfer corruption: the batch is the right
        shape and parses fine, only a checksum comparison can tell.  An
        empty batch has nothing to corrupt and is returned unchanged.
        """
        n = len(records)
        if n == 0:
            return records
        rng = self._rng(census_id, platform_index, attempt, 0xC0FF)
        n_bad = max(1, int(round(n * self.plan.corrupt_fraction)))
        bad = rng.choice(n, size=min(n_bad, n), replace=False)
        prefix = records.prefix.copy()
        flag = records.flag.copy()
        prefix[bad] = prefix[bad] ^ np.uint32(0x00A5A5A5)
        flag[bad] = np.int8(103)  # an impossible outcome encoding
        return CensusRecords(
            census_id=records.census_id,
            vp_index=records.vp_index.copy(),
            prefix=prefix,
            timestamp_ms=records.timestamp_ms.copy(),
            rtt_ms=records.rtt_ms.copy(),
            flag=flag,
        )

    def hang_duration(self, result: VpScanResult) -> float:
        """The wall-clock hours a hung scan takes before finishing."""
        return result.duration_hours * self.plan.hang_factor


@dataclass(frozen=True)
class RetryPolicy:
    """Supervision policy for one VP scan: deadline, retries, backoff.

    ``timeout_hours=None`` disables the deadline — a hung scan is then
    simply waited out (it still finishes, very late).  Backoff is
    simulated wall-clock time, accounted in the campaign health report.
    """

    max_attempts: int = 3
    timeout_hours: Optional[float] = None
    backoff_base_hours: float = 0.25
    backoff_factor: float = 2.0
    #: Jitter amplitude as a fraction of the deterministic backoff: the
    #: actual wait is scaled by ``1 + jitter * u`` with ``u`` drawn by
    #: the campaign from an RNG keyed on (seed, census, VP, attempt) —
    #: decorrelated retry storms without sacrificing reproducibility.
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout_hours is not None and self.timeout_hours <= 0:
            raise ValueError("timeout_hours must be positive (or None)")
        if self.backoff_base_hours < 0:
            raise ValueError("backoff_base_hours must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff_hours(self, attempt: int, u: float = 0.0) -> float:
        """Backoff before retry number ``attempt`` (1-based).

        ``u`` in [0, 1) is the caller's keyed jitter draw; with the
        default ``jitter=0`` it has no effect and the schedule is the
        classic deterministic exponential.
        """
        base = self.backoff_base_hours * self.backoff_factor ** (attempt - 1)
        return base * (1.0 + self.jitter * u)

    def times_out(self, duration_hours: float) -> bool:
        return self.timeout_hours is not None and duration_hours > self.timeout_hours


@dataclass
class VpHealth:
    """Per-VP fault bookkeeping across censuses."""

    name: str
    censuses: int = 0
    failures: int = 0
    consecutive_failures: int = 0
    quarantined: bool = False


class VpHealthTracker:
    """Quarantines vantage points that fail census after census.

    A VP "fails" a census when it produced no clean full scan (flap,
    unrecovered crash/hang, or only salvaged partial data).  After
    ``quarantine_threshold`` consecutive failures the VP is excluded from
    subsequent censuses until :meth:`release` is called — the simulated
    equivalent of an operator dropping a bad PlanetLab host from the
    slice.
    """

    def __init__(self, quarantine_threshold: int = 2) -> None:
        if quarantine_threshold < 1:
            raise ValueError("quarantine_threshold must be >= 1")
        self.quarantine_threshold = quarantine_threshold
        self._health: Dict[str, VpHealth] = {}

    def record(self, name: str, ok: bool) -> None:
        """Record one census outcome for a VP."""
        health = self._health.setdefault(name, VpHealth(name))
        health.censuses += 1
        if ok:
            health.consecutive_failures = 0
        else:
            health.failures += 1
            health.consecutive_failures += 1
            if health.consecutive_failures >= self.quarantine_threshold:
                health.quarantined = True

    def release(self, name: str) -> None:
        """Give a quarantined VP another chance."""
        health = self._health.get(name)
        if health is not None:
            health.quarantined = False
            health.consecutive_failures = 0

    def health_of(self, name: str) -> VpHealth:
        return self._health.get(name, VpHealth(name))

    def quarantined_names(self) -> Set[str]:
        return {n for n, h in self._health.items() if h.quarantined}

    def __len__(self) -> int:
        return len(self._health)


# ----------------------------------------------------------------------
# Chaos harness: poisoning data *between* stages
# ----------------------------------------------------------------------


class PoisonKind(enum.Enum):
    """The inter-stage data-corruption archetypes the chaos tests drive.

    Where :class:`FaultKind` models *nodes* misbehaving during the
    measurement phase, these model the *data* rotting on its way between
    pipeline stages: storage mangling RTT fields, geolocation feeds
    shipping impossible vantage-point coordinates, archives losing
    sample fractions, hitlist files with malformed rows.
    """

    #: Reply records whose RTT field became NaN.
    NAN_RTT = "nan_rtt"
    #: Reply records whose RTT collapsed below any physical round trip.
    SUPERLUMINAL_RTT = "superluminal_rtt"
    #: Vantage points whose coordinates left the surface of the Earth.
    CORRUPT_VP_COORDS = "corrupt_vp_coords"
    #: Matrix cells that claim a contributing sample but lost the RTT.
    DROP_SAMPLES = "drop_samples"
    #: Hitlist rows with broken prefixes, drifted addresses, duplicates.
    MALFORMED_HITLIST = "malformed_hitlist"


@dataclass(frozen=True)
class PoisonPlan:
    """Per-mode poisoning fractions for one study, plus the poison seed.

    Each fraction selects what share of the relevant population is
    poisoned: reply *records* for the RTT modes, matrix *VP columns* for
    coordinate corruption, filled matrix *cells* for sample loss, and
    hitlist *rows* for malformation.  The default plan poisons nothing.
    """

    nan_rtt: float = 0.0
    superluminal_rtt: float = 0.0
    corrupt_vp_coords: float = 0.0
    drop_samples: float = 0.0
    malformed_hitlist: float = 0.0
    #: Seed of the poison RNG — independent from fault and scan seeds.
    seed: int = 0

    def __post_init__(self) -> None:
        for kind in PoisonKind:
            value = getattr(self, kind.value)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{kind.value} must be in [0, 1], got {value!r}")
        if self.seed < 0:
            raise ValueError("poison seed must be non-negative")

    @property
    def enabled(self) -> bool:
        return any(getattr(self, kind.value) > 0.0 for kind in PoisonKind)

    @classmethod
    def single(
        cls, kind: "PoisonKind | str", fraction: float, seed: int = 0
    ) -> "PoisonPlan":
        """A plan poisoning exactly one mode — the chaos-matrix building
        block (``PoisonPlan.single(PoisonKind.NAN_RTT, 0.5)``)."""
        key = kind.value if isinstance(kind, PoisonKind) else PoisonKind(kind).value
        return cls(**{key: fraction, "seed": seed})


# ----------------------------------------------------------------------
# Worker-level faults: killing the *executors*, not the vantage points
# ----------------------------------------------------------------------


class WorkerFaultKind(enum.Enum):
    """How a census worker process can misbehave.

    Where :class:`FaultKind` models the measurement *nodes* (a PlanetLab
    host crashing mid-scan), these model the *execution platform* running
    the census — the worker processes of
    :class:`repro.exec.engine.ShardedExecutor`.  The supervisor must
    recover from all three without changing a byte of census output.
    """

    #: The worker process dies outright (OOM kill, segfault) while
    #: holding work units; its shards must be reassigned.
    DEAD_WORKER = "dead_worker"
    #: The worker stops making progress *and* stops heartbeating (stuck
    #: in an uninterruptible state); only liveness tracking can tell.
    WEDGED_WORKER = "wedged_worker"
    #: The worker is alive and heartbeating but much slower than its
    #: peers (noisy neighbour); it must NOT be killed, only waited out.
    SLOW_WORKER = "slow_worker"


@dataclass(frozen=True)
class WorkerFaultPlan:
    """Deterministic worker-fault schedule for one pool run.

    Two addressing modes, combinable:

    * **explicit** — ``dead_worker_ids`` / ``wedged_worker_ids`` /
      ``slow_worker_ids`` name worker ids that misbehave on their first
      task (respawned replacements get fresh ids and recover the pool);
    * **probabilistic** — per-task probabilities drawn from an RNG keyed
      on ``(seed, worker id, task sequence)``, so a given worker's fate
      on its n-th task is reproducible regardless of scheduling.

    Fault decisions only ever change *which process computes a shard*,
    never the shard's bytes — that is the engine's determinism contract.
    """

    dead_prob: float = 0.0
    wedged_prob: float = 0.0
    slow_prob: float = 0.0
    dead_worker_ids: Tuple[int, ...] = ()
    wedged_worker_ids: Tuple[int, ...] = ()
    slow_worker_ids: Tuple[int, ...] = ()
    #: Seed of the worker-fault RNG — independent of every other seed.
    seed: int = 0
    #: How long a wedged worker sits silent (it stops heartbeating, so
    #: the supervisor's liveness timeout is what actually bounds this).
    wedge_seconds: float = 30.0
    #: Extra latency a slow worker adds per task, heartbeating all along.
    slow_seconds: float = 0.5

    def __post_init__(self) -> None:
        for name in ("dead_prob", "wedged_prob", "slow_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        if self.dead_prob + self.wedged_prob + self.slow_prob > 1.0:
            raise ValueError("worker fault probabilities must sum to <= 1")
        if self.seed < 0:
            raise ValueError("worker fault seed must be non-negative")
        if self.wedge_seconds <= 0 or self.slow_seconds < 0:
            raise ValueError("fault durations must be positive")

    @property
    def enabled(self) -> bool:
        return bool(
            self.dead_prob > 0.0
            or self.wedged_prob > 0.0
            or self.slow_prob > 0.0
            or self.dead_worker_ids
            or self.wedged_worker_ids
            or self.slow_worker_ids
        )

    @classmethod
    def uniform(cls, rate: float, seed: int = 0, **kwargs) -> "WorkerFaultPlan":
        """Spread ``rate`` evenly over dead, wedged and slow workers."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        share = rate / 3.0
        return cls(
            dead_prob=share, wedged_prob=share, slow_prob=share, seed=seed, **kwargs
        )


#: Domain separation for worker-fault draws (vs node faults and poison).
_WORKER_SALT = 0x30B57A


class WorkerFaultInjector:
    """Decides each worker task's fate from a :class:`WorkerFaultPlan`.

    Runs *inside* the worker process; the decision for (worker, task n)
    is keyed, so it does not depend on what other workers are doing.
    """

    def __init__(self, plan: WorkerFaultPlan) -> None:
        self.plan = plan

    def fault_for(self, worker_id: int, task_seq: int) -> Optional[WorkerFaultKind]:
        """The fault (if any) striking one worker's n-th task (1-based)."""
        plan = self.plan
        if task_seq == 1:
            if worker_id in plan.dead_worker_ids:
                return WorkerFaultKind.DEAD_WORKER
            if worker_id in plan.wedged_worker_ids:
                return WorkerFaultKind.WEDGED_WORKER
            if worker_id in plan.slow_worker_ids:
                return WorkerFaultKind.SLOW_WORKER
        if plan.dead_prob <= 0.0 and plan.wedged_prob <= 0.0 and plan.slow_prob <= 0.0:
            return None
        rng = np.random.default_rng([_WORKER_SALT, plan.seed, worker_id, task_seq])
        u = float(rng.random())
        edge = plan.dead_prob
        if u < edge:
            return WorkerFaultKind.DEAD_WORKER
        edge += plan.wedged_prob
        if u < edge:
            return WorkerFaultKind.WEDGED_WORKER
        edge += plan.slow_prob
        if u < edge:
            return WorkerFaultKind.SLOW_WORKER
        return None


# ----------------------------------------------------------------------
# Vantage-point distortion: miscalibrated nodes, not crashed ones
# ----------------------------------------------------------------------


class DistortionKind(enum.Enum):
    """How a vantage point's *measurements* can be silently wrong.

    Where :class:`FaultKind` models a node failing loudly (crash, hang,
    corrupt batch), these model a node that keeps answering with data
    that is subtly untrustworthy — the failure modes that can fabricate
    speed-of-light violations and flip a unicast prefix to anycast, or
    hide real violations.  All four are well-documented on shared
    measurement platforms.
    """

    #: A constant offset on every RTT the VP reports (bad clock
    #: discipline / user-space timestamping skew).  Negative offsets
    #: produce physically impossible round trips.
    CLOCK_SKEW = "clock_skew"
    #: Heavy-tailed per-probe inflation (a congested uplink queue): the
    #: VP's RTTs are systematically fatter than propagation allows.
    BUFFERBLOAT = "bufferbloat"
    #: The VP's *reported* coordinates are wrong (stale geolocation
    #: feed); its measurements are physical but its metadata is not.
    GEO_ERROR = "geo_error"
    #: The VP reports one constant RTT for every target (wedged
    #: timestamping path returning a cached value).
    STUCK_RTT = "stuck_rtt"


@dataclass(frozen=True)
class VpDistortionPlan:
    """Keyed per-VP measurement distortion for a whole campaign.

    ``fraction`` of vantage points are distorted; each distorted VP is
    assigned one :class:`DistortionKind` (drawn uniformly from
    ``kinds``) and keeps it for every census — miscalibration is a
    property of the node, not of one scan.  All draws are keyed on
    ``(seed, VP name)``, so the distorted set is independent of census
    order, roster composition, and evaluation order, and identical
    across the epochs of a longitudinal service.

    The default plan distorts nothing, and consumers skip the
    distortion path entirely in that case — clean output is
    byte-identical to a campaign without the distortion layer.
    """

    fraction: float = 0.0
    #: Seed of the distortion RNG — independent of every other seed.
    seed: int = 0
    #: Kinds eligible for assignment (all four by default).
    kinds: Tuple[DistortionKind, ...] = (
        DistortionKind.CLOCK_SKEW,
        DistortionKind.BUFFERBLOAT,
        DistortionKind.GEO_ERROR,
        DistortionKind.STUCK_RTT,
    )
    #: Clock-skew offset magnitude range (ms); the sign is a fair coin.
    #: Sized well above the honest straggler cohort's exponential
    #: inflation (scale ``DEGRADED_SPIKE_MS``): a broken clock discipline
    #: drifts by hundreds of ms, an overloaded host by tens.
    skew_ms: Tuple[float, float] = (200.0, 500.0)
    #: Exponential scale (ms) of per-probe bufferbloat inflation (severe
    #: queueing routinely reaches hundreds of ms to seconds).
    bufferbloat_ms: float = 300.0
    #: Great-circle displacement range (km) of a mis-geolocated VP.
    #: Sized at wrong-continent scale (the classic stale-GeoIP failure):
    #: honest path overhead already pads speed-of-light disks by
    #: ~2000 km of slack, so a sub-continental displacement is largely
    #: absorbed by that padding and neither corrupts the census much nor
    #: leaves a cross-VP signature to detect.
    geo_error_km: Tuple[float, float] = (5000.0, 12000.0)
    #: Constant-RTT range (ms) a stuck VP reports for every target.
    stuck_ms: Tuple[float, float] = (3.0, 40.0)

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {self.fraction!r}")
        if self.seed < 0:
            raise ValueError("distortion seed must be non-negative")
        if not self.kinds:
            raise ValueError("kinds must not be empty")
        # Accept bare strings ("geo_error") anywhere a kind is listed.
        object.__setattr__(
            self, "kinds", tuple(DistortionKind(k) for k in self.kinds)
        )
        for name in ("skew_ms", "geo_error_km", "stuck_ms"):
            lo, hi = getattr(self, name)
            if not 0.0 < lo <= hi:
                raise ValueError(f"{name} must be an increasing positive range")
        if self.bufferbloat_ms <= 0.0:
            raise ValueError("bufferbloat_ms must be positive")

    @property
    def enabled(self) -> bool:
        return self.fraction > 0.0

    @classmethod
    def single(
        cls, kind: "DistortionKind | str", fraction: float, seed: int = 0, **kwargs
    ) -> "VpDistortionPlan":
        """A plan applying exactly one kind — the chaos-matrix building
        block (``VpDistortionPlan.single(DistortionKind.STUCK_RTT, 0.1)``)."""
        member = kind if isinstance(kind, DistortionKind) else DistortionKind(kind)
        return cls(fraction=fraction, seed=seed, kinds=(member,), **kwargs)


#: Domain separation for VP-distortion draws (vs faults/poison/workers).
_DISTORT_SALT = 0xD15708


class VpDistorter:
    """Applies a :class:`VpDistortionPlan` to scan results and rosters.

    Like every injector in this module the randomness is keyed, never
    streamed: a VP's assignment (and its distortion parameters) is a
    pure function of ``(plan seed, VP name)``.
    """

    def __init__(self, plan: VpDistortionPlan) -> None:
        self.plan = plan

    def _rng(self, vp_name: str, *keys: int) -> np.random.Generator:
        return np.random.default_rng(
            [_DISTORT_SALT, self.plan.seed, zlib.crc32(vp_name.encode()), *keys]
        )

    def kind_for(self, vp_name: str) -> Optional[DistortionKind]:
        """The distortion (if any) afflicting one vantage point."""
        if not self.plan.enabled:
            return None
        rng = self._rng(vp_name, 0xA551)
        if float(rng.random()) >= self.plan.fraction:
            return None
        return self.plan.kinds[int(rng.integers(len(self.plan.kinds)))]

    def distorted_names(self, vp_names: Sequence[str]) -> Dict[str, DistortionKind]:
        """The afflicted subset of a roster, with each VP's kind."""
        out: Dict[str, DistortionKind] = {}
        for name in vp_names:
            kind = self.kind_for(name)
            if kind is not None:
                out[name] = kind
        return out

    def distort_result(self, vp_name: str, result: VpScanResult) -> VpScanResult:
        """Distort one VP scan's reply RTTs (geo error leaves them alone).

        Per-probe draws (bufferbloat) are keyed per target prefix, so
        sharded, resumed, and re-run scans distort identically.
        """
        kind = self.kind_for(vp_name)
        if kind is None or kind is DistortionKind.GEO_ERROR:
            return result
        records = result.records
        replies = records.flag == 0
        if not bool(replies.any()):
            return result
        rng = self._rng(vp_name, 0x9A6A)
        rtt = records.rtt_ms.copy()
        if kind is DistortionKind.CLOCK_SKEW:
            lo, hi = self.plan.skew_ms
            offset = float(rng.uniform(lo, hi))
            if bool(rng.random() < 0.5):
                offset = -offset
            rtt[replies] = rtt[replies] + np.float32(offset)
        elif kind is DistortionKind.STUCK_RTT:
            lo, hi = self.plan.stuck_ms
            rtt[replies] = np.float32(rng.uniform(lo, hi))
        else:  # BUFFERBLOAT: keyed heavy-tailed inflation per target
            from .prober import keyed_uniform

            key = (self.plan.seed * 0x9E3779B1 + zlib.crc32(vp_name.encode())) & (
                2**63 - 1
            )
            u = keyed_uniform(key, "bufferbloat", records.prefix[replies])
            rtt[replies] = rtt[replies] - np.float32(self.plan.bufferbloat_ms) * np.log1p(
                -u
            ).astype(np.float32)
        records = CensusRecords(
            census_id=records.census_id,
            vp_index=records.vp_index.copy(),
            prefix=records.prefix.copy(),
            timestamp_ms=records.timestamp_ms.copy(),
            rtt_ms=rtt,
            flag=records.flag.copy(),
        )
        return VpScanResult(
            records=records,
            duration_hours=result.duration_hours,
            drop_rate=result.drop_rate,
            probes_sent=result.probes_sent,
            replies_expected=result.replies_expected,
            replies_dropped=result.replies_dropped,
        )

    def distort_location(self, vp_name: str, location: GeoPoint) -> GeoPoint:
        """A mis-geolocated VP's *reported* coordinates.

        The displacement (keyed distance + bearing) lands the claimed
        position far from where the measurements were really taken —
        the metadata lie the trust engine has to catch.
        """
        if self.kind_for(vp_name) is not DistortionKind.GEO_ERROR:
            return location
        rng = self._rng(vp_name, 0x6E0)
        lo, hi = self.plan.geo_error_km
        distance_km = float(rng.uniform(lo, hi))
        bearing = float(rng.uniform(0.0, 2.0 * np.pi))
        angular = distance_km / 6371.0
        lat1 = np.radians(location.lat)
        lon1 = np.radians(location.lon)
        lat2 = np.arcsin(
            np.sin(lat1) * np.cos(angular)
            + np.cos(lat1) * np.sin(angular) * np.cos(bearing)
        )
        lon2 = lon1 + np.arctan2(
            np.sin(bearing) * np.sin(angular) * np.cos(lat1),
            np.cos(angular) - np.sin(lat1) * np.sin(lat2),
        )
        lon2 = (lon2 + np.pi) % (2.0 * np.pi) - np.pi
        return GeoPoint(lat=float(np.degrees(lat2)), lon=float(np.degrees(lon2)))


def _impossible_point(lat: float, lon: float) -> GeoPoint:
    """A GeoPoint carrying out-of-range coordinates.

    Bypasses ``GeoPoint.__post_init__`` deliberately: this models
    upstream data that *skipped* validation (a geolocation feed is under
    no obligation to run our constructors), which is exactly what the
    sanitizers must catch.
    """
    point = object.__new__(GeoPoint)
    object.__setattr__(point, "lat", float(lat))
    object.__setattr__(point, "lon", float(lon))
    return point


class DataPoisoner:
    """Applies a :class:`PoisonPlan` to inter-stage data structures.

    Like :class:`FaultInjector`, all randomness is keyed rather than
    streamed — poisoning the same structure under the same plan always
    mangles the same elements, so chaos tests are reproducible.
    """

    def __init__(self, plan: PoisonPlan) -> None:
        self.plan = plan

    def _rng(self, *keys: int) -> np.random.Generator:
        return np.random.default_rng([_POISON_SALT, self.plan.seed, *keys])

    def poison_records(self, records: CensusRecords, key: int = 0) -> CensusRecords:
        """Poison RTT fields of a copy of one census's reply records."""
        plan = self.plan
        if (plan.nan_rtt <= 0.0 and plan.superluminal_rtt <= 0.0) or not len(records):
            return records
        rtt = records.rtt_ms.copy()
        reply_rows = np.nonzero(records.flag == 0)[0]
        if len(reply_rows) == 0:
            return records
        if plan.nan_rtt > 0.0:
            rng = self._rng(key, 0x7A7)
            hit = reply_rows[rng.random(len(reply_rows)) < plan.nan_rtt]
            rtt[hit] = np.nan
        if plan.superluminal_rtt > 0.0:
            rng = self._rng(key, 0x5C1)
            hit = reply_rows[rng.random(len(reply_rows)) < plan.superluminal_rtt]
            rtt[hit] = np.float32(1e-6)
        return CensusRecords(
            census_id=records.census_id,
            vp_index=records.vp_index.copy(),
            prefix=records.prefix.copy(),
            timestamp_ms=records.timestamp_ms.copy(),
            rtt_ms=rtt,
            flag=records.flag.copy(),
        )

    def poison_matrix(self, matrix: "RttMatrix") -> "RttMatrix":
        """Poison a combined RTT matrix (coordinates and sample loss)."""
        plan = self.plan
        if plan.corrupt_vp_coords <= 0.0 and plan.drop_samples <= 0.0:
            return matrix
        import dataclasses

        locations = list(matrix.vp_locations)
        rtt = matrix.rtt_ms
        if plan.corrupt_vp_coords > 0.0 and matrix.n_vps:
            rng = self._rng(0xC00)
            hit = np.nonzero(rng.random(matrix.n_vps) < plan.corrupt_vp_coords)[0]
            for j in hit:
                locations[int(j)] = _impossible_point(
                    lat=float(rng.uniform(91.0, 1000.0)),
                    lon=float(rng.uniform(181.0, 1000.0)),
                )
        if plan.drop_samples > 0.0:
            rng = self._rng(0xD09)
            rtt = rtt.copy()
            filled = ~np.isnan(rtt)
            # RTT vanishes, sample_count still claims a contribution:
            # torn data, distinguishable from honest silence.
            lost = filled & (rng.random(rtt.shape) < plan.drop_samples)
            rtt[lost] = np.nan
        return dataclasses.replace(matrix, vp_locations=locations, rtt_ms=rtt)

    def poison_hitlist(self, entries: Sequence[HitlistEntry]) -> List[HitlistEntry]:
        """Return a row list with a fraction of entries malformed.

        Poisoned rows rotate through three malformations: an address
        outside its own /24 (repairable), a duplicated /24 (droppable),
        and an out-of-space prefix index (droppable).
        """
        plan = self.plan
        out = list(entries)
        if plan.malformed_hitlist <= 0.0 or not out:
            return out
        rng = self._rng(0x417)
        hit = np.nonzero(rng.random(len(out)) < plan.malformed_hitlist)[0]
        for i, row in enumerate(hit):
            entry = out[int(row)]
            mode = i % 3
            if mode == 0:
                out[int(row)] = replace(entry, address=(entry.address + 0x4200) & 0xFFFFFFFF)
            elif mode == 1:
                out[int(row)] = replace(entry, prefix=out[0].prefix)
            else:
                out[int(row)] = replace(entry, prefix=-1)
        return out
