"""Census archival: persist censuses to disk and reload them.

The paper's workflow (Fig. 1) separates measurement from analysis: each
vantage point dumps its records, the dataset is "uploaded to a central
repository", and the analysis pipeline consumes it later.  This module
implements the repository layout:

    <dir>/
      meta.json     census id, rate, platform (VPs + locations), durations,
                    drop rates, greylist
      records.bin   the compact binary record format (recordio)

Round-tripping is exact (modulo the documented RTT quantization) so that
measurement and analysis can run as separate processes, or on different
days — which is what enables longitudinal studies over archived censuses.
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

import numpy as np

from ..geo.cities import CityDB, default_city_db
from ..geo.coords import GeoPoint
from ..net.icmp import RateLimitPolicy, NO_RATE_LIMIT
from .campaign import Census
from .greylist import Greylist
from .platform import Platform, VantagePoint
from .recordio import CensusRecords

_META_NAME = "meta.json"
_RECORDS_NAME = "records.bin"


def save_census(census: Census, directory: Union[str, pathlib.Path]) -> pathlib.Path:
    """Persist a census to ``directory`` (created if missing)."""
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    meta = {
        "census_id": census.census_id,
        "rate_pps": census.rate_pps,
        "platform_name": census.platform.name,
        "vantage_points": [
            {
                "name": vp.name,
                "city": [vp.city.name, vp.city.country],
                "lat": vp.location.lat,
                "lon": vp.location.lon,
                "host_load": vp.host_load,
                "rate_limit": (
                    None
                    if vp.rate_limit is NO_RATE_LIMIT
                    else {
                        "safe_rate_pps": vp.rate_limit.safe_rate_pps,
                        "severity": vp.rate_limit.severity,
                    }
                ),
            }
            for vp in census.platform.vantage_points
        ],
        "vp_duration_hours": census.vp_duration_hours.tolist(),
        "vp_drop_rate": census.vp_drop_rate.tolist(),
        "greylist": {
            str(prefix): outcome.icmp_code
            for prefix, outcome in census.greylist._members.items()
        },
    }
    (path / _META_NAME).write_text(json.dumps(meta, indent=1))
    with open(path / _RECORDS_NAME, "wb") as fp:
        census.records.write_binary(fp)
    return path


def load_census(
    directory: Union[str, pathlib.Path],
    city_db: CityDB = None,
) -> Census:
    """Reload a census previously written by :func:`save_census`."""
    path = pathlib.Path(directory)
    meta_path = path / _META_NAME
    if not meta_path.exists():
        raise FileNotFoundError(f"no census archive at {path}")
    meta = json.loads(meta_path.read_text())
    db = city_db or default_city_db()

    vps = []
    for spec in meta["vantage_points"]:
        limit = spec["rate_limit"]
        policy = (
            NO_RATE_LIMIT
            if limit is None
            else RateLimitPolicy(
                safe_rate_pps=limit["safe_rate_pps"], severity=limit["severity"]
            )
        )
        vps.append(
            VantagePoint(
                name=spec["name"],
                city=db.get(*spec["city"]),
                location=GeoPoint(spec["lat"], spec["lon"]),
                host_load=spec["host_load"],
                rate_limit=policy,
            )
        )
    platform = Platform(name=meta["platform_name"], vantage_points=vps)

    with open(path / _RECORDS_NAME, "rb") as fp:
        records = CensusRecords.read_binary(fp)

    greylist = Greylist()
    from ..net.icmp import outcome_from_code

    for prefix, code in meta["greylist"].items():
        greylist.add(int(prefix), outcome_from_code(code))

    return Census(
        census_id=meta["census_id"],
        platform=platform,
        records=records,
        vp_duration_hours=np.array(meta["vp_duration_hours"]),
        vp_drop_rate=np.array(meta["vp_drop_rate"]),
        greylist=greylist,
        rate_pps=meta["rate_pps"],
    )
