"""fastping-like prober simulation.

One vantage point scanning the full hitlist over ICMP, reproducing the
operational behaviour Sec. 3.3/3.5 describes:

* targets probed in LFSR-randomized order at a configurable rate;
* replies policed near the VP when the probing rate exceeds what the VP's
  hosting network tolerates (the paper's motivation for slowing fastping
  down by an order of magnitude);
* per-VP scan duration driven by target count, probing rate and host load
  (PlanetLab nodes are shared machines — Fig. 8's completion-time CDF);
* error hosts answer with their ICMP error most of the time (90%), so the
  pre-census blacklist never quite catches them all and per-census
  greylists keep filling up.

The per-path base RTT is deterministic in (internet seed, VP name): paths
persist across censuses, only per-probe jitter and losses are redrawn.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..internet.topology import (
    RESP_ADMIN_FILTERED,
    RESP_HOST_PROHIBITED,
    RESP_NET_PROHIBITED,
    RESP_REPLY,
    SyntheticInternet,
)
from ..net.icmp import IcmpOutcome
from .platform import VantagePoint
from .recordio import CensusRecords, FLAG_REPLY, flag_for

#: fastping's nominal capacity (probes per second) — "in excess of 10,000
#: hosts per second" before the slow-down.
FULL_RATE_PPS = 10_000.0

#: The production census rate after the one-order-of-magnitude slow-down.
SAFE_RATE_PPS = 1_000.0

#: Probability an error-configured host actually emits its ICMP error for
#: a given probe (the rest of the time it stays silent).
ERROR_EMISSION_PROB = 0.9

#: Baseline probability that a reply is lost in transit (transient loss,
#: ICMP de-prioritization) even from a healthy vantage point.
REPLY_LOSS_PROB = 0.08

#: A *degraded* vantage point (overloaded PlanetLab host) loses this share
#: of its replies for the whole census...
DEGRADED_LOSS_PROB = 0.5

#: ...and inflates the RTTs it does measure by an exponential delay of
#: this scale (ms) — user-space timestamping on a busy machine.
DEGRADED_SPIKE_MS = 50.0

#: Signature embedded in every probe payload (good-citizen practice).
PROBE_SIGNATURE = b"anycast-census see https://example.org/fastping"


def vp_path_seed(internet_seed: int, vp_name: str) -> int:
    """Stable per-(internet, VP) seed for path properties."""
    return (internet_seed * 2654435761 + zlib.crc32(vp_name.encode())) % (2**31)


_U64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer, vectorized over uint64 (wrapping arithmetic)."""
    x = (x + np.uint64(0x9E3779B97F4A7C15)) & _U64
    x = ((x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & _U64
    x = ((x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & _U64
    return x ^ (x >> np.uint64(31))


def keyed_uniform(key: int, salt: str, prefixes: np.ndarray) -> np.ndarray:
    """Per-target uniforms in [0, 1), keyed — not streamed.

    Each target's draw is a pure hash of ``(key, salt, prefix)``: unlike a
    positional ``rng.random(n)`` stream, adding or removing *other*
    targets from the universe cannot shift it.  This is the primitive
    behind the campaign's ``noise="keyed"`` mode, which in turn is what
    lets the longitudinal service prove a target's measurements unchanged
    across epochs and skip its re-analysis.
    """
    base = (
        int(key) * 0x9E3779B97F4A7C15
        + zlib.crc32(salt.encode()) * 0xBF58476D1CE4E5B9
    ) & 0xFFFFFFFFFFFFFFFF
    x = np.asarray(prefixes).astype(np.uint64) ^ np.uint64(base)
    z = _splitmix64(_splitmix64(x))
    return (z >> np.uint64(11)).astype(np.float64) * 2.0**-53


@dataclass
class VpScanResult:
    """Outcome of one VP's full hitlist scan."""

    records: CensusRecords
    duration_hours: float
    #: Fraction of would-be replies lost to VP-side policing.
    drop_rate: float
    probes_sent: int
    #: Reply-capable targets covered and the subset policed away.  The
    #: raw integers behind ``drop_rate`` — kept so per-shard results can
    #: be merged into exactly the ratio a whole-hitlist scan reports.
    replies_expected: int = 0
    replies_dropped: int = 0


def base_rtt_row(
    internet: SyntheticInternet,
    vp: VantagePoint,
    eff_lats: np.ndarray,
    eff_lons: np.ndarray,
    keyed: bool = False,
) -> np.ndarray:
    """Per-target base RTT from a VP, deterministic across censuses.

    ``keyed=True`` draws the per-path stretch and last-mile delay from
    target-keyed uniforms instead of the positional stream: a target's
    base RTT then depends only on its own (prefix, path) — not on how
    many other targets the universe holds — at the cost of different
    bytes than stream mode.
    """
    from ..geo.coords import pairwise_distances_km

    distances = pairwise_distances_km(
        [vp.location.lat], [vp.location.lon], eff_lats, eff_lons
    )[0]
    seed = vp_path_seed(internet.config.seed, vp.name)
    if keyed:
        return internet.config.latency.path_rtt_ms_from_uniforms(
            distances,
            keyed_uniform(seed, "path-stretch", internet.prefixes),
            keyed_uniform(seed, "path-lastmile", internet.prefixes),
        )
    rng = np.random.default_rng(seed)
    return internet.config.latency.path_rtt_ms(distances, rng)


def simulate_vp_scan(
    internet: SyntheticInternet,
    vp: VantagePoint,
    vp_index: int,
    census_id: int,
    base_rtts: np.ndarray,
    order: np.ndarray,
    rate_pps: float,
    rng: np.random.Generator,
    probe_mask: Optional[np.ndarray] = None,
    reply_loss_prob: float = REPLY_LOSS_PROB,
    degraded: bool = False,
    noise_key: Optional[int] = None,
) -> VpScanResult:
    """Simulate one VP scanning every target once.

    Parameters
    ----------
    base_rtts:
        Per-target path baseline RTT (from :func:`base_rtt_row`).
    order:
        Probing order as target positions (LFSR permutation, possibly
        rotated per VP).
    probe_mask:
        Optional boolean mask of targets to probe (blacklist filtering);
        masked-out targets are skipped entirely.
    rng:
        Census-specific randomness (jitter, losses, error emission).
    reply_loss_prob:
        Per-probe transient reply loss for a healthy node.
    degraded:
        An overloaded host for this census: heavy reply loss plus inflated
        user-space RTT timestamps (the paper's Fig. 8 straggler cohort).
    noise_key:
        When set, per-probe noise (policing, loss, error emission, jitter)
        is drawn from :func:`keyed_uniform` under this key instead of the
        positional ``rng`` stream: each target's outcome then depends only
        on (key, prefix), so universe growth leaves unchanged targets'
        records identical — the contract of the campaign's ``"keyed"``
        noise mode.  ``rng`` is unused in that case.
    """
    if not 0.0 <= reply_loss_prob <= 1.0:
        raise ValueError("reply_loss_prob must be in [0, 1]")
    if rate_pps <= 0:
        raise ValueError("rate_pps must be positive")
    n = internet.n_targets
    if len(base_rtts) != n or len(order) != n:
        raise ValueError("array sizes disagree with target count")

    resp = internet.responsiveness
    if probe_mask is None:
        probe_mask = np.ones(n, dtype=bool)

    # Send times follow the probing order at the configured rate.
    send_ms = np.empty(n, dtype=np.float64)
    send_ms[order] = np.arange(n, dtype=np.float64) / rate_pps * 1000.0

    keep_prob = vp.rate_limit.keep_probability(rate_pps)
    loss = DEGRADED_LOSS_PROB if degraded else reply_loss_prob
    if noise_key is not None:
        u = lambda salt: keyed_uniform(noise_key, salt, internet.prefixes)  # noqa: E731
        policed = u("police") < keep_prob
        survives = policed & (u("loss") >= loss)
    else:
        policed = rng.random(n) < keep_prob
        survives = policed & (rng.random(n) >= loss)

    is_reply = (resp == RESP_REPLY) & probe_mask
    reply_kept = is_reply & survives
    # drop_rate accounts for VP-side *policing* only; transient loss is a
    # separate, rate-independent phenomenon.
    dropped = int((is_reply & ~policed).sum())
    drop_rate = dropped / max(int(is_reply.sum()), 1)

    # Error hosts emit their error with high (not certain) probability,
    # and the error packet is subject to the same VP-side policing.
    error_codes = {
        RESP_ADMIN_FILTERED: IcmpOutcome.ADMIN_FILTERED,
        RESP_HOST_PROHIBITED: IcmpOutcome.HOST_PROHIBITED,
        RESP_NET_PROHIBITED: IcmpOutcome.NET_PROHIBITED,
    }
    if noise_key is not None:
        emits = u("emit") < ERROR_EMISSION_PROB
    else:
        emits = rng.random(n) < ERROR_EMISSION_PROB

    columns_vp, columns_prefix, columns_ts, columns_rtt, columns_flag = [], [], [], [], []

    reply_idx = np.nonzero(reply_kept)[0]
    if len(reply_idx):
        if noise_key is not None:
            rtts = internet.config.latency.probe_rtt_ms_from_uniforms(
                base_rtts[reply_idx],
                u("jitter")[reply_idx],
                u("spike-gate")[reply_idx],
                u("spike")[reply_idx],
            )
            if degraded:
                rtts = rtts - DEGRADED_SPIKE_MS * np.log1p(-u("degraded")[reply_idx])
        else:
            rtts = internet.config.latency.probe_rtt_ms(base_rtts[reply_idx], rng)
            if degraded:
                rtts = rtts + rng.exponential(DEGRADED_SPIKE_MS, size=rtts.shape)
        columns_vp.append(np.full(len(reply_idx), vp_index, dtype=np.uint16))
        columns_prefix.append(internet.prefixes[reply_idx].astype(np.uint32))
        columns_ts.append(send_ms[reply_idx])
        columns_rtt.append(rtts.astype(np.float32))
        columns_flag.append(np.full(len(reply_idx), FLAG_REPLY, dtype=np.int8))

    for code, outcome in error_codes.items():
        err_idx = np.nonzero((resp == code) & probe_mask & emits & survives)[0]
        if not len(err_idx):
            continue
        columns_vp.append(np.full(len(err_idx), vp_index, dtype=np.uint16))
        columns_prefix.append(internet.prefixes[err_idx].astype(np.uint32))
        columns_ts.append(send_ms[err_idx])
        columns_rtt.append(np.full(len(err_idx), np.nan, dtype=np.float32))
        columns_flag.append(np.full(len(err_idx), flag_for(outcome), dtype=np.int8))

    if columns_vp:
        records = CensusRecords(
            census_id=census_id,
            vp_index=np.concatenate(columns_vp),
            prefix=np.concatenate(columns_prefix),
            timestamp_ms=np.concatenate(columns_ts),
            rtt_ms=np.concatenate(columns_rtt),
            flag=np.concatenate(columns_flag),
        )
    else:
        # Nothing answered — empty universe or a fully-masked probe_mask.
        records = CensusRecords.empty(census_id)

    probes_sent = int(probe_mask.sum())
    nominal_hours = probes_sent / rate_pps / 3600.0
    duration_hours = nominal_hours * vp.host_load
    return VpScanResult(
        records=records,
        duration_hours=duration_hours,
        drop_rate=drop_rate,
        probes_sent=probes_sent,
        replies_expected=int(is_reply.sum()),
        replies_dropped=dropped,
    )
