"""Census orchestration: platform x internet -> CensusRecords.

A :class:`CensusCampaign` binds a synthetic Internet to a measurement
platform and runs censuses the way the paper does (Sec. 2.1, 3.3):

1. a **pre-census** from a single VP builds the initial blacklist of
   administratively-prohibited targets;
2. each census samples the currently-available platform nodes (the paper's
   four censuses used 261/255/269/240 of ~308 PlanetLab hosts), probes
   every non-blacklisted target from every node, and collects newly seen
   error senders into a per-census greylist;
3. greylists are merged into the blacklist between censuses.

Anycast targets are resolved through each deployment's BGP catchment,
which is precomputed per platform — routing is stable across censuses.

On top of the happy path, the campaign supervises every VP scan the way
an operator of ~300 shared testbed hosts has to (see
:mod:`repro.measurement.faults`):

* a scan that **hangs** past ``RetryPolicy.timeout_hours`` or hands back
  a **corrupt** batch (checksum mismatch) is retried with exponential
  backoff, a bounded number of times;
* a scan that **crashes** mid-way leaves a salvageable partial batch,
  used if no retry produces a full scan;
* VPs failing ``quarantine_threshold`` censuses in a row are
  **quarantined** from subsequent censuses;
* if fewer than ``min_vp_quorum`` VPs contribute usable data the census
  raises :class:`CensusAborted` instead of returning silently-thin data;
* with a ``checkpoint`` journal, completed per-VP batches survive an
  interruption and a resumed census reproduces the uninterrupted run
  bit-for-bit (every per-VP RNG is keyed, not streamed).

Every census carries a :class:`CampaignHealthReport` describing what the
supervisor saw.  With the default (disabled) fault plan the fault path is
skipped entirely and output is byte-identical to the unsupervised
implementation.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

if TYPE_CHECKING:  # imported lazily at run time to avoid a package cycle
    from ..exec.plan import WorkUnit
    from ..exec.supervisor import ExecutionPolicy

from ..internet.topology import SyntheticInternet
from ..obs import current_metrics, current_tracer
from .faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    RetryPolicy,
    VpDistorter,
    VpDistortionPlan,
    VpHealthTracker,
)
from .greylist import Blacklist, Greylist
from .lfsr import lfsr_permutation
from .platform import Platform, VantagePoint
from .prober import SAFE_RATE_PPS, VpScanResult, base_rtt_row, simulate_vp_scan
from .recordio import (
    CensusJournal,
    CensusRecords,
    concatenate,
    outcome_for,
)

#: Domain separator for shard-keyed scan RNG streams (``n_shards > 1``).
#: Sharding slices the probed target set, which shifts how many jitter
#: draws each reply consumes — so a shard cannot share the whole-scan
#: stream and still be schedule-independent.  Instead each shard gets
#: its own stream keyed by (salt, seed, census, VP, shard): the sharded
#: byte stream differs from the unsharded one, but is identical for any
#: worker count, dispatch order, or fault schedule.
_SHARD_SALT = 0x5A4D31

#: Domain separator for retry-backoff jitter draws (see
#: :meth:`~repro.measurement.faults.RetryPolicy.backoff_hours`).
_BACKOFF_SALT = 0xBAC0FF


class CensusAborted(RuntimeError):
    """A census fell below the minimum-VP quorum and was aborted.

    Raised instead of returning silently-wrong data when too few vantage
    points contributed usable records.  Carries the health report so the
    caller can see *why* the quorum was missed.
    """

    def __init__(
        self, census_id: int, usable_vps: int, quorum: int, report: "CampaignHealthReport"
    ) -> None:
        self.census_id = census_id
        self.usable_vps = usable_vps
        self.quorum = quorum
        self.report = report
        super().__init__(
            f"census {census_id} aborted: {usable_vps} usable VP(s) "
            f"below quorum {quorum}"
        )


class CensusInterrupted(RuntimeError):
    """A census was interrupted mid-flight (operator kill, host reboot).

    Completed per-VP batches are safe in the checkpoint journal (if one
    was given); re-running the census with the same journal resumes where
    it stopped.
    """

    def __init__(self, census_id: int, completed_vps: int, checkpoint) -> None:
        self.census_id = census_id
        self.completed_vps = completed_vps
        self.checkpoint = checkpoint
        super().__init__(
            f"census {census_id} interrupted after {completed_vps} VP scan(s)"
        )


@dataclass
class CampaignHealthReport:
    """What the supervisor saw while running one census.

    ``degraded`` means the census completed but with less than the full
    planned platform behind it (failures, salvaged partials, or
    quarantined nodes) — downstream consumers can decide whether a
    degraded census is good enough for their analysis.
    """

    census_id: int
    n_vps_available: int = 0
    n_vps_planned: int = 0
    n_vps_ok: int = 0
    n_vps_salvaged: int = 0
    n_vps_failed: int = 0
    #: VPs whose batches were loaded from the checkpoint journal.
    n_vps_resumed: int = 0
    retries: int = 0
    backoff_hours: float = 0.0
    faults_seen: Dict[str, int] = field(default_factory=dict)
    records_salvaged: int = 0
    records_dropped_corrupt: int = 0
    batches_dropped_corrupt: int = 0
    quarantined_vps: List[str] = field(default_factory=list)
    failed_vps: List[str] = field(default_factory=list)
    salvaged_vps: List[str] = field(default_factory=list)
    #: VPs under measurement distortion this census (name -> kind), from
    #: the campaign's :class:`VpDistortionPlan` — chaos ground truth, for
    #: operators comparing what was injected against what trust caught.
    distorted_vps: Dict[str, str] = field(default_factory=dict)
    #: VPs the trust engine excised from analysis input (downstream fills
    #: this via :meth:`absorb_trust`; empty when trust is off or clean).
    untrusted_vps: List[str] = field(default_factory=list)
    #: Per-VP exclusion reasons — quarantine ("quarantined (N consecutive
    #: failures)") and trust verdict reason codes, keyed by VP name.
    vp_reasons: Dict[str, List[str]] = field(default_factory=dict)
    degraded: bool = False
    #: Pool-supervision dump (``ExecutionReport.to_dict``) when the
    #: census ran on the parallel execution engine; None on the classic
    #: serial path.
    execution: Optional[Dict] = None

    @property
    def n_faults(self) -> int:
        return sum(self.faults_seen.values())

    def summary_lines(self) -> List[str]:
        """A human-readable rendering for CLIs and logs."""
        faults = (
            ", ".join(f"{k}={v}" for k, v in sorted(self.faults_seen.items()))
            or "none"
        )
        lines = [
            f"census {self.census_id}: "
            f"{self.n_vps_ok}/{self.n_vps_planned} VPs clean"
            + (" [DEGRADED]" if self.degraded else ""),
            f"  available/planned:  {self.n_vps_available}/{self.n_vps_planned}"
            f" (quarantined: {len(self.quarantined_vps)})",
            f"  salvaged/failed:    {self.n_vps_salvaged}/{self.n_vps_failed}"
            f" (resumed from checkpoint: {self.n_vps_resumed})",
            f"  faults seen:        {faults}",
            f"  retries/backoff:    {self.retries} / {self.backoff_hours:.2f} h",
            f"  records salvaged:   {self.records_salvaged}",
            f"  records dropped:    {self.records_dropped_corrupt}"
            f" in {self.batches_dropped_corrupt} corrupt batch(es)",
        ]
        if self.execution is not None:
            ex = self.execution
            lines.append(
                f"  pool:               {ex.get('workers', 0)} worker(s), "
                f"{ex.get('n_units', 0)} unit(s), "
                f"{ex.get('reassignments', 0)} reassignment(s), "
                f"{ex.get('workers_lost', 0)} lost, "
                f"{ex.get('workers_wedged', 0)} wedged"
            )
        if self.distorted_vps:
            kinds = ", ".join(
                f"{name}={kind}" for name, kind in sorted(self.distorted_vps.items())
            )
            lines.append(f"  distorted (chaos):  {kinds}")
        if self.untrusted_vps:
            lines.append(f"  untrusted:          {len(self.untrusted_vps)} VP(s)")
        for name in sorted(self.vp_reasons):
            lines.append(f"    {name}: {', '.join(self.vp_reasons[name])}")
        return lines

    def absorb_trust(self, untrusted_names, reasons_by_vp) -> None:
        """Fold a trust report's verdicts into this census's health view.

        Called by downstream consumers (service epochs, the study
        workflow) after scoring the combined matrix — the campaign itself
        cannot judge trust, only a cross-VP view can.
        """
        for name in untrusted_names:
            if name not in self.untrusted_vps:
                self.untrusted_vps.append(name)
        for name, reasons in reasons_by_vp.items():
            merged = self.vp_reasons.setdefault(name, [])
            for reason in reasons:
                if reason not in merged:
                    merged.append(reason)


@dataclass
class _VpOutcome:
    """Internal result of one supervised VP scan."""

    status: str  # "ok" | "salvaged" | "failed"
    records: Optional[CensusRecords]
    checksum: Optional[int]
    duration_hours: float
    drop_rate: float
    retries: int = 0
    backoff_hours: float = 0.0
    faults: List[str] = field(default_factory=list)
    records_salvaged: int = 0
    records_dropped: int = 0
    batches_dropped: int = 0

    @property
    def usable(self) -> bool:
        return self.status in ("ok", "salvaged")

    @property
    def clean(self) -> bool:
        return self.status == "ok"

    def journal_payload(self, vp_name: str) -> Dict:
        return {
            "vp": vp_name,
            "status": self.status,
            "checksum": self.checksum,
            "duration_hours": self.duration_hours,
            "drop_rate": self.drop_rate,
            "retries": self.retries,
            "backoff_hours": self.backoff_hours,
            "faults": self.faults,
            "records_salvaged": self.records_salvaged,
            "records_dropped": self.records_dropped,
            "batches_dropped": self.batches_dropped,
        }

    @classmethod
    def from_journal(cls, payload: Dict, records: Optional[CensusRecords]) -> "_VpOutcome":
        return cls(
            status=payload["status"],
            records=records,
            checksum=payload["checksum"],
            duration_hours=payload["duration_hours"],
            drop_rate=payload["drop_rate"],
            retries=payload["retries"],
            backoff_hours=payload["backoff_hours"],
            faults=list(payload["faults"]),
            records_salvaged=payload["records_salvaged"],
            records_dropped=payload["records_dropped"],
            batches_dropped=payload["batches_dropped"],
        )


@dataclass
class Census:
    """One completed census."""

    census_id: int
    platform: Platform
    records: CensusRecords
    #: Per-VP scan duration in hours (Fig. 8's CDF); NaN for VPs that
    #: failed the census entirely.
    vp_duration_hours: np.ndarray
    #: Per-VP reply drop rate caused by VP-side policing; NaN on failure.
    vp_drop_rate: np.ndarray
    greylist: Greylist
    rate_pps: float
    #: Supervision outcome (faults, retries, salvage, quarantine).
    health: Optional[CampaignHealthReport] = None

    @property
    def n_vps(self) -> int:
        return len(self.platform)

    def reply_ratio(self, probes_per_vp: int) -> float:
        """Fraction of probed targets that produced an echo reply."""
        total_probes = probes_per_vp * self.n_vps
        return int(self.records.reply_mask.sum()) / max(total_probes, 1)


class CensusCampaign:
    """Reusable census runner for one (internet, platform) pair."""

    def __init__(
        self,
        internet: SyntheticInternet,
        platform: Platform,
        rate_pps: float = SAFE_RATE_PPS,
        seed: int = 500,
        degraded_fraction: float = 0.25,
        fault_plan: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        min_vp_quorum: int = 1,
        quarantine_threshold: int = 2,
        executor: Optional["ExecutionPolicy"] = None,
        noise: str = "stream",
        distortion: Optional[VpDistortionPlan] = None,
    ) -> None:
        if not 0.0 <= degraded_fraction <= 1.0:
            raise ValueError("degraded_fraction must be in [0, 1]")
        if min_vp_quorum < 1:
            raise ValueError("min_vp_quorum must be >= 1")
        if noise not in ("stream", "keyed"):
            raise ValueError(f"unknown noise mode {noise!r}")
        self.internet = internet
        self.platform = platform
        self.rate_pps = rate_pps
        self.seed = seed
        #: Share of nodes having a bad census (overloaded PlanetLab host:
        #: heavy reply loss + inflated timestamps).  Redrawn per census —
        #: this is a major reason combining censuses improves recall.
        self.degraded_fraction = degraded_fraction
        self.fault_plan = fault_plan or FaultPlan()
        self.retry = retry or RetryPolicy()
        #: Parallel-execution policy.  None runs the classic serial VP
        #: loop; an :class:`~repro.exec.supervisor.ExecutionPolicy` runs
        #: each census's scans on the supervised sharded engine
        #: (``workers=0`` = in-process reference, byte-identical to any
        #: pool size).
        self.executor = executor
        #: Per-probe noise source.  ``"stream"`` (default) consumes one
        #: positional RNG stream per scan — byte-stable, but any change to
        #: the target universe shifts every draw.  ``"keyed"`` hashes each
        #: draw from (seed, census, VP, prefix): a target's records then
        #: depend only on itself, so censuses over *evolved* universes
        #: keep unchanged targets' records identical — the property the
        #: longitudinal service's incremental recompute is built on.
        self.noise = noise
        self.min_vp_quorum = min_vp_quorum
        #: Cross-census per-VP fault bookkeeping (drives quarantine).
        self.health = VpHealthTracker(quarantine_threshold=quarantine_threshold)
        self._injector = (
            FaultInjector(self.fault_plan) if self.fault_plan.enabled else None
        )
        #: Measurement distortion (miscalibrated nodes).  Applied to each
        #: scan result at the top of the fault policy — parent-side and
        #: pre-journal, so serial, pooled, and resumed censuses all see
        #: the same distorted bytes.
        self.distortion = distortion or VpDistortionPlan()
        self._distorter = (
            VpDistorter(self.distortion) if self.distortion.enabled else None
        )
        self.blacklist = Blacklist()
        self._rng = np.random.default_rng(seed)
        self._census_counter = 0
        self._effective_coords_cache: Dict[str, np.ndarray] = {}
        self._precompute_catchments()

    # ------------------------------------------------------------------
    # Catchment resolution
    # ------------------------------------------------------------------

    def _precompute_catchments(self) -> None:
        """Resolve every deployment's serving site for every platform VP.

        In geo mode (the default) the deployment's own lognormal-penalty
        catchment decides; in BGP mode the internet's routing plane does —
        each VP attaches to its nearest stub AS and the deployment's
        propagated best routes name the serving site.
        """
        lats, lons = self.platform.lats, self.platform.lons
        bgp_plane = getattr(self.internet, "bgp_plane", None)
        self._dep_positions: List[np.ndarray] = []
        self._dep_site_lats: List[np.ndarray] = []
        self._dep_site_lons: List[np.ndarray] = []
        self._dep_catchment: List[np.ndarray] = []
        for dep in self.internet.deployments:
            positions = np.array(
                [self.internet.target_index(p) for p in dep.prefixes], dtype=np.int64
            )
            self._dep_positions.append(positions)
            self._dep_site_lats.append(np.array([r.location.lat for r in dep.replicas]))
            self._dep_site_lons.append(np.array([r.location.lon for r in dep.replicas]))
            if bgp_plane is not None:
                self._dep_catchment.append(bgp_plane.catchment(dep, lats, lons))
            else:
                self._dep_catchment.append(dep.catchment(lats, lons))

    def effective_coords(self, vp_platform_index: int) -> np.ndarray:
        """Per-target (lat, lon) as seen from one platform VP.

        Unicast targets keep their host location; anycast targets take the
        location of the replica whose catchment the VP falls into.
        Cached per VP — catchments are census-invariant.
        """
        vp = self.platform.vantage_points[vp_platform_index]
        cached = self._effective_coords_cache.get(vp.name)
        if cached is not None:
            return cached
        coords = np.stack([self.internet.lats.copy(), self.internet.lons.copy()])
        for dep_idx in range(len(self.internet.deployments)):
            site = int(self._dep_catchment[dep_idx][vp_platform_index])
            positions = self._dep_positions[dep_idx]
            coords[0, positions] = self._dep_site_lats[dep_idx][site]
            coords[1, positions] = self._dep_site_lons[dep_idx][site]
        self._effective_coords_cache[vp.name] = coords
        return coords

    # ------------------------------------------------------------------
    # Census phases
    # ------------------------------------------------------------------

    def run_precensus(self, vp_platform_index: int = 0) -> int:
        """Single-VP pre-census building the initial blacklist.

        Returns the number of /24s blacklisted.
        """
        with current_tracer().span("precensus") as span:
            result = self._scan_vp(vp_platform_index, census_id=0, probe_mask=None)
            greylist = Greylist()
            self._collect_greylist(result.records, greylist)
            blacklisted = greylist.merge_into(self.blacklist)
            span.set("blacklisted", blacklisted)
        current_metrics().counter("prefixes_blacklisted").inc(blacklisted)
        return blacklisted

    def run_census(
        self,
        availability: float = 0.85,
        rate_pps: Optional[float] = None,
        target_prefixes: Optional[Sequence[int]] = None,
        checkpoint: Optional[Union[str, "CensusJournal"]] = None,
        abort_after_vps: Optional[int] = None,
    ) -> Census:
        """Run one full census from the currently-available nodes.

        ``target_prefixes`` restricts the scan to the given /24s — used for
        follow-up campaigns (e.g. refining detected anycast deployments
        from a second platform) where re-probing the whole hitlist would be
        wasteful.

        ``checkpoint`` names a journal file (or passes a
        :class:`~repro.measurement.recordio.CensusJournal`): completed
        per-VP batches are persisted as the census runs, and a matching
        journal lets an interrupted census resume without re-scanning
        finished VPs — bit-for-bit identical to an uninterrupted run.

        ``abort_after_vps`` interrupts the census (raising
        :class:`CensusInterrupted`) after that many *fresh* VP scans —
        the simulator's stand-in for an operator kill or host reboot.
        """
        if not 0.0 < availability <= 1.0:
            raise ValueError("availability must be in (0, 1]")
        if abort_after_vps is not None and abort_after_vps < 0:
            raise ValueError("abort_after_vps must be non-negative")
        self._census_counter += 1
        census_id = self._census_counter
        rate = rate_pps if rate_pps is not None else self.rate_pps
        with current_tracer().span("census", census_id=census_id) as span:
            return self._run_census_supervised(
                census_id, availability, rate, target_prefixes, checkpoint,
                abort_after_vps, span,
            )

    def _run_census_supervised(
        self,
        census_id: int,
        availability: float,
        rate: float,
        target_prefixes: Optional[Sequence[int]],
        checkpoint: Optional[Union[str, "CensusJournal"]],
        abort_after_vps: Optional[int],
        span,
    ) -> Census:
        """The body of :meth:`run_census`, under one ``census`` span."""
        tracer = current_tracer()
        metrics = current_metrics()
        available = self.platform.sample_available(self._rng, availability)
        # Map available VPs back to their platform indices for catchments.
        index_of = {vp.name: i for i, vp in enumerate(self.platform.vantage_points)}

        probe_mask = self._current_probe_mask()
        if target_prefixes is not None:
            restricted = np.zeros(self.internet.n_targets, dtype=bool)
            if len(target_prefixes):
                restricted[self.internet.target_indices(target_prefixes)] = True
            probe_mask &= restricted
        n = self.internet.n_targets
        base_order = np.array(lfsr_permutation(n, seed=census_id), dtype=np.int64)

        degraded_flags = self._rng.random(len(available)) < self.degraded_fraction

        # Quarantine filtering happens *after* all census-level RNG draws,
        # so the random stream (and hence fault-free output) is unchanged.
        quarantined = self.health.quarantined_names()
        pairs: List[Tuple[VantagePoint, bool]] = [
            (vp, bool(flag))
            for vp, flag in zip(available.vantage_points, degraded_flags)
            if vp.name not in quarantined
        ]
        if quarantined:
            planned = Platform(
                name=available.name, vantage_points=[vp for vp, _ in pairs]
            )
        else:
            planned = available

        # Distorted metadata: a mis-geolocated VP *measures* from its true
        # position (catchments and base RTTs use ``self.platform``) but
        # *reports* displaced coordinates — the census platform, and hence
        # every downstream matrix, carries the lie.
        distorted: Dict[str, str] = {}
        if self._distorter is not None:
            afflicted = self._distorter.distorted_names(
                [vp.name for vp in planned.vantage_points]
            )
            distorted = {name: kind.value for name, kind in sorted(afflicted.items())}
            lied = {
                vp.name: self._distorter.distort_location(vp.name, vp.location)
                for vp in planned.vantage_points
                if vp.name in afflicted
            }
            if any(
                lied[vp.name] != vp.location
                for vp in planned.vantage_points
                if vp.name in lied
            ):
                planned = Platform(
                    name=planned.name,
                    vantage_points=[
                        replace(vp, location=lied[vp.name])
                        if vp.name in lied and lied[vp.name] != vp.location
                        else vp
                        for vp in planned.vantage_points
                    ],
                )

        report = CampaignHealthReport(
            census_id=census_id,
            n_vps_available=len(available),
            n_vps_planned=len(planned),
            quarantined_vps=sorted(quarantined),
            distorted_vps=distorted,
            vp_reasons={
                name: [
                    "quarantined "
                    f"({self.health.health_of(name).consecutive_failures}"
                    " consecutive failures)"
                ]
                for name in sorted(quarantined)
            },
        )
        if len(planned) < self.min_vp_quorum:
            raise CensusAborted(census_id, len(planned), self.min_vp_quorum, report)

        journal = self._open_journal(checkpoint, census_id, rate, pairs, probe_mask)

        #: Probes one VP sends this census (for the probe counters only).
        probes_per_vp = int(probe_mask.sum()) if metrics.enabled else 0
        span.set("vps_planned", len(planned))

        batches: List[CensusRecords] = []
        checksums: List[int] = []
        durations: List[float] = []
        drops: List[float] = []
        greylist = Greylist()

        def account(vp_name: str, outcome: _VpOutcome, fresh: bool) -> None:
            """Census-order bookkeeping for one VP's outcome.

            Shared by the serial loop and the parallel assembly pass, so
            health/quarantine state, metrics, and batch order evolve
            identically whichever engine ran the scans.
            """
            self._absorb_outcome(report, outcome, vp_name)
            self.health.record(vp_name, ok=outcome.clean)
            durations.append(outcome.duration_hours)
            drops.append(outcome.drop_rate)
            if fresh:
                metrics.counter("probes_sent").inc(probes_per_vp)
            if metrics.enabled:
                metrics.counter("vps_" + outcome.status).inc()
                if outcome.retries:
                    metrics.counter("scan_retries").inc(outcome.retries)
                    metrics.counter("probes_retried").inc(
                        outcome.retries * probes_per_vp
                    )
                metrics.counter("records_salvaged").inc(outcome.records_salvaged)
                metrics.counter("records_dropped_corrupt").inc(
                    outcome.records_dropped
                )
                metrics.histogram(
                    "vp_scan_duration_hours", buckets=(6, 12, 24, 48, 96, 192)
                ).observe(outcome.duration_hours)
            if outcome.usable and outcome.records is not None:
                batches.append(outcome.records)
                checksums.append(
                    outcome.checksum
                    if outcome.checksum is not None
                    else outcome.records.checksum()
                )
                self._collect_greylist(outcome.records, greylist)

        from ..exec.signals import graceful_shutdown

        with graceful_shutdown() as stop_flag:
            if self.executor is not None:
                self._run_vp_scans_parallel(
                    census_id=census_id,
                    pairs=pairs,
                    index_of=index_of,
                    probe_mask=probe_mask,
                    base_order=base_order,
                    rate=rate,
                    journal=journal,
                    abort_after_vps=abort_after_vps,
                    stop_flag=stop_flag,
                    report=report,
                    account=account,
                    metrics=metrics,
                    checkpoint=checkpoint,
                )
            else:
                fresh_scans = 0
                for census_vp_index, (vp, degraded) in enumerate(pairs):
                    if stop_flag:
                        # Operator drain: the journal already holds every
                        # finished batch, fsynced; stop before starting
                        # more work and leave a resumable checkpoint.
                        raise CensusInterrupted(census_id, fresh_scans, checkpoint)
                    with tracer.span("vp_scan", vp=vp.name) as vp_span:
                        outcome = None
                        fresh = False
                        if journal is not None:
                            entry = journal.valid_batch(vp.name)
                            if entry is not None:
                                outcome = _VpOutcome.from_journal(
                                    entry.payload, entry.records
                                )
                                report.n_vps_resumed += 1
                                metrics.counter("vps_resumed").inc()
                                vp_span.set("resumed", True)
                        if outcome is None:
                            if (
                                abort_after_vps is not None
                                and fresh_scans >= abort_after_vps
                            ):
                                raise CensusInterrupted(
                                    census_id, fresh_scans, checkpoint
                                )
                            outcome = self._supervised_scan(
                                platform_index=index_of[vp.name],
                                census_id=census_id,
                                probe_mask=probe_mask,
                                census_vp_index=census_vp_index,
                                base_order=base_order,
                                rate_pps=rate,
                                degraded=degraded,
                            )
                            fresh_scans += 1
                            fresh = True
                            if journal is not None:
                                journal.write_batch(
                                    outcome.journal_payload(vp.name), outcome.records
                                )
                        vp_span.set("status", outcome.status)
                        account(vp.name, outcome, fresh)

        if len(batches) < self.min_vp_quorum:
            raise CensusAborted(census_id, len(batches), self.min_vp_quorum, report)
        report.degraded = (
            report.n_vps_failed > 0
            or report.n_vps_salvaged > 0
            or bool(report.quarantined_vps)
        )

        greylist.merge_into(self.blacklist)
        if metrics.enabled:
            metrics.counter("censuses_completed").inc()
            metrics.counter("prefixes_greylisted").inc(len(greylist))
            metrics.gauge("vps_quarantined").set(len(report.quarantined_vps))
            metrics.gauge("blacklist_size").set(len(self.blacklist))
        return Census(
            census_id=census_id,
            platform=planned,
            records=concatenate(tuple(batches), checksums=tuple(checksums)),
            vp_duration_hours=np.array(durations),
            vp_drop_rate=np.array(drops),
            greylist=greylist,
            rate_pps=rate,
            health=report,
        )

    def _run_vp_scans_parallel(
        self,
        census_id: int,
        pairs: List[Tuple[VantagePoint, bool]],
        index_of: Dict[str, int],
        probe_mask: np.ndarray,
        base_order: np.ndarray,
        rate: float,
        journal: Optional[CensusJournal],
        abort_after_vps: Optional[int],
        stop_flag,
        report: CampaignHealthReport,
        account,
        metrics,
        checkpoint,
    ) -> None:
        """Run this census's VP scans on the supervised sharded engine.

        Journal resume, flap decisions, the VP-level fault policy, and
        all census bookkeeping stay in the parent; workers execute only
        the pure keyed scan kernel (:meth:`run_work_unit`).  Results are
        journaled as they arrive (the journal is keyed by VP name, so
        arrival order is irrelevant) and *accounted* strictly in census
        order, which is what keeps output byte-identical to the serial
        loop.
        """
        from ..exec.engine import ShardedExecutor
        from ..exec.plan import build_plan
        from ..exec.pool import UnitContext

        policy = self.executor
        resumed: Dict[str, _VpOutcome] = {}
        flapped: Dict[str, _VpOutcome] = {}
        fresh_vps: List[Tuple[str, int, int, bool]] = []
        for census_vp_index, (vp, degraded) in enumerate(pairs):
            if journal is not None:
                entry = journal.valid_batch(vp.name)
                if entry is not None:
                    resumed[vp.name] = _VpOutcome.from_journal(
                        entry.payload, entry.records
                    )
                    report.n_vps_resumed += 1
                    metrics.counter("vps_resumed").inc()
                    continue
            # Flap is a VP-level availability fault: decided here, never
            # shipped to a worker (there is nothing to compute).
            flap = self._flap_outcome(census_id, index_of[vp.name])
            if flap is not None:
                flapped[vp.name] = flap
                if journal is not None:
                    journal.write_batch(flap.journal_payload(vp.name), flap.records)
                continue
            fresh_vps.append(
                (vp.name, index_of[vp.name], census_vp_index, bool(degraded))
            )

        plan = build_plan(fresh_vps, n_shards=policy.n_target_shards)
        budget = (
            None
            if abort_after_vps is None
            else max(abort_after_vps - len(flapped), 0)
        )
        if budget is not None and budget == 0 and len(plan):
            raise CensusInterrupted(census_id, len(flapped), checkpoint)

        engine_outcomes: Dict[str, _VpOutcome] = {}

        def on_vp_complete(vp_name: str, result: VpScanResult) -> bool:
            outcome = self._apply_fault_policy(
                index_of[vp_name], census_id, result, rate
            )
            engine_outcomes[vp_name] = outcome
            if journal is not None:
                journal.write_batch(outcome.journal_payload(vp_name), outcome.records)
            return budget is None or len(engine_outcomes) < budget

        context = UnitContext(
            campaign=self,
            census_id=census_id,
            probe_mask=probe_mask,
            base_order=base_order,
            rate_pps=rate,
            units=plan.units,
            worker_faults=policy.worker_faults,
        )
        exec_outcome = ShardedExecutor(policy).run(
            context,
            plan,
            on_vp_complete=on_vp_complete,
            should_stop=lambda: bool(stop_flag),
        )
        report.execution = exec_outcome.report.to_dict()
        interrupted = exec_outcome.report.interrupted

        for vp, degraded in pairs:
            name = vp.name
            if name in resumed:
                account(name, resumed[name], False)
            elif name in flapped:
                account(name, flapped[name], True)
            elif name in engine_outcomes:
                account(name, engine_outcomes[name], True)
            elif name in exec_outcome.failed and not interrupted:
                # Engine-level failure (breaker trip or deadline): marked
                # failed — feeding quarantine and the quorum check — but
                # deliberately NOT journaled, so a resumed census rescans
                # rather than trusting a gave-up marker.
                tag = exec_outcome.failed[name]
                account(
                    name,
                    _VpOutcome(
                        status="failed",
                        records=None,
                        checksum=None,
                        duration_hours=float("nan"),
                        drop_rate=float("nan"),
                        faults=[tag],
                    ),
                    True,
                )
        if interrupted:
            raise CensusInterrupted(
                census_id, len(flapped) + len(engine_outcomes), checkpoint
            )

    def run(
        self,
        n_censuses: int = 4,
        availability: float = 0.85,
        checkpoint_dir: Optional[str] = None,
    ) -> List[Census]:
        """Pre-census plus ``n_censuses`` full censuses.

        With ``checkpoint_dir``, each census journals its per-VP batches
        to ``census-<id>.journal`` inside the directory; re-running the
        same campaign after an interruption replays finished censuses
        from their journals and resumes the interrupted one.
        """
        import pathlib

        self.run_precensus()
        censuses = []
        for i in range(n_censuses):
            checkpoint = None
            if checkpoint_dir:  # an empty string is "no checkpointing", not cwd
                directory = pathlib.Path(checkpoint_dir)
                directory.mkdir(parents=True, exist_ok=True)
                checkpoint = str(directory / f"census-{self._census_counter + 1:03d}.journal")
            censuses.append(
                self.run_census(availability=availability, checkpoint=checkpoint)
            )
        return censuses

    # ------------------------------------------------------------------
    # Supervision internals
    # ------------------------------------------------------------------

    def _open_journal(
        self,
        checkpoint: Optional[Union[str, "CensusJournal"]],
        census_id: int,
        rate: float,
        pairs: List[Tuple[VantagePoint, bool]],
        probe_mask: np.ndarray,
    ) -> Optional[CensusJournal]:
        if checkpoint is None:
            return None
        journal = (
            checkpoint
            if isinstance(checkpoint, CensusJournal)
            else CensusJournal(checkpoint)
        )
        meta = {
            "census_id": census_id,
            "campaign_seed": self.seed,
            "rate_pps": rate,
            "vp_names": [vp.name for vp, _ in pairs],
            "degraded": [flag for _, flag in pairs],
            "probe_mask_crc": zlib.crc32(np.packbits(probe_mask).tobytes()) & 0xFFFFFFFF,
        }
        if journal.meta is None:
            if len(journal):
                # Batches without a meta entry: a stale or foreign file.
                journal.reset()
            journal.write_meta(meta)
        elif not journal.meta_matches(meta):
            raise ValueError(
                "checkpoint journal does not match this census "
                f"(journal census {journal.meta.get('census_id')!r}, "
                f"running census {census_id}); use a fresh journal path"
            )
        return journal

    def _supervised_scan(
        self,
        platform_index: int,
        census_id: int,
        probe_mask: Optional[np.ndarray],
        census_vp_index: int,
        base_order: np.ndarray,
        rate_pps: float,
        degraded: bool,
    ) -> _VpOutcome:
        """One VP scan under the fault injector and retry policy."""
        flap = self._flap_outcome(census_id, platform_index)
        if flap is not None:
            return flap
        # The underlying scan is deterministic in (seed, census, VP), so
        # one simulation serves every attempt; faults decide what the
        # supervisor observed each time.
        result = self._scan_vp(
            platform_index,
            census_id=census_id,
            probe_mask=probe_mask,
            census_vp_index=census_vp_index,
            base_order=base_order,
            rate_pps=rate_pps,
            degraded=degraded,
        )
        return self._apply_fault_policy(platform_index, census_id, result, rate_pps)

    def _flap_outcome(
        self, census_id: int, platform_index: int
    ) -> Optional[_VpOutcome]:
        """The VP's flap verdict for this census, if it flapped."""
        if self._injector is not None and self._injector.flaps(
            census_id, platform_index
        ):
            return _VpOutcome(
                status="failed",
                records=None,
                checksum=None,
                duration_hours=float("nan"),
                drop_rate=float("nan"),
                faults=[FaultKind.FLAP.value],
            )
        return None

    def _backoff_u(self, census_id: int, platform_index: int, attempt: int) -> float:
        """Keyed jitter draw for one retry's backoff (0 when disabled).

        Keyed by (seed, census, VP, attempt) rather than drawn from a
        shared stream: every retry schedule is reproducible no matter
        which VPs retried before it, serially or on a pool.
        """
        if self.retry.jitter <= 0.0:
            return 0.0
        rng = np.random.default_rng(
            [_BACKOFF_SALT, self.seed, census_id, platform_index, attempt]
        )
        return float(rng.random())

    def _apply_fault_policy(
        self,
        platform_index: int,
        census_id: int,
        result: VpScanResult,
        rate_pps: float,
    ) -> _VpOutcome:
        """Replay the fault/retry policy over one finished scan result.

        Shared verbatim by the serial path and the parallel engine (which
        calls it in the parent on each merged per-VP result): what the
        supervisor "observed" depends only on the keyed injector, never
        on which process computed the scan.

        Measurement distortion applies first — before checksums, before
        any fault verdict — so every consumer (journal, salvage, corrupt
        check) sees the distorted record batch, exactly as a real
        miscalibrated node would have handed it over.
        """
        if self._distorter is not None:
            result = self._distorter.distort_result(
                self.platform.vantage_points[platform_index].name, result
            )
        injector = self._injector
        if injector is None:
            return _VpOutcome(
                status="ok",
                records=result.records,
                checksum=result.records.checksum(),
                duration_hours=result.duration_hours,
                drop_rate=result.drop_rate,
            )

        faults: List[str] = []
        retries = 0
        backoff = 0.0
        salvage: Optional[VpScanResult] = None
        dropped_records = 0
        dropped_batches = 0

        for attempt in range(self.retry.max_attempts):
            if attempt:
                retries += 1
                backoff += self.retry.backoff_hours(
                    attempt, self._backoff_u(census_id, platform_index, attempt)
                )
            kind = injector.fault_for(census_id, platform_index, attempt)
            if kind is None:
                return _VpOutcome(
                    status="ok",
                    records=result.records,
                    checksum=result.records.checksum(),
                    duration_hours=result.duration_hours,
                    drop_rate=result.drop_rate,
                    retries=retries,
                    backoff_hours=backoff,
                    faults=faults,
                    records_dropped=dropped_records,
                    batches_dropped=dropped_batches,
                )
            faults.append(kind.value)
            if kind is FaultKind.HANG:
                hung_hours = injector.hang_duration(result)
                if not self.retry.times_out(hung_hours):
                    # No deadline (or a generous one): the scan eventually
                    # returns, just very late — Fig. 8's far straggler.
                    return _VpOutcome(
                        status="ok",
                        records=result.records,
                        checksum=result.records.checksum(),
                        duration_hours=hung_hours,
                        drop_rate=result.drop_rate,
                        retries=retries,
                        backoff_hours=backoff,
                        faults=faults,
                        records_dropped=dropped_records,
                        batches_dropped=dropped_batches,
                    )
                continue  # timed out -> retry
            if kind is FaultKind.CORRUPT:
                expected = result.records.checksum()
                corrupted = injector.corrupt(
                    result.records, census_id, platform_index, attempt
                )
                if corrupted.checksum() == expected:
                    # Empty batch: nothing was mangled, accept it.
                    return _VpOutcome(
                        status="ok",
                        records=result.records,
                        checksum=expected,
                        duration_hours=result.duration_hours,
                        drop_rate=result.drop_rate,
                        retries=retries,
                        backoff_hours=backoff,
                        faults=faults,
                    )
                dropped_batches += 1
                dropped_records += len(corrupted)
                continue  # checksum mismatch: drop the batch, retry
            if kind is FaultKind.CRASH:
                salvage = injector.crash(
                    result, rate_pps, census_id, platform_index, attempt
                )
                continue  # try for a full scan; keep the partial batch

        if salvage is not None:
            return _VpOutcome(
                status="salvaged",
                records=salvage.records,
                checksum=salvage.records.checksum(),
                duration_hours=salvage.duration_hours,
                drop_rate=salvage.drop_rate,
                retries=retries,
                backoff_hours=backoff,
                faults=faults,
                records_salvaged=len(salvage.records),
                records_dropped=dropped_records,
                batches_dropped=dropped_batches,
            )
        return _VpOutcome(
            status="failed",
            records=None,
            checksum=None,
            duration_hours=float("nan"),
            drop_rate=float("nan"),
            retries=retries,
            backoff_hours=backoff,
            faults=faults,
            records_dropped=dropped_records,
            batches_dropped=dropped_batches,
        )

    @staticmethod
    def _absorb_outcome(
        report: CampaignHealthReport, outcome: _VpOutcome, vp_name: str
    ) -> None:
        if outcome.status == "ok":
            report.n_vps_ok += 1
        elif outcome.status == "salvaged":
            report.n_vps_salvaged += 1
            report.salvaged_vps.append(vp_name)
        else:
            report.n_vps_failed += 1
            report.failed_vps.append(vp_name)
        report.retries += outcome.retries
        report.backoff_hours += outcome.backoff_hours
        for fault in outcome.faults:
            report.faults_seen[fault] = report.faults_seen.get(fault, 0) + 1
        report.records_salvaged += outcome.records_salvaged
        report.records_dropped_corrupt += outcome.records_dropped
        report.batches_dropped_corrupt += outcome.batches_dropped

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _collect_greylist(self, records: CensusRecords, greylist: Greylist) -> None:
        """Fold a batch's administratively-prohibited errors into a greylist.

        Shared by the pre-census and every census: prefixes already on the
        blacklist are skipped (they would be deduplicated at merge time
        anyway, but skipping keeps per-census greylists meaningful).
        """
        errors = records.greylistable()
        if len(errors.prefix) == 0:
            return
        # Greylist.add is setdefault — only the first record per prefix
        # matters, so dedup to first occurrences before the Python loop
        # (the slow path shrinks from one call per error record to one
        # per distinct erroring prefix).
        _, first = np.unique(errors.prefix, return_index=True)
        for i in first:
            p = int(errors.prefix[i])
            if p not in self.blacklist:
                greylist.observe(p, outcome_for(int(errors.flag[i])))

    def _current_probe_mask(self) -> np.ndarray:
        mask = np.ones(self.internet.n_targets, dtype=bool)
        blocked = self.blacklist.prefixes
        if blocked:
            mask[self.internet.target_indices(sorted(blocked))] = False
        return mask

    def run_work_unit(
        self,
        census_id: int,
        probe_mask: Optional[np.ndarray],
        base_order: np.ndarray,
        rate_pps: float,
        unit: "WorkUnit",
    ) -> VpScanResult:
        """Execute one (VP × target-shard) work unit of a census.

        The pure compute kernel of the parallel engine: its output is a
        function of (campaign seed, census, VP, shard) alone, so any
        worker — or the parent, in-process — produces the same bytes.
        """
        return self._scan_vp(
            unit.platform_index,
            census_id=census_id,
            probe_mask=probe_mask,
            census_vp_index=unit.census_vp_index,
            base_order=base_order,
            rate_pps=rate_pps,
            degraded=unit.degraded,
            shard_index=unit.shard_index,
            n_shards=unit.n_shards,
        )

    def _scan_vp(
        self,
        platform_index: int,
        census_id: int,
        probe_mask: Optional[np.ndarray],
        census_vp_index: int = 0,
        base_order: Optional[np.ndarray] = None,
        rate_pps: Optional[float] = None,
        degraded: bool = False,
        shard_index: int = 0,
        n_shards: int = 1,
    ) -> VpScanResult:
        vp = self.platform.vantage_points[platform_index]
        coords = self.effective_coords(platform_index)
        keyed = self.noise == "keyed"
        base = base_rtt_row(self.internet, vp, coords[0], coords[1], keyed=keyed)
        n = self.internet.n_targets
        if base_order is None:
            base_order = np.array(lfsr_permutation(n, seed=census_id + 1), dtype=np.int64)
        # Per-VP rotation of the shared LFSR order: desynchronizes VPs
        # without recomputing a full permutation per node.
        shift = (platform_index * 7919 + census_id * 104729) % n
        order = np.roll(base_order, shift)
        if n_shards > 1:
            # Target sharding changes which replies draw policing jitter,
            # so a shard cannot reuse the whole-scan RNG stream: each
            # shard gets its own keyed stream (see _SHARD_SALT).
            from ..exec.plan import shard_target_mask

            smask = shard_target_mask(n, shard_index, n_shards)
            probe_mask = smask if probe_mask is None else (probe_mask & smask)
            rng = np.random.default_rng(
                [_SHARD_SALT, self.seed, census_id, platform_index, shard_index]
            )
        else:
            rng = np.random.default_rng(
                self.seed * 1_000_003 + census_id * 1009 + platform_index
            )
        # Keyed noise is per-target, so the key deliberately ignores the
        # shard index: sharded and unsharded keyed scans emit the same
        # per-target values (shards merely partition the rows).
        noise_key = None
        if keyed:
            noise_key = (
                self.seed * 1_000_003
                + census_id * 1009
                + zlib.crc32(vp.name.encode())
            ) & 0xFFFFFFFFFFFFFFFF
        return simulate_vp_scan(
            internet=self.internet,
            vp=vp,
            vp_index=census_vp_index,
            census_id=census_id,
            base_rtts=base,
            order=order,
            rate_pps=rate_pps if rate_pps is not None else self.rate_pps,
            rng=rng,
            probe_mask=probe_mask,
            degraded=degraded,
            noise_key=noise_key,
        )
