"""Census orchestration: platform x internet -> CensusRecords.

A :class:`CensusCampaign` binds a synthetic Internet to a measurement
platform and runs censuses the way the paper does (Sec. 2.1, 3.3):

1. a **pre-census** from a single VP builds the initial blacklist of
   administratively-prohibited targets;
2. each census samples the currently-available platform nodes (the paper's
   four censuses used 261/255/269/240 of ~308 PlanetLab hosts), probes
   every non-blacklisted target from every node, and collects newly seen
   error senders into a per-census greylist;
3. greylists are merged into the blacklist between censuses.

Anycast targets are resolved through each deployment's BGP catchment,
which is precomputed per platform — routing is stable across censuses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..internet.topology import SyntheticInternet
from .greylist import Blacklist, Greylist
from .lfsr import lfsr_permutation
from .platform import Platform
from .prober import SAFE_RATE_PPS, VpScanResult, base_rtt_row, simulate_vp_scan
from .recordio import CensusRecords, concatenate


@dataclass
class Census:
    """One completed census."""

    census_id: int
    platform: Platform
    records: CensusRecords
    #: Per-VP scan duration in hours (Fig. 8's CDF).
    vp_duration_hours: np.ndarray
    #: Per-VP reply drop rate caused by VP-side policing.
    vp_drop_rate: np.ndarray
    greylist: Greylist
    rate_pps: float

    @property
    def n_vps(self) -> int:
        return len(self.platform)

    def reply_ratio(self, probes_per_vp: int) -> float:
        """Fraction of probed targets that produced an echo reply."""
        total_probes = probes_per_vp * self.n_vps
        return int(self.records.reply_mask.sum()) / max(total_probes, 1)


class CensusCampaign:
    """Reusable census runner for one (internet, platform) pair."""

    def __init__(
        self,
        internet: SyntheticInternet,
        platform: Platform,
        rate_pps: float = SAFE_RATE_PPS,
        seed: int = 500,
        degraded_fraction: float = 0.25,
    ) -> None:
        if not 0.0 <= degraded_fraction <= 1.0:
            raise ValueError("degraded_fraction must be in [0, 1]")
        self.internet = internet
        self.platform = platform
        self.rate_pps = rate_pps
        self.seed = seed
        #: Share of nodes having a bad census (overloaded PlanetLab host:
        #: heavy reply loss + inflated timestamps).  Redrawn per census —
        #: this is a major reason combining censuses improves recall.
        self.degraded_fraction = degraded_fraction
        self.blacklist = Blacklist()
        self._rng = np.random.default_rng(seed)
        self._census_counter = 0
        self._effective_coords_cache: Dict[str, np.ndarray] = {}
        self._precompute_catchments()

    # ------------------------------------------------------------------
    # Catchment resolution
    # ------------------------------------------------------------------

    def _precompute_catchments(self) -> None:
        """Resolve every deployment's serving site for every platform VP."""
        lats, lons = self.platform.lats, self.platform.lons
        self._dep_positions: List[np.ndarray] = []
        self._dep_site_lats: List[np.ndarray] = []
        self._dep_site_lons: List[np.ndarray] = []
        self._dep_catchment: List[np.ndarray] = []
        for dep in self.internet.deployments:
            positions = np.array(
                [self.internet.target_index(p) for p in dep.prefixes], dtype=np.int64
            )
            self._dep_positions.append(positions)
            self._dep_site_lats.append(np.array([r.location.lat for r in dep.replicas]))
            self._dep_site_lons.append(np.array([r.location.lon for r in dep.replicas]))
            self._dep_catchment.append(dep.catchment(lats, lons))

    def effective_coords(self, vp_platform_index: int) -> np.ndarray:
        """Per-target (lat, lon) as seen from one platform VP.

        Unicast targets keep their host location; anycast targets take the
        location of the replica whose catchment the VP falls into.
        Cached per VP — catchments are census-invariant.
        """
        vp = self.platform.vantage_points[vp_platform_index]
        cached = self._effective_coords_cache.get(vp.name)
        if cached is not None:
            return cached
        coords = np.stack([self.internet.lats.copy(), self.internet.lons.copy()])
        for dep_idx in range(len(self.internet.deployments)):
            site = int(self._dep_catchment[dep_idx][vp_platform_index])
            positions = self._dep_positions[dep_idx]
            coords[0, positions] = self._dep_site_lats[dep_idx][site]
            coords[1, positions] = self._dep_site_lons[dep_idx][site]
        self._effective_coords_cache[vp.name] = coords
        return coords

    # ------------------------------------------------------------------
    # Census phases
    # ------------------------------------------------------------------

    def run_precensus(self, vp_platform_index: int = 0) -> int:
        """Single-VP pre-census building the initial blacklist.

        Returns the number of /24s blacklisted.
        """
        result = self._scan_vp(vp_platform_index, census_id=0, probe_mask=None)
        greylist = Greylist()
        errors = result.records.greylistable()
        from .recordio import outcome_for

        for prefix, flag in zip(errors.prefix, errors.flag):
            greylist.add(int(prefix), outcome_for(int(flag)))
        return greylist.merge_into(self.blacklist)

    def run_census(
        self,
        availability: float = 0.85,
        rate_pps: Optional[float] = None,
        target_prefixes: Optional[Sequence[int]] = None,
    ) -> Census:
        """Run one full census from the currently-available nodes.

        ``target_prefixes`` restricts the scan to the given /24s — used for
        follow-up campaigns (e.g. refining detected anycast deployments
        from a second platform) where re-probing the whole hitlist would be
        wasteful.
        """
        self._census_counter += 1
        census_id = self._census_counter
        rate = rate_pps if rate_pps is not None else self.rate_pps

        available = self.platform.sample_available(self._rng, availability)
        # Map available VPs back to their platform indices for catchments.
        index_of = {vp.name: i for i, vp in enumerate(self.platform.vantage_points)}

        probe_mask = self._current_probe_mask()
        if target_prefixes is not None:
            restricted = np.zeros(self.internet.n_targets, dtype=bool)
            for prefix in target_prefixes:
                restricted[self.internet.target_index(prefix)] = True
            probe_mask &= restricted
        n = self.internet.n_targets
        base_order = np.array(lfsr_permutation(n, seed=census_id), dtype=np.int64)

        batches, durations, drops = [], [], []
        greylist = Greylist()
        from .recordio import outcome_for

        degraded_flags = self._rng.random(len(available)) < self.degraded_fraction
        for census_vp_index, vp in enumerate(available.vantage_points):
            platform_index = index_of[vp.name]
            result = self._scan_vp(
                platform_index,
                census_id=census_id,
                probe_mask=probe_mask,
                census_vp_index=census_vp_index,
                base_order=base_order,
                rate_pps=rate,
                degraded=bool(degraded_flags[census_vp_index]),
            )
            batches.append(result.records)
            durations.append(result.duration_hours)
            drops.append(result.drop_rate)
            errors = result.records.greylistable()
            for prefix, flag in zip(errors.prefix, errors.flag):
                p = int(prefix)
                if p not in self.blacklist:
                    greylist.observe(p, outcome_for(int(flag)))

        greylist.merge_into(self.blacklist)
        return Census(
            census_id=census_id,
            platform=available,
            records=concatenate(tuple(batches)),
            vp_duration_hours=np.array(durations),
            vp_drop_rate=np.array(drops),
            greylist=greylist,
            rate_pps=rate,
        )

    def run(self, n_censuses: int = 4, availability: float = 0.85) -> List[Census]:
        """Pre-census plus ``n_censuses`` full censuses."""
        self.run_precensus()
        return [self.run_census(availability=availability) for _ in range(n_censuses)]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _current_probe_mask(self) -> np.ndarray:
        mask = np.ones(self.internet.n_targets, dtype=bool)
        for prefix in self.blacklist.prefixes:
            mask[self.internet.target_index(prefix)] = False
        return mask

    def _scan_vp(
        self,
        platform_index: int,
        census_id: int,
        probe_mask: Optional[np.ndarray],
        census_vp_index: int = 0,
        base_order: Optional[np.ndarray] = None,
        rate_pps: Optional[float] = None,
        degraded: bool = False,
    ) -> VpScanResult:
        vp = self.platform.vantage_points[platform_index]
        coords = self.effective_coords(platform_index)
        base = base_rtt_row(self.internet, vp, coords[0], coords[1])
        n = self.internet.n_targets
        if base_order is None:
            base_order = np.array(lfsr_permutation(n, seed=census_id + 1), dtype=np.int64)
        # Per-VP rotation of the shared LFSR order: desynchronizes VPs
        # without recomputing a full permutation per node.
        shift = (platform_index * 7919 + census_id * 104729) % n
        order = np.roll(base_order, shift)
        rng = np.random.default_rng(self.seed * 1_000_003 + census_id * 1009 + platform_index)
        return simulate_vp_scan(
            internet=self.internet,
            vp=vp,
            vp_index=census_vp_index,
            census_id=census_id,
            base_rtts=base,
            order=order,
            rate_pps=rate_pps if rate_pps is not None else self.rate_pps,
            rng=rng,
            probe_mask=probe_mask,
            degraded=degraded,
        )
