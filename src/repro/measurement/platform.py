"""Measurement platforms: vantage-point sets with realistic placement.

The paper weighs PlanetLab against RIPE Atlas, Archipelago, and MLab
(Sec. 3.2): PlanetLab offers ~300 fully-programmable nodes concentrated in
North-American and European universities; RIPE Atlas offers an order of
magnitude more probes with better geographic spread but no custom software.
Fig. 5 shows the consequence — PlanetLab's view of Microsoft's deployment
(21 replicas) is a strict subset of RIPE's (54).

We model a platform as a set of :class:`VantagePoint` objects with:

* a location (city, chosen with a platform-specific continental skew);
* a host-load factor (PlanetLab nodes are shared and slow; drives the
  completion-time CDF of Fig. 8);
* a local :class:`~repro.net.icmp.RateLimitPolicy` (some hosting networks
  police the reply aggregate — the paper's probing-rate lesson).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..geo.cities import City, CityDB, default_city_db
from ..geo.coords import GeoPoint, destination_point
from ..net.icmp import NO_RATE_LIMIT, RateLimitPolicy


@dataclass(frozen=True)
class VantagePoint:
    """One measurement node."""

    name: str
    city: City
    location: GeoPoint
    #: Multiplier ≥ 1 on nominal census duration (shared-host slowness).
    host_load: float = 1.0
    #: Policing applied to the reply aggregate near this VP.
    rate_limit: RateLimitPolicy = NO_RATE_LIMIT

    def __post_init__(self) -> None:
        if self.host_load < 1.0:
            raise ValueError(f"{self.name}: host_load must be >= 1")


@dataclass
class Platform:
    """A named set of vantage points."""

    name: str
    vantage_points: List[VantagePoint]

    def __post_init__(self) -> None:
        names = [vp.name for vp in self.vantage_points]
        if len(set(names)) != len(names):
            raise ValueError("duplicate vantage-point names")

    def __len__(self) -> int:
        return len(self.vantage_points)

    def __iter__(self):
        return iter(self.vantage_points)

    @property
    def lats(self) -> np.ndarray:
        return np.array([vp.location.lat for vp in self.vantage_points])

    @property
    def lons(self) -> np.ndarray:
        return np.array([vp.location.lon for vp in self.vantage_points])

    def subset(self, indices: Sequence[int], name: Optional[str] = None) -> "Platform":
        """A platform restricted to the given VP indices."""
        vps = [self.vantage_points[i] for i in indices]
        return Platform(name=name or f"{self.name}-subset", vantage_points=vps)

    def without(self, names: Iterable[str], name: Optional[str] = None) -> "Platform":
        """A platform with the named VPs removed (quarantine filtering).

        If ``names`` is empty the platform itself is returned unchanged,
        so the common no-quarantine path allocates nothing.
        """
        excluded = set(names)
        if not excluded:
            return self
        vps = [vp for vp in self.vantage_points if vp.name not in excluded]
        if not vps:
            raise ValueError("cannot remove every vantage point")
        return Platform(name=name or self.name, vantage_points=vps)

    def sample_available(
        self, rng: np.random.Generator, availability: float = 0.85
    ) -> "Platform":
        """Random subset of nodes that happen to be alive for one census.

        The paper's four censuses ran from 261, 255, 269 and 240 PlanetLab
        nodes out of ~300 registered — node availability fluctuates.
        """
        if not 0.0 < availability <= 1.0:
            raise ValueError("availability must be in (0, 1]")
        mask = rng.random(len(self.vantage_points)) < availability
        if not mask.any():
            mask[int(rng.integers(0, len(mask)))] = True
        return self.subset(list(np.nonzero(mask)[0]))


# Continental weighting: ISO country → relative density of platform nodes.
_PLANETLAB_COUNTRY_WEIGHT: Dict[str, float] = {
    # US/EU university heavy; thin in Asia; nearly absent elsewhere.
    "US": 8.0, "CA": 2.0,
    "DE": 3.0, "FR": 3.0, "GB": 3.0, "IT": 2.0, "ES": 2.0, "NL": 2.0,
    "BE": 1.5, "CH": 1.5, "SE": 1.5, "FI": 1.0, "NO": 1.0, "PL": 1.5,
    "CZ": 1.0, "AT": 1.0, "PT": 1.0, "IE": 1.0, "GR": 1.0, "HU": 1.0,
    "JP": 1.0, "KR": 0.7, "CN": 0.4, "TW": 0.4, "SG": 0.4, "HK": 0.3,
    "AU": 0.5, "NZ": 0.2, "BR": 0.3, "AR": 0.15, "IL": 0.4, "IN": 0.2,
    "RU": 0.2, "TR": 0.1, "MX": 0.15,
}

_RIPE_COUNTRY_WEIGHT: Dict[str, float] = {
    # RIPE Atlas: EU-dominated but with a worldwide tail.
    "DE": 8.0, "FR": 6.0, "GB": 6.0, "NL": 5.0, "US": 5.0, "IT": 3.0,
    "ES": 3.0, "SE": 2.5, "CH": 2.5, "BE": 2.0, "AT": 2.0, "PL": 2.0,
    "CZ": 2.0, "FI": 1.5, "NO": 1.5, "DK": 1.5, "IE": 1.0, "PT": 1.0,
    "GR": 1.0, "HU": 1.0, "RO": 1.0, "BG": 0.8, "RU": 2.0, "UA": 1.0,
    "CA": 1.5, "BR": 1.0, "AR": 0.5, "CL": 0.4, "MX": 0.5,
    "JP": 1.0, "KR": 0.6, "CN": 0.5, "SG": 0.8, "HK": 0.5, "IN": 0.8,
    "AU": 1.0, "NZ": 0.5, "ZA": 0.8, "KE": 0.4, "NG": 0.3, "EG": 0.3,
    "IL": 0.6, "AE": 0.5, "TR": 0.6, "ID": 0.4, "TH": 0.4, "MY": 0.3,
    "CS": 0.0,
}


def _build_platform(
    name: str,
    count: int,
    weights: Dict[str, float],
    seed: int,
    city_db: Optional[CityDB],
    limited_fraction: float,
    safe_rate_pps: float,
    load_sigma: float,
) -> Platform:
    if count < 1:
        raise ValueError("platform needs at least one vantage point")
    db = city_db or default_city_db()
    rng = np.random.default_rng(seed)
    cities = list(db.cities)
    # Country weights are *country* masses: normalize within each country so
    # that a country's share does not grow with its gazetteer coverage.  A
    # mild population factor places nodes in each country's bigger cities.
    pop_factor = np.array([max(c.population, 1.0) ** 0.25 for c in cities])
    country_mass: Dict[str, float] = {}
    for city, f in zip(cities, pop_factor):
        country_mass[city.country] = country_mass.get(city.country, 0.0) + f
    w = np.array(
        [
            weights.get(c.country, 0.05) * f / country_mass[c.country]
            for c, f in zip(cities, pop_factor)
        ]
    )
    w /= w.sum()
    picks = rng.choice(len(cities), size=count, p=w)
    vps = []
    for i, ci in enumerate(picks):
        city = cities[ci]
        location = destination_point(
            city.location, float(rng.uniform(0, 360)), float(rng.uniform(0, 25))
        )
        # Host load: a fast cohort near 1x and a heavy-tailed slow cohort.
        if rng.random() < 0.45:
            load = float(rng.uniform(1.0, 1.1))
        else:
            load = float(1.1 + rng.lognormal(mean=-0.6, sigma=load_sigma))
        if rng.random() < limited_fraction:
            policy = RateLimitPolicy(
                safe_rate_pps=float(rng.uniform(0.6, 2.0) * safe_rate_pps), severity=1.0
            )
        else:
            policy = NO_RATE_LIMIT
        vps.append(
            VantagePoint(
                name=f"{name.lower()}-{i:04d}-{city.country.lower()}",
                city=city,
                location=location,
                host_load=load,
                rate_limit=policy,
            )
        )
    return Platform(name=name, vantage_points=vps)


def planetlab_platform(
    count: int = 308,
    seed: int = 41,
    city_db: Optional[CityDB] = None,
    limited_fraction: float = 0.3,
) -> Platform:
    """A PlanetLab-like platform: ~300 nodes, US/EU-academic skew.

    ``limited_fraction`` of nodes sit behind networks that police the ICMP
    reply aggregate (the source of the heterogeneous drop rates the paper
    hit at full probing speed).
    """
    return _build_platform(
        "PlanetLab", count, _PLANETLAB_COUNTRY_WEIGHT, seed, city_db,
        limited_fraction=limited_fraction, safe_rate_pps=2000.0, load_sigma=0.7,
    )


def ripe_platform(
    count: int = 1500,
    seed: int = 43,
    city_db: Optional[CityDB] = None,
) -> Platform:
    """A RIPE-Atlas-like platform: many more probes, broader coverage.

    RIPE probes are dedicated hardware (no host-load tail) and their rate
    limits never bind because Atlas cannot run high-rate custom scans
    anyway (the paper's reason for *not* using it for the census).
    """
    return _build_platform(
        "RIPE", count, _RIPE_COUNTRY_WEIGHT, seed, city_db,
        limited_fraction=0.0, safe_rate_pps=float("inf"), load_sigma=0.2,
    )
