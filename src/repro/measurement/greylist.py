"""Blacklist/greylist bookkeeping.

Good-citizen mechanics from Sec. 3.3: before a full census, a single-VP
pre-census builds an initial **blacklist** of targets that answer with
administratively-prohibited ICMP errors.  During each census, newly seen
error senders accumulate in a temporary **greylist**, which is merged into
the blacklist afterwards so those hosts are never probed again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Set

from ..net.icmp import IcmpOutcome


@dataclass
class Greylist:
    """Targets that asked (via ICMP errors) not to be probed."""

    _members: Dict[int, IcmpOutcome] = field(default_factory=dict)

    def add(self, prefix: int, outcome: IcmpOutcome) -> None:
        """Record a greylist-triggering outcome for a /24 prefix index."""
        if not outcome.triggers_greylist:
            raise ValueError(f"{outcome} does not trigger greylisting")
        self._members.setdefault(prefix, outcome)

    def observe(self, prefix: int, outcome: IcmpOutcome) -> bool:
        """Add the target iff the outcome is greylistable; return whether added."""
        if outcome.triggers_greylist:
            self.add(prefix, outcome)
            return True
        return False

    def __contains__(self, prefix: int) -> bool:
        return prefix in self._members

    def __len__(self) -> int:
        return len(self._members)

    @property
    def prefixes(self) -> Set[int]:
        return set(self._members)

    def composition(self) -> Dict[IcmpOutcome, float]:
        """Fraction of entries per ICMP error family.

        The paper reports 98.5% code 13, 1.3% code 10, 0.2% code 9.
        """
        if not self._members:
            return {}
        counts: Dict[IcmpOutcome, int] = {}
        for outcome in self._members.values():
            counts[outcome] = counts.get(outcome, 0) + 1
        total = len(self._members)
        return {o: c / total for o, c in counts.items()}

    def merge_into(self, blacklist: "Blacklist") -> int:
        """Fold this greylist into a blacklist; return newly added count."""
        return blacklist.extend(self._members.items())


@dataclass
class Blacklist:
    """The persistent do-not-probe set carried across censuses."""

    _members: Dict[int, IcmpOutcome] = field(default_factory=dict)

    def extend(self, items: Iterable) -> int:
        added = 0
        for prefix, outcome in items:
            if prefix not in self._members:
                self._members[prefix] = outcome
                added += 1
        return added

    def __contains__(self, prefix: int) -> bool:
        return prefix in self._members

    def __len__(self) -> int:
        return len(self._members)

    @property
    def prefixes(self) -> Set[int]:
        return set(self._members)
