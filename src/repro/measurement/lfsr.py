"""Galois linear-feedback shift register for target randomization.

fastping probes "the target list in a randomized order to reduce
intrusiveness ... achieved via a Linear Feedback Shift Register (LFSR) with
Galois configuration" (Sec. 3.3/3.5).  A maximal-period LFSR of width *w*
cycles through every nonzero *w*-bit value exactly once, giving a
memoryless full permutation of up to 2^w − 1 targets — no shuffled index
array to keep in memory, which matters at O(10^7) targets.

We implement the standard Galois stepping plus the skip trick: to permute
``n`` targets, use the smallest width with 2^w − 1 ≥ n and discard states
exceeding ``n``.
"""

from __future__ import annotations

from typing import Iterator, List

# Maximal-length polynomial tap masks by register width (Xilinx app-note
# XAPP052 table).  Entry w maps to the XOR mask applied on shift-out.
_TAP_MASKS = {
    2: 0b11,
    3: 0b110,
    4: 0b1100,
    5: 0b10100,
    6: 0b110000,
    7: 0b1100000,
    8: 0b10111000,
    9: 0b100010000,
    10: 0b1001000000,
    11: 0b10100000000,
    12: 0b100000101001,
    13: 0b1000000001101,
    14: 0b10000000010101,
    15: 0b110000000000000,
    16: 0b1101000000001000,
    17: 0b10010000000000000,
    18: 0b100000010000000000,
    19: 0b1000000000000100011,
    20: 0b10010000000000000000,
    21: 0b101000000000000000000,
    22: 0b1100000000000000000000,
    23: 0b10000100000000000000000,
    24: 0b111000010000000000000000,
    25: 0b1001000000000000000000000,
    26: 0b10000000000000000000100011,
    27: 0b100000000000000000000010011,
    28: 0b1001000000000000000000000000,
    29: 0b10100000000000000000000000000,
    30: 0b100000000000000000000000101001,
    31: 0b1001000000000000000000000000000,
    32: 0b10000000001000000000000000000011,
}


class GaloisLFSR:
    """A maximal-period Galois LFSR over ``width`` bits.

    The state sequence visits every value in [1, 2^width − 1] exactly once
    before repeating.  State 0 is unreachable (and invalid as a seed).
    """

    def __init__(self, width: int, seed: int = 1) -> None:
        if width not in _TAP_MASKS:
            raise ValueError(f"unsupported LFSR width {width} (need 2–32)")
        period = (1 << width) - 1
        if not 1 <= seed <= period:
            raise ValueError(f"seed must be in [1, {period}], got {seed}")
        self.width = width
        self.period = period
        self._mask = _TAP_MASKS[width]
        self._state = seed

    @property
    def state(self) -> int:
        return self._state

    def step(self) -> int:
        """Advance one step and return the new state."""
        lsb = self._state & 1
        self._state >>= 1
        if lsb:
            self._state ^= self._mask
        return self._state

    def cycle(self) -> Iterator[int]:
        """Yield the full period of states starting from the current one."""
        start = self._state
        yield start
        while True:
            nxt = self.step()
            if nxt == start:
                return
            yield nxt


def width_for(n: int) -> int:
    """Smallest supported LFSR width whose period covers ``n`` values."""
    if n < 1:
        raise ValueError("n must be positive")
    for width in range(2, 33):
        if (1 << width) - 1 >= n:
            return width
    raise ValueError(f"n={n} exceeds 32-bit LFSR period")


def lfsr_permutation(n: int, seed: int = 1) -> List[int]:
    """A pseudo-random permutation of ``range(n)`` via the skip trick.

    States larger than ``n`` are discarded; surviving states minus one give
    indices 0..n−1, each exactly once.  Deterministic in ``seed``.
    """
    if n == 0:
        return []
    if n == 1:
        return [0]
    width = width_for(n)
    period = (1 << width) - 1
    start = (seed - 1) % period + 1
    lfsr = GaloisLFSR(width, seed=start)
    out = []
    for state in lfsr.cycle():
        if state <= n:
            out.append(state - 1)
    return out
