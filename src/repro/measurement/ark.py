"""Archipelago-style dataset model (paper Sec. 3.2).

CAIDA's Ark probes all routed /24s every 2-3 days, which sounds perfect —
but the paper explains why its dataset cannot support an anycast census:
probes are split into **three independent teams** (so at most 3 monitors
ever target a given /24), each probe targets a **random IP** inside the
/24 (hit rate ~6%), and the teams divide the prefix space rather than all
probing everything.

This module generates an Ark-like dataset over the synthetic ground truth
so the unsuitability argument can be measured: the per-/24 sample count is
tiny and anycast detection recall collapses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..geo.coords import pairwise_distances_km
from ..internet.topology import RESP_REPLY, SyntheticInternet
from ..measurement.platform import Platform
from ..measurement.recordio import CensusRecords, FLAG_REPLY

#: Probability a randomly-chosen IP inside a /24 responds (paper: ~6%).
ARK_HIT_RATE = 0.06

#: Number of independent monitor teams.
ARK_TEAMS = 3


@dataclass
class ArkDataset:
    """An Ark-style measurement round."""

    records: CensusRecords
    team_of_vp: np.ndarray

    @property
    def monitors_per_target(self) -> float:
        """Mean distinct monitors contributing per responding /24."""
        if not len(self.records):
            return 0.0
        pairs = set(zip(self.records.prefix.tolist(), self.records.vp_index.tolist()))
        targets = len(set(self.records.prefix.tolist()))
        return len(pairs) / max(targets, 1)


def ark_round(
    internet: SyntheticInternet,
    platform: Platform,
    seed: int = 3,
    hit_rate: float = ARK_HIT_RATE,
) -> ArkDataset:
    """Simulate one Ark probing round.

    Teams partition the target space: each /24 is probed by exactly one
    team (one randomly chosen monitor of it), at a random in-prefix IP that
    responds with probability ``hit_rate``.
    """
    if not 0.0 < hit_rate <= 1.0:
        raise ValueError("hit_rate must be in (0, 1]")
    rng = np.random.default_rng(seed)
    n_vps = len(platform)
    team_of_vp = rng.integers(0, ARK_TEAMS, size=n_vps)

    vp_cols, prefix_cols, ts_cols, rtt_cols = [], [], [], []
    vp_lats, vp_lons = platform.lats, platform.lons
    for pos in range(internet.n_targets):
        # Team assignment per /24, then one monitor of that team.
        team = rng.integers(0, ARK_TEAMS)
        members = np.nonzero(team_of_vp == team)[0]
        if not len(members):
            continue
        vp_idx = int(members[rng.integers(0, len(members))])
        # Random in-prefix IP: usually dead even in used space.
        responsive = internet.responsiveness[pos] == RESP_REPLY
        if not (responsive and rng.random() < hit_rate):
            continue
        # One RTT sample toward the effective location (unicast host or the
        # replica in this VP's catchment).
        dep_idx = int(internet.deployment_index[pos])
        if dep_idx >= 0:
            dep = internet.deployments[dep_idx]
            site = int(dep.catchment([vp_lats[vp_idx]], [vp_lons[vp_idx]])[0])
            lat, lon = dep.replicas[site].location.lat, dep.replicas[site].location.lon
        else:
            lat, lon = internet.lats[pos], internet.lons[pos]
        distance = pairwise_distances_km([vp_lats[vp_idx]], [vp_lons[vp_idx]], [lat], [lon])[0, 0]
        base = internet.config.latency.path_rtt_ms(np.array([distance]), rng)
        rtt = internet.config.latency.probe_rtt_ms(base, rng)[0]
        vp_cols.append(vp_idx)
        prefix_cols.append(int(internet.prefixes[pos]))
        ts_cols.append(float(pos))
        rtt_cols.append(float(rtt))

    records = CensusRecords(
        census_id=1,
        vp_index=np.array(vp_cols, dtype=np.uint16),
        prefix=np.array(prefix_cols, dtype=np.uint32),
        timestamp_ms=np.array(ts_cols, dtype=np.float64),
        rtt_ms=np.array(rtt_cols, dtype=np.float32),
        flag=np.full(len(vp_cols), FLAG_REPLY, dtype=np.int8),
    )
    return ArkDataset(records=records, team_of_vp=team_of_vp)
