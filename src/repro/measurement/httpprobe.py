"""curl-like HTTP ground-truth probe.

Some anycast CDNs disclose the identity of the replica that served an HTTP
request: CloudFlare appends an IATA-style site code to its custom
``CF-RAY`` header, EdgeCast encodes the PoP in the standard ``Server``
header (``ECS (pop/...)``).  The paper exploits this (Sec. 3.4) to build a
city-level ground truth for the two CDNs and validate the census
geolocation: the per-/24 true-positive rate and, for misclassified /24s,
the distance error.

We reproduce the mechanism: an HTTP probe from a vantage point is routed
through the deployment's catchment and returns headers embedding a *site
code* for the serving replica.  Site codes are assigned deterministically
from the city gazetteer (three letters, collision-disambiguated), and the
module can parse its own headers back into cities — the probe consumer
never touches the ground truth directly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Optional, Set

from ..geo.cities import City, CityDB, default_city_db
from ..internet.deployments import AnycastDeployment
from ..measurement.platform import Platform, VantagePoint


class SiteCodeBook:
    """Deterministic city ↔ site-code mapping (like IATA codes)."""

    def __init__(self, city_db: Optional[CityDB] = None) -> None:
        db = city_db or default_city_db()
        self._code_of: Dict[City, str] = {}
        self._city_of: Dict[str, City] = {}
        for city in sorted(db.cities, key=lambda c: (-c.population, c.name, c.country)):
            code = self._assign(city)
            self._code_of[city] = code
            self._city_of[code] = city

    def _assign(self, city: City) -> str:
        letters = re.sub(r"[^A-Z]", "", city.name.upper())
        base = (letters + "XXX")[:3]
        if base not in self._city_of:
            return base
        for i in range(1, 100):
            candidate = base[:2] + str(i)
            if candidate not in self._city_of:
                return candidate
        raise RuntimeError(f"cannot assign site code for {city}")

    def code(self, city: City) -> str:
        try:
            return self._code_of[city]
        except KeyError:
            raise KeyError(f"city {city} not in codebook") from None

    def city(self, code: str) -> City:
        try:
            return self._city_of[code]
        except KeyError:
            raise KeyError(f"unknown site code {code!r}") from None


@dataclass(frozen=True)
class HttpResponse:
    """A minimal HTTP response: status plus headers."""

    status: int
    headers: Dict[str, str]


_CF_RAY_RE = re.compile(r"^[0-9a-f]{16}-([A-Z0-9]{3})$")
_ECS_SERVER_RE = re.compile(r"^ECS \(([a-z0-9]{3})/[0-9A-F]{4}\)$")


def http_probe(
    deployment: AnycastDeployment,
    vp: VantagePoint,
    codebook: SiteCodeBook,
) -> HttpResponse:
    """Issue an HTTP GET to the deployment from a vantage point.

    Returns a 200 with location-revealing headers when the deployment
    exposes them, a bare 200 otherwise.
    """
    replica = deployment.serving_replica(vp.location)
    headers = {"Date": "Tue, 17 Mar 2015 12:00:00 GMT"}
    header = deployment.entry.http_location_header
    if header == "CF-RAY":
        ray_id = f"{abs(hash((deployment.entry.asn, vp.name))) % (16**16):016x}"
        headers["CF-RAY"] = f"{ray_id}-{codebook.code(replica.city)}"
    elif header == "Server":
        pop = codebook.code(replica.city).lower()
        checksum = f"{abs(hash(vp.name)) % (16**4):04X}"
        headers["Server"] = f"ECS ({pop}/{checksum})"
    return HttpResponse(status=200, headers=headers)


def replica_city_from_headers(response: HttpResponse, codebook: SiteCodeBook) -> Optional[City]:
    """Parse the serving replica's city out of response headers, if present."""
    ray = response.headers.get("CF-RAY")
    if ray is not None:
        match = _CF_RAY_RE.match(ray)
        if match is None:
            raise ValueError(f"malformed CF-RAY header: {ray!r}")
        return codebook.city(match.group(1))
    server = response.headers.get("Server")
    if server is not None:
        match = _ECS_SERVER_RE.match(server)
        if match is None:
            return None  # ordinary Server header, no location encoded
        return codebook.city(match.group(1).upper())
    return None


def measure_http_ground_truth(
    deployment: AnycastDeployment,
    platform: Platform,
    codebook: Optional[SiteCodeBook] = None,
) -> Set[City]:
    """Cities observable from a platform via HTTP headers.

    This is the paper's measured ground truth (GT): the set of replica
    cities at least one vantage point is routed to.  It is inherently a
    subset of the publicly-advertised information (PAI) — the full site
    list — because a platform's catchment view is partial.
    """
    book = codebook or SiteCodeBook()
    cities: Set[City] = set()
    for vp in platform:
        response = http_probe(deployment, vp, book)
        city = replica_city_from_headers(response, book)
        if city is not None:
            cities.add(city)
    return cities


def publicly_advertised_cities(deployment: AnycastDeployment) -> Set[City]:
    """The PAI: every replica city the operator lists on its website."""
    return set(deployment.site_cities)
