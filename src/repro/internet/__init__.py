"""Synthetic-Internet ground truth: catalog, deployments, topology, hitlist."""

from .catalog import (
    TOP100_ENTRIES,
    CatalogEntry,
    catalog_total_slash24,
    full_catalog,
    tail_entries,
)
from .deployments import (
    AnycastDeployment,
    Replica,
    UnicastHost,
    alive_hosts,
    choose_replica_cities,
)
from .hitlist import Hitlist, HitlistEntry, generate_hitlist
from .topology import (
    RESP_ADMIN_FILTERED,
    RESP_HOST_PROHIBITED,
    RESP_NET_PROHIBITED,
    RESP_REPLY,
    RESP_SILENT,
    InternetConfig,
    SyntheticInternet,
    responsiveness_outcome,
)

__all__ = [
    "TOP100_ENTRIES",
    "CatalogEntry",
    "catalog_total_slash24",
    "full_catalog",
    "tail_entries",
    "AnycastDeployment",
    "Replica",
    "UnicastHost",
    "alive_hosts",
    "choose_replica_cities",
    "Hitlist",
    "HitlistEntry",
    "generate_hitlist",
    "RESP_ADMIN_FILTERED",
    "RESP_HOST_PROHIBITED",
    "RESP_NET_PROHIBITED",
    "RESP_REPLY",
    "RESP_SILENT",
    "InternetConfig",
    "SyntheticInternet",
    "responsiveness_outcome",
]
