"""Curated anycast-deployment catalog.

The paper's Fig. 9 names the 100 ASes with the largest observed anycast
geographical footprint, annotated with business category, IP/24 footprint,
open TCP ports, and CAIDA/Alexa rank membership.  This module embeds that
list — names, countries, and categories transcribed from the paper; ASNs
from public WHOIS where well known — together with the per-AS deployment
parameters the synthetic-Internet builder needs (number of anycast /24s,
number of replica sites, TCP service profile, software fingerprints).

Quantities reported in the paper are encoded faithfully where the paper
gives them, e.g.:

* CloudFlare: 328 anycast /24s, ~20 open ports, hosts 188 Alexa-100k sites;
* Google: 102 /24s, 9 open ports, 11 Alexa sites;
* EdgeCast: 37 /24s, 5 open ports (sharing only 53/80/443 with CloudFlare);
* OVH: 10,148 open ports (BitTorrent seedbox ecosystem); Incapsula: 313;
* 8 ASes in the CAIDA top-100 owning 19 anycast /24s in total;
* 15 ASes hosting Alexa-100k websites on 242 anycast /24s;
* Apple, K-root and L-root run NLnet Labs NSD; most other DNS runs ISC BIND.

Where the paper gives no number (footprints of mid-table ASes), values are
chosen to preserve the reported distributional shape: half of the ASes own
exactly one anycast /24, ten ASes own ≥10, replica counts decay from ~45
down to ~5 across the table.

In addition to the named top-100, :func:`tail_entries` generates the long
tail of small deployments (2–4 replicas, 1–4 /24s) that brings the census
total to the paper's ~1,700 anycast /24s in ~350 ASes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..net.asn import AutonomousSystem, BusinessCategory

_C = BusinessCategory


@dataclass(frozen=True)
class CatalogEntry:
    """Deployment blueprint for one anycast AS."""

    rank: int
    asn: int
    name: str
    country: str
    category: BusinessCategory
    #: Number of anycast /24 prefixes the AS announces.
    n_slash24: int
    #: Number of geographically distinct replica sites (ground truth).
    n_sites: int
    #: CAIDA AS-rank position, if within the published list.
    caida_rank: Optional[int] = None
    #: Number of Alexa-100k websites served from this AS's anycast space.
    alexa_sites: int = 0
    #: Number of this AS's /24s that host Alexa-100k websites.
    alexa_ip24: int = 0
    #: Open TCP ports common to the deployment.
    ports: Tuple[int, ...] = ()
    #: Additional randomly-chosen high ports (OVH/Incapsula seedbox tails).
    extra_random_ports: int = 0
    #: Software fingerprints nmap would report.
    software: Tuple[str, ...] = ()
    #: HTTP header revealing the serving replica's location, if any
    #: ("CF-RAY" for CloudFlare, "Server" for EdgeCast) — the paper's
    #: ground-truth side channel for validation (Sec. 3.4).
    http_location_header: Optional[str] = None
    #: When set, all replica sites except the primary are announced with a
    #: regional BGP scope: only clients within this many km can be routed
    #: to them (the paper's "BGP prefix is only locally advertised" case,
    #: which makes small deployments hard to detect from a sparse
    #: platform).  ``None`` means all sites are globally announced.
    local_scope_km: Optional[float] = None
    #: Share of host addresses alive inside each announced /24 (paper
    #: Sec. 4.2: deployments range from very sparse — Google's 8.8.8.8 is
    #: the only alive address in 8.8.8.0/24 — to very dense — "well over
    #: 99% of IPs are alive in most CloudFlare subnets").
    ip_density: float = 0.6

    def __post_init__(self) -> None:
        if self.n_slash24 < 1:
            raise ValueError(f"{self.name}: needs at least one /24")
        if self.n_sites < 1:
            raise ValueError(f"{self.name}: needs at least one site")
        if self.alexa_ip24 > self.n_slash24:
            raise ValueError(f"{self.name}: alexa_ip24 exceeds footprint")
        if self.alexa_sites and not self.alexa_ip24:
            raise ValueError(f"{self.name}: alexa_sites without alexa_ip24")
        if not 0.0 < self.ip_density <= 1.0:
            raise ValueError(f"{self.name}: ip_density must be in (0, 1]")

    @property
    def autonomous_system(self) -> AutonomousSystem:
        return AutonomousSystem(self.asn, self.name, self.country, self.category)

    @property
    def total_ports(self) -> int:
        return len(self.ports) + self.extra_random_ports


# Default service profiles by business category (ports, software).
_CATEGORY_PORTS: Dict[BusinessCategory, Tuple[int, ...]] = {
    _C.DNS: (53,),
    _C.CDN: (53, 80, 443, 8080),
    _C.CLOUD: (22, 80, 443),
    _C.CLOUD_MESSAGING: (25, 443),
    _C.ISP: (53, 179),
    _C.ISP_TIER1: (53, 179),
    _C.BACKBONE: (179,),
    _C.SECURITY: (53, 80, 443),
    _C.SOCIAL_NETWORK: (80, 443),
    _C.WEB_PORTAL: (80, 443),
    _C.WEB_ANALYTICS: (80, 443),
    _C.ONLINE_MARKETING: (80, 443),
    _C.AD_TECHNOLOGY: (80, 443),
    _C.BLOGGING: (80, 443),
    _C.VIDEO_CONFERENCING: (443, 5060),
    _C.TELECOM_VENDOR: (80, 443, 5252),
    _C.UNKNOWN: (),
}

_CATEGORY_SOFTWARE: Dict[BusinessCategory, Tuple[str, ...]] = {
    _C.DNS: ("ISC BIND",),
    _C.CDN: ("nginx",),
    _C.CLOUD: ("Apache httpd", "OpenSSH"),
    _C.CLOUD_MESSAGING: ("Apache httpd",),
    _C.ISP: ("OpenSSH",),
    _C.ISP_TIER1: ("OpenSSH",),
    _C.BACKBONE: (),
    _C.SECURITY: ("nginx",),
    _C.SOCIAL_NETWORK: ("Varnish",),
    _C.WEB_PORTAL: ("Apache Tomcat",),
    _C.WEB_ANALYTICS: ("lighttpd",),
    _C.ONLINE_MARKETING: ("Apache httpd",),
    _C.AD_TECHNOLOGY: ("nginx",),
    _C.BLOGGING: ("nginx",),
    _C.VIDEO_CONFERENCING: ("lighttpd",),
    _C.TELECOM_VENDOR: ("thttpd",),
    _C.UNKNOWN: (),
}


def _default_sites(rank: int) -> int:
    """Replica-count decay across the Fig. 9 table (~45 down to ~5)."""
    return max(5, round(45 - 0.4 * rank))


def _entry(
    rank: int,
    asn: int,
    name: str,
    country: str,
    category: BusinessCategory,
    n_slash24: int = 1,
    n_sites: Optional[int] = None,
    caida_rank: Optional[int] = None,
    alexa_sites: int = 0,
    alexa_ip24: int = 0,
    ports: Optional[Tuple[int, ...]] = None,
    extra_random_ports: int = 0,
    software: Optional[Tuple[str, ...]] = None,
    http_location_header: Optional[str] = None,
    local_scope_km: Optional[float] = None,
    ip_density: float = 0.6,
) -> CatalogEntry:
    if ports is None:
        ports = _CATEGORY_PORTS[category]
    if software is None:
        software = _CATEGORY_SOFTWARE[category]
    return CatalogEntry(
        rank=rank,
        asn=asn,
        name=name,
        country=country,
        category=category,
        n_slash24=n_slash24,
        n_sites=n_sites if n_sites is not None else _default_sites(rank),
        caida_rank=caida_rank,
        alexa_sites=alexa_sites,
        alexa_ip24=alexa_ip24,
        ports=tuple(sorted(set(ports))),
        extra_random_ports=extra_random_ports,
        software=tuple(software),
        http_location_header=http_location_header,
        local_scope_km=local_scope_km,
        ip_density=ip_density,
    )


# CloudFlare's 20-port profile; shares exactly {53, 80, 443} with EdgeCast's
# 5-port profile, so the union is the paper's "set of 22 open ports".
_CLOUDFLARE_PORTS = (
    53, 80, 443, 2052, 2053, 2082, 2083, 2086, 2087, 2095,
    2096, 8080, 8443, 8880, 8881, 8882, 8883, 8884, 8885, 8886,
)
_EDGECAST_PORTS = (53, 80, 443, 1935, 8081)
_GOOGLE_PORTS = (25, 53, 80, 110, 443, 465, 587, 993, 995)

#: The Fig. 9 top-100 anycast ASes, in the paper's footprint order.
TOP100_ENTRIES: Tuple[CatalogEntry, ...] = (
    _entry(1, 13335, "CLOUDFLARENET,US", "US", _C.CDN, n_slash24=328, n_sites=45,
           alexa_sites=188, alexa_ip24=180, ports=_CLOUDFLARE_PORTS, ip_density=0.999,
           software=("cloudflare-nginx", "CFS 0213"), http_location_header="CF-RAY"),
    _entry(2, 1280, "ISC-AS,US", "US", _C.DNS, n_slash24=12, n_sites=42),
    _entry(3, 6939, "HURRICANE,US", "US", _C.ISP, n_slash24=6, n_sites=40,
           caida_rank=5, ports=(53, 80, 179)),
    _entry(4, 36408, "CDNETWORKSUS-02,US", "US", _C.CDN, n_slash24=8, n_sites=38, alexa_sites=0),
    _entry(5, 32934, "FACEBOOK,US", "US", _C.SOCIAL_NETWORK, n_slash24=6, n_sites=37,
           alexa_sites=1, alexa_ip24=1),
    _entry(6, 21342, "COMMUNITYDNS,GB", "GB", _C.DNS, n_slash24=5, n_sites=36),
    _entry(7, 36619, "XGTLD,US", "US", _C.DNS, n_slash24=6, n_sites=35),
    _entry(8, 20144, "L-ROOT,US", "US", _C.DNS, n_slash24=1, n_sites=35,
           software=("NLnet Labs NSD",)),
    _entry(9, 8075, "MICROSOFT,US", "US", _C.CLOUD, n_slash24=12, n_sites=54,
           ports=(443, 1433, 3389),
           software=("Microsoft IIS", "Microsoft DNS", "Microsoft RPC",
                     "Microsoft HTTP", "Microsoft SQL")),
    _entry(10, 29216, "I-ROOT,SE", "SE", _C.DNS, n_slash24=1, n_sites=34),
    _entry(11, 7342, "VERISIGN-INC,US", "US", _C.DNS, n_slash24=12, n_sites=33),
    _entry(12, 22822, "LLNW,US", "US", _C.CDN, n_slash24=9, n_sites=32),
    _entry(13, 33005, "ARYAKA-ARIN,US", "US", _C.CLOUD, n_slash24=6, n_sites=31),
    _entry(14, 714, "APPLE-ENGINEERING,US", "US", _C.CDN, n_slash24=7, n_sites=30,
           software=("NLnet Labs NSD", "nginx")),
    _entry(15, 30282, "CEDEXIS,US", "US", _C.SECURITY, n_slash24=4, n_sites=29),
    _entry(16, 29798, "HIGHWINDS3,US", "US", _C.CDN, n_slash24=6, n_sites=29,
           alexa_sites=1, alexa_ip24=1),
    _entry(17, 8674, "NETNOD-IX,SE", "SE", _C.DNS, n_slash24=4, n_sites=28),
    _entry(18, 36692, "OPENDNS,US", "US", _C.SECURITY, n_slash24=6, n_sites=24,
           ports=(53, 80, 443), software=("OpenDNS",)),
    _entry(19, 42, "WOODYNET-1,US", "US", _C.DNS, n_slash24=18, n_sites=27),
    _entry(20, 37891, "LGTLD,US", "US", _C.DNS, n_slash24=3, n_sites=26),
    _entry(21, 48557, "LIECHTENSTEIN-1,LI", "LI", _C.UNKNOWN, n_slash24=1, n_sites=26),
    _entry(22, 54113, "FASTLY,US", "US", _C.CDN, n_slash24=8, n_sites=25,
           alexa_sites=5, alexa_ip24=3),
    _entry(23, 30637, "CACHENETWORKS,US", "US", _C.CDN, n_slash24=3, n_sites=25,
           alexa_sites=1, alexa_ip24=1),
    _entry(24, 33047, "INSTART,US", "US", _C.CDN, n_slash24=3, n_sites=24,
           alexa_sites=1, alexa_ip24=1, software=("instart/160",)),
    _entry(25, 55195, "DNSCAST-AS,US", "US", _C.DNS, n_slash24=20, n_sites=24),
    _entry(26, 15169, "GOOGLE,US", "US", _C.CLOUD, n_slash24=102, n_sites=23,
           alexa_sites=11, alexa_ip24=19, ports=_GOOGLE_PORTS, ip_density=1.0 / 254,
           software=("Google httpd", "Gmail imapd", "Gmail pop3d", "Google gsmtp")),
    _entry(27, 59796, "EDGECAST-IR,US", "US", _C.CDN, n_slash24=4, n_sites=23,
           software=("ECAcc/ECS",)),
    _entry(28, 27, "UMDNET,US", "US", _C.UNKNOWN, n_slash24=1, n_sites=22, ports=(80,)),
    _entry(29, 33517, "DYNDNS,US", "US", _C.DNS, n_slash24=9, n_sites=22),
    _entry(30, 62597, "NSONE,US", "US", _C.DNS, n_slash24=8, n_sites=21),
    _entry(31, 26608, "EASYLINK4,US", "US", _C.CLOUD_MESSAGING, n_slash24=1, n_sites=21),
    _entry(32, 24018, "YAHOO-AN2,US", "US", _C.WEB_PORTAL, n_slash24=3, n_sites=20,
           alexa_sites=1, alexa_ip24=1),
    _entry(33, 12008, "ULTRADNS,US", "US", _C.DNS, n_slash24=14, n_sites=20),
    _entry(34, 16276, "OVH,FR", "FR", _C.CLOUD, n_slash24=6, n_sites=19,
           ports=(22, 53, 80, 443, 3306), extra_random_ports=10143,
           software=("Apache httpd", "OpenSSH", "MySQL")),
    _entry(35, 48558, "LIECHTENSTEIN-2,LI", "LI", _C.UNKNOWN, n_slash24=1, n_sites=19),
    _entry(36, 12041, "AS-AFILIAS1,US", "US", _C.DNS, n_slash24=10, n_sites=18),
    _entry(37, 2635, "AUTOMATTIC,US", "US", _C.BLOGGING, n_slash24=16, n_sites=18,
           alexa_sites=4, alexa_ip24=7, software=("nginx",)),
    _entry(38, 3257, "TINET-BACKBONE,DE", "DE", _C.ISP_TIER1, n_slash24=2, n_sites=18,
           caida_rank=9, ports=(22, 53, 80, 179)),
    _entry(39, 6461, "ABOVENET-CUSTOMER,US", "US", _C.ISP, n_slash24=2, n_sites=17),
    _entry(40, 16509, "AMAZON-02,US", "US", _C.CLOUD, n_slash24=12, n_sites=17,
           alexa_sites=3, alexa_ip24=3),
    _entry(41, 1273, "CW,GB", "GB", _C.ISP, n_slash24=2, n_sites=17),
    _entry(42, 3356, "LEVEL3,US", "US", _C.ISP_TIER1, n_slash24=2, n_sites=16,
           caida_rank=1),
    _entry(43, 15133, "EDGECAST,US", "US", _C.CDN, n_slash24=37, n_sites=16,
           alexa_sites=10, alexa_ip24=12, ports=_EDGECAST_PORTS,
           software=("ECAcc/ECS", "ECD"), http_location_header="Server"),
    _entry(44, 13414, "TWITTER-NETWORK,US", "US", _C.SOCIAL_NETWORK, n_slash24=4, n_sites=16,
           alexa_sites=1, alexa_ip24=1),
    _entry(45, 19551, "INCAPSULA,US", "US", _C.CDN, n_slash24=6, n_sites=15,
           alexa_sites=1, alexa_ip24=1, ports=(53, 80, 443),
           extra_random_ports=310, software=("nginx",)),
    _entry(46, 36620, "AGTLD,US", "US", _C.DNS, n_slash24=3, n_sites=15),
    _entry(47, 18366, "AUSREGISTRY-1,AU", "AU", _C.DNS, n_slash24=3, n_sites=15),
    _entry(48, 29454, "CENTRALNIC-A1,GB", "GB", _C.DNS, n_slash24=3, n_sites=14),
    _entry(49, 174, "COGENT-2149,US", "US", _C.ISP, n_slash24=1, n_sites=14,
           caida_rank=2),
    _entry(50, 37889, "HGTLD,US", "US", _C.DNS, n_slash24=3, n_sites=14),
    _entry(51, 29799, "HIGHWINDS4,US", "US", _C.CDN, n_slash24=4, n_sites=13),
    _entry(52, 25152, "K-ROOT-SERVER,EU", "NL", _C.DNS, n_slash24=1, n_sites=13,
           software=("NLnet Labs NSD",)),
    _entry(53, 23393, "NETRIPLEX01,US", "US", _C.DNS, n_slash24=3, n_sites=13),
    _entry(54, 15224, "OMNITURE,US", "US", _C.ONLINE_MARKETING, n_slash24=3, n_sites=12),
    _entry(55, 36351, "SOFTLAYER,US", "US", _C.CLOUD, n_slash24=6, n_sites=12),
    _entry(56, 63041, "WANGSU-US,US", "US", _C.CDN, n_slash24=3, n_sites=12),
    _entry(57, 10310, "YAHOO-FC,US", "US", _C.WEB_PORTAL, n_slash24=2, n_sites=12),
    _entry(58, 40009, "BITGRAVITY,US", "US", _C.CDN, n_slash24=14, n_sites=11,
           alexa_sites=1, alexa_ip24=1),
    _entry(59, 11537, "ABILENE,US", "US", _C.BACKBONE, n_slash24=1, n_sites=11),
    _entry(60, 62713, "ADVAN-CAST,US", "US", _C.UNKNOWN, n_slash24=1, n_sites=11),
    _entry(61, 42909, "ASATTLDSE,SE", "SE", _C.DNS, n_slash24=2, n_sites=10),
    _entry(62, 8100, "AS-QUADRANET,US", "US", _C.CLOUD, n_slash24=3, n_sites=10),
    _entry(63, 6453, "AS6453,US", "US", _C.ISP_TIER1, n_slash24=2, n_sites=10,
           caida_rank=4),
    _entry(64, 2686, "ATT,EU", "EU", _C.ISP, n_slash24=1, n_sites=10,
           caida_rank=14),
    _entry(65, 29455, "CENTRALNIC-A2,GB", "GB", _C.DNS, n_slash24=3, n_sites=10),
    _entry(66, 209, "CENTURYLINK-1,US", "US", _C.ISP_TIER1, n_slash24=2, n_sites=9,
           caida_rank=30),
    _entry(67, 38719, "CONEXIM-AS-AP,AU", "AU", _C.CLOUD, n_slash24=1, n_sites=9),
    _entry(68, 36621, "EGTLD,US", "US", _C.DNS, n_slash24=3, n_sites=9),
    _entry(69, 36622, "KGTLD,US", "US", _C.DNS, n_slash24=3, n_sites=9),
    _entry(70, 44953, "MNS-AS,NO", "NO", _C.VIDEO_CONFERENCING, n_slash24=1, n_sites=9),
    _entry(71, 1921, "NICAT,AT", "AT", _C.DNS, n_slash24=1, n_sites=9),
    _entry(72, 63231, "VITAL-DNS,US", "US", _C.DNS, n_slash24=3, n_sites=8),
    _entry(73, 32421, "WHS-ANYCAST-1,US", "US", _C.SECURITY, n_slash24=1, n_sites=8),
    _entry(74, 36623, "ZGTLD,US", "US", _C.DNS, n_slash24=3, n_sites=8),
    _entry(75, 10910, "INTERNAP-BLK,US", "US", _C.CLOUD, n_slash24=3, n_sites=8),
    _entry(76, 14743, "NETAPP-ANYCAST,US", "US", _C.WEB_ANALYTICS, n_slash24=1, n_sites=8),
    _entry(77, 1239, "SPRINTLINK,US", "US", _C.ISP_TIER1, n_slash24=3, n_sites=8,
           caida_rank=16),
    _entry(78, 18367, "AUSREGISTRY-2,AU", "AU", _C.DNS, n_slash24=3, n_sites=7),
    _entry(79, 3561, "CENTURYLINK-2,US", "US", _C.ISP, n_slash24=1, n_sites=7),
    _entry(80, 61337, "DNSIMPLE,US", "US", _C.DNS, n_slash24=3, n_sites=7),
    _entry(81, 33480, "DYN-HC,US", "US", _C.DNS, n_slash24=3, n_sites=7),
    _entry(82, 26609, "EASYLINK2,US", "US", _C.CLOUD_MESSAGING, n_slash24=1, n_sites=7),
    _entry(83, 62752, "EDNS,CA", "CA", _C.DNS, n_slash24=1, n_sites=7),
    _entry(84, 60447, "ESGOB-ANYCAST,GB", "GB", _C.DNS, n_slash24=1, n_sites=6),
    _entry(85, 12824, "HOMEPL-AS,PL", "PL", _C.CLOUD, n_slash24=1, n_sites=6),
    _entry(86, 14413, "LINKEDIN,US", "US", _C.SOCIAL_NETWORK, n_slash24=1, n_sites=6),
    _entry(87, 18734, "MASERGY,US", "US", _C.CLOUD, n_slash24=1, n_sites=6),
    _entry(88, 33055, "MEDIAMATH-INC,US", "US", _C.AD_TECHNOLOGY, n_slash24=1, n_sites=6),
    _entry(89, 43531, "MII-2,GB", "GB", _C.CDN, n_slash24=1, n_sites=6),
    _entry(90, 43532, "MII-XPC,US", "US", _C.CDN, n_slash24=1, n_sites=6),
    _entry(91, 13768, "PEER1,US", "US", _C.CLOUD, n_slash24=1, n_sites=6),
    _entry(92, 61157, "PHH-AS,DE", "DE", _C.CDN, n_slash24=1, n_sites=5),
    _entry(93, 62858, "PRETECS,CA", "CA", _C.CDN, n_slash24=1, n_sites=5),
    _entry(94, 32787, "PROLEXIC,US", "US", _C.SECURITY, n_slash24=21, n_sites=5,
           alexa_sites=10, alexa_ip24=10),
    _entry(95, 36684, "QUANTCAST,US", "US", _C.WEB_ANALYTICS, n_slash24=1, n_sites=5),
    _entry(96, 18705, "RIMBLACKBERRY,CA", "CA", _C.TELECOM_VENDOR, n_slash24=1, n_sites=5),
    _entry(97, 39392, "SUPERNETWORK,CZ", "CZ", _C.CLOUD, n_slash24=1, n_sites=5),
    _entry(98, 62856, "UNOVA-1,CA", "CA", _C.DNS, n_slash24=1, n_sites=5),
    _entry(99, 39743, "VOXILITY,RO", "RO", _C.CLOUD, n_slash24=1, n_sites=5),
    _entry(100, 62905, "ZVONKOVA-AS,RU", "RU", _C.UNKNOWN, n_slash24=1, n_sites=5),
)


def catalog_total_slash24(entries: Sequence[CatalogEntry] = TOP100_ENTRIES) -> int:
    """Total anycast /24 footprint of a catalog."""
    return sum(e.n_slash24 for e in entries)


def tail_entries(
    count: int = 260,
    seed: int = 7,
    first_rank: int = 101,
    first_asn: int = 64600,
) -> List[CatalogEntry]:
    """Generate the long tail of small anycast deployments.

    These are the deployments *below* the paper's Fig. 9 cut: fewer than 5
    replica sites (the "All" row of Fig. 10 minus the "≥ 5 Replicas" row).
    Each has 2–4 sites and a small /24 footprint skewed toward 1.

    The generation is deterministic in ``seed`` so censuses are repeatable.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = np.random.default_rng(seed)
    categories = [
        _C.DNS, _C.DNS, _C.DNS, _C.CDN, _C.CLOUD, _C.ISP,
        _C.SECURITY, _C.UNKNOWN, _C.UNKNOWN,
    ]
    countries = ["US", "US", "US", "DE", "GB", "FR", "NL", "JP", "AU", "BR", "CA", "SE"]
    entries = []
    for i in range(count):
        category = categories[int(rng.integers(0, len(categories)))]
        # Footprint: 1 /24 for ~60% of tail ASes, up to 8 for a few.
        n_slash24 = int(rng.choice([1, 2, 3, 4, 5, 6, 8, 12], p=[0.40, 0.20, 0.11, 0.08, 0.07, 0.06, 0.05, 0.03]))
        n_sites = int(rng.integers(2, 5))
        # Half of the small deployments announce their secondary sites with
        # a regional BGP scope only — the hardest case for a sparse
        # platform and the source of flaky census-to-census detections.
        if rng.random() < 0.75:
            local_scope = float(rng.uniform(150.0, 900.0))
        else:
            local_scope = None
        entries.append(
            _entry(
                rank=first_rank + i,
                asn=first_asn + i,
                name=f"TAIL-{category.value.upper().replace(' ', '')[:6]}-{i:03d},{countries[i % len(countries)]}",
                country=countries[i % len(countries)],
                category=category,
                n_slash24=n_slash24,
                n_sites=n_sites,
                local_scope_km=local_scope,
            )
        )
    return entries


def full_catalog(tail_count: int = 260, seed: int = 7) -> List[CatalogEntry]:
    """Top-100 named deployments plus the generated tail."""
    return list(TOP100_ENTRIES) + tail_entries(count=tail_count, seed=seed)
