"""Census hitlist: one representative IP per routed /24, with liveness score.

Models the USC/ISI LANDER hitlist the paper relies on (Sec. 3.1): for every
routed /24 the hitlist nominates one IP/32 judged most likely to respond,
with a score summarizing liveness history.  When no alive IP was ever seen
in a /24, the list carries an arbitrary address with score ≤ −2; the paper
confirms those unreachable in the first census and prunes them, shrinking
the per-VP target list to 6.6M.

Our hitlist is derived from the synthetic ground truth: hosts that are
responsive get positive scores, greylist-error hosts get small non-negative
scores (they *are* alive — they answer, just not with echo replies), and
silent hosts get ≤ −2 scores with high probability (the hitlist is not
perfect: a sliver of silent hosts carries a stale positive score, and
responsiveness classification is re-validated by measurement, not assumed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..net.addresses import format_ipv4, host_in_slash24
from .topology import RESP_REPLY, RESP_SILENT, SyntheticInternet


@dataclass(frozen=True)
class HitlistEntry:
    """One hitlist row: the representative address of a /24 and its score."""

    prefix: int
    address: int
    score: int

    @property
    def never_alive(self) -> bool:
        """Score ≤ −2 marks a /24 in which no alive IP was ever observed."""
        return self.score <= -2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{format_ipv4(self.address)} score={self.score}"


class Hitlist:
    """An ordered collection of hitlist entries with pruning support."""

    def __init__(self, entries: Sequence[HitlistEntry]) -> None:
        self._entries: List[HitlistEntry] = list(entries)
        prefixes = [e.prefix for e in self._entries]
        if len(set(prefixes)) != len(prefixes):
            raise ValueError("duplicate /24 in hitlist")

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[HitlistEntry]:
        return iter(self._entries)

    def __getitem__(self, i: int) -> HitlistEntry:
        return self._entries[i]

    @property
    def prefixes(self) -> np.ndarray:
        return np.array([e.prefix for e in self._entries], dtype=np.int64)

    @property
    def never_alive_count(self) -> int:
        return sum(1 for e in self._entries if e.never_alive)

    def pruned(self) -> "Hitlist":
        """Drop never-alive entries (paper: after the first census confirms
        them unreachable, reducing the per-VP target size)."""
        return Hitlist([e for e in self._entries if not e.never_alive])

    def without_prefixes(self, excluded: Sequence[int]) -> "Hitlist":
        """Drop entries whose /24 is in ``excluded`` (blacklist application)."""
        drop = set(excluded)
        return Hitlist([e for e in self._entries if e.prefix not in drop])

    def coverage_of(self, routed_prefixes: Sequence[int]) -> float:
        """Fraction of routed /24s that have a hitlist representative.

        The paper reports >99.99% coverage of the 10.6M announced /24s.
        """
        routed = set(routed_prefixes)
        if not routed:
            raise ValueError("empty routed-prefix set")
        present = {e.prefix for e in self._entries}
        return len(routed & present) / len(routed)


def generate_hitlist(
    internet: SyntheticInternet,
    seed: Optional[int] = None,
    stale_score_fraction: float = 0.02,
) -> Hitlist:
    """Build the hitlist for a synthetic Internet.

    ``stale_score_fraction`` of silent /24s keep an (incorrect) positive
    score — hitlist history goes stale, which is why target liveness is
    measured rather than trusted.
    """
    if not 0.0 <= stale_score_fraction <= 1.0:
        raise ValueError("stale_score_fraction must be in [0, 1]")
    rng = np.random.default_rng(internet.config.seed + 1 if seed is None else seed)
    entries = []
    for pos in range(internet.n_targets):
        prefix = int(internet.prefixes[pos])
        resp = int(internet.responsiveness[pos])
        host_octet = int(rng.integers(1, 255))
        address = host_in_slash24(prefix, host_octet)
        if resp == RESP_REPLY:
            score = int(rng.integers(10, 100))
        elif resp == RESP_SILENT:
            if rng.random() < stale_score_fraction:
                score = int(rng.integers(1, 10))
            else:
                score = -2 - int(rng.integers(0, 3))
        else:
            # Error-returning hosts are alive from the hitlist's viewpoint.
            score = int(rng.integers(0, 10))
        entries.append(HitlistEntry(prefix=prefix, address=address, score=score))
    return Hitlist(entries)
