"""Synthetic-Internet builder.

:class:`SyntheticInternet` is the ground truth every experiment measures
against: a routed /24 universe populated with anycast deployments (from the
catalog) and ordinary unicast hosts, plus per-host responsiveness behaviour
matching the census funnel of the paper's Fig. 4 (under half of the targets
reply; a small fraction returns administratively-prohibited ICMP errors).

The paper probes the real Internet's ~10.6M routed /24s to find ~1,700
anycast ones; we keep the anycast population at the paper's absolute scale
and shrink only the unicast haystack (configurable), because the unicast
mass contributes nothing to the anycast results except funnel statistics —
which we report in proportion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..bgp.graph import BgpConfig
    from ..bgp.plane import BgpRoutingPlane

from ..geo.cities import City, CityDB, default_city_db
from ..geo.coords import GeoPoint, destination_point
from ..net.addresses import is_reserved, slash24_base_address
from ..net.asn import ASRegistry
from ..net.icmp import IcmpOutcome
from ..net.latency import DEFAULT_MODEL, LatencyModel
from .catalog import CatalogEntry, full_catalog
from .deployments import AnycastDeployment, Replica, UnicastHost, choose_replica_cities

# Per-target responsiveness behaviour, stored as a compact int8 code.
RESP_REPLY = 0
RESP_SILENT = 1
RESP_ADMIN_FILTERED = 2
RESP_HOST_PROHIBITED = 3
RESP_NET_PROHIBITED = 4

_RESP_TO_OUTCOME = {
    RESP_REPLY: IcmpOutcome.ECHO_REPLY,
    RESP_SILENT: IcmpOutcome.SILENT,
    RESP_ADMIN_FILTERED: IcmpOutcome.ADMIN_FILTERED,
    RESP_HOST_PROHIBITED: IcmpOutcome.HOST_PROHIBITED,
    RESP_NET_PROHIBITED: IcmpOutcome.NET_PROHIBITED,
}


def responsiveness_outcome(code: int) -> IcmpOutcome:
    """Decode a stored responsiveness code to the ICMP outcome it causes."""
    try:
        return _RESP_TO_OUTCOME[code]
    except KeyError:
        raise ValueError(f"unknown responsiveness code {code!r}") from None


@dataclass(frozen=True)
class InternetConfig:
    """Knobs of the synthetic Internet.

    ``n_unicast_slash24`` scales the unicast haystack; the anycast
    population always follows the catalog.  The responsiveness fractions
    reproduce the paper's funnel: <50% of hitlist targets reply, ~2.5%
    return greylistable errors, the rest are silent.
    """

    seed: int = 2015
    n_unicast_slash24: int = 20_000
    tail_deployments: int = 260
    reply_fraction: float = 0.45
    error_fraction: float = 0.025
    #: Split of the error mass across ICMP codes 13/10/9 (paper Sec. 3.3).
    error_split: Sequence[float] = (0.985, 0.013, 0.002)
    #: BGP-policy noise for catchments (0 = purely geographic routing).
    policy_sigma: float = 0.25
    #: Max scatter of a server from its city center, km.
    site_scatter_km: float = 15.0
    host_scatter_km: float = 40.0
    latency: LatencyModel = DEFAULT_MODEL
    #: Catchment substrate: ``"geo"`` (default) keeps the lognormal
    #: policy-penalty heuristic and is byte-identical to historic output;
    #: ``"bgp"`` routes every deployment over a synthetic AS-relationship
    #: graph with Gao-Rexford propagation (see :mod:`repro.bgp`).
    routing: str = "geo"
    #: Shape of the AS graph in BGP mode; ``None`` uses defaults keyed on
    #: :attr:`seed`.  Ignored (and rejected) in geo mode.
    bgp: Optional["BgpConfig"] = None

    def __post_init__(self) -> None:
        if self.n_unicast_slash24 < 0:
            raise ValueError("n_unicast_slash24 must be non-negative")
        if not 0.0 <= self.reply_fraction <= 1.0:
            raise ValueError("reply_fraction must be in [0, 1]")
        if not 0.0 <= self.error_fraction <= 1.0 - self.reply_fraction:
            raise ValueError("error_fraction incompatible with reply_fraction")
        if abs(sum(self.error_split) - 1.0) > 1e-9:
            raise ValueError("error_split must sum to 1")
        if self.routing not in ("geo", "bgp"):
            raise ValueError(f"routing must be 'geo' or 'bgp', got {self.routing!r}")
        if self.bgp is not None and self.routing != "bgp":
            raise ValueError("bgp config requires routing='bgp'")


#: Anycast prefixes are allocated from 1.0.0.0 upward; unicast hosts from
#: 24.0.0.0 upward.  Separate regions keep unicast prefixes stable when the
#: anycast catalog evolves between census epochs.
ANYCAST_REGION_START = 0x01000000
UNICAST_REGION_START = 0x18000000


def _routable_slash24_indices(start_ip: int = ANYCAST_REGION_START) -> Iterator[int]:
    """Yield /24 prefix indices skipping reserved address space."""
    index = start_ip >> 8
    while index < (1 << 24):
        if not is_reserved(slash24_base_address(index)):
            yield index
        index += 1


class SyntheticInternet:
    """The complete ground truth: deployments, hosts, and prefix ownership.

    Construction is deterministic in ``config.seed``.  All per-target state
    is held in parallel numpy arrays indexed by *target index* (the position
    of the /24 in :attr:`prefixes`), which is what the vectorized
    measurement simulator iterates over.
    """

    def __init__(
        self,
        config: Optional[InternetConfig] = None,
        catalog: Optional[Sequence[CatalogEntry]] = None,
        city_db: Optional[CityDB] = None,
    ) -> None:
        self.config = config or InternetConfig()
        self.city_db = city_db or default_city_db()
        if catalog is None:
            catalog = full_catalog(tail_count=self.config.tail_deployments, seed=self.config.seed)
        self._rng = np.random.default_rng(self.config.seed)
        self.registry = ASRegistry()
        self.deployments: List[AnycastDeployment] = []
        self.unicast_hosts: List[UnicastHost] = []

        self._build_deployments(catalog)
        self._build_unicast()
        self._freeze_arrays()

        # The BGP routing plane exists only in bgp mode and draws from its
        # own keyed generator — geo-mode construction consumes exactly the
        # streams it always has, keeping historic output byte-identical.
        self.bgp_plane: Optional["BgpRoutingPlane"] = None
        if self.config.routing == "bgp":
            from ..bgp.plane import BgpRoutingPlane

            self.bgp_plane = BgpRoutingPlane.for_internet(self)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _entry_rng(self, entry: CatalogEntry) -> np.random.Generator:
        """Per-deployment generator, keyed by (config seed, ASN).

        Decoupling deployments from each other (and from the unicast
        population) keeps the world stable under *evolution*: growing one
        AS's footprint for a later census epoch leaves every other entity —
        sites, scatter, catchments, prefixes — bit-identical, which is what
        makes longitudinal comparisons meaningful.
        """
        return np.random.default_rng(
            (self.config.seed * 1_000_003 + entry.asn * 2_654_435_761) % (2**63)
        )

    def _build_deployments(self, catalog: Sequence[CatalogEntry]) -> None:
        allocator = _routable_slash24_indices(start_ip=ANYCAST_REGION_START)
        cities = list(self.city_db.cities)
        for entry in catalog:
            self.registry.add(entry.autonomous_system)
            rng = self._entry_rng(entry)
            site_cities = choose_replica_cities(entry, cities, rng)
            replicas = [
                Replica(
                    city=c,
                    location=self._scatter(c.location, self.config.site_scatter_km, rng),
                )
                for c in site_cities
            ]
            prefixes = [next(allocator) for _ in range(entry.n_slash24)]
            alexa_prefixes = prefixes[: entry.alexa_ip24]
            deployment = AnycastDeployment(
                entry=entry,
                replicas=replicas,
                prefixes=prefixes,
                alexa_prefixes=alexa_prefixes,
                policy_sigma=self.config.policy_sigma,
                catchment_seed=int(rng.integers(0, 2**31)),
                local_scope_km=entry.local_scope_km,
            )
            self.deployments.append(deployment)
            for p in prefixes:
                self.registry.assign_prefix(p, entry.asn)

    def _build_unicast(self) -> None:
        # Unicast hosts draw from their own generator and their own address
        # region, independent of the anycast catalog.
        rng = np.random.default_rng(self.config.seed * 1_000_003 + 777)
        allocator = _routable_slash24_indices(start_ip=UNICAST_REGION_START)
        count = self.config.n_unicast_slash24
        host_cities = self.city_db.sample(rng, count)
        for city in host_cities:
            prefix = next(allocator)
            location = self._scatter(city.location, self.config.host_scatter_km, rng)
            self.unicast_hosts.append(UnicastHost(prefix=prefix, location=location, city=city))

    @staticmethod
    def _scatter(center: GeoPoint, max_km: float, rng: np.random.Generator) -> GeoPoint:
        bearing = float(rng.uniform(0.0, 360.0))
        distance = float(rng.uniform(0.0, max_km))
        return destination_point(center, bearing, distance)

    def _freeze_arrays(self) -> None:
        n_anycast = sum(len(d.prefixes) for d in self.deployments)
        n_total = n_anycast + len(self.unicast_hosts)
        self.prefixes = np.empty(n_total, dtype=np.int64)
        self.is_anycast = np.zeros(n_total, dtype=bool)
        self.deployment_index = np.full(n_total, -1, dtype=np.int32)
        self.lats = np.empty(n_total, dtype=np.float64)
        self.lons = np.empty(n_total, dtype=np.float64)
        self.responsiveness = np.empty(n_total, dtype=np.int8)

        pos = 0
        self._prefix_to_target: Dict[int, int] = {}
        for dep_idx, dep in enumerate(self.deployments):
            anchor = dep.replicas[0].location
            for prefix in dep.prefixes:
                self.prefixes[pos] = prefix
                self.is_anycast[pos] = True
                self.deployment_index[pos] = dep_idx
                # Placeholder coordinates; anycast targets are resolved per
                # vantage point through the deployment's catchment.
                self.lats[pos] = anchor.lat
                self.lons[pos] = anchor.lon
                self.responsiveness[pos] = RESP_REPLY
                self._prefix_to_target[prefix] = pos
                pos += 1
        for host in self.unicast_hosts:
            self.prefixes[pos] = host.prefix
            self.lats[pos] = host.location.lat
            self.lons[pos] = host.location.lon
            self.responsiveness[pos] = self._draw_responsiveness()
            self._prefix_to_target[host.prefix] = pos
            pos += 1

    def _draw_responsiveness(self) -> int:
        cfg = self.config
        u = self._rng.random()
        if u < cfg.reply_fraction:
            return RESP_REPLY
        if u < cfg.reply_fraction + cfg.error_fraction:
            v = self._rng.random()
            s13, s10, _ = cfg.error_split
            if v < s13:
                return RESP_ADMIN_FILTERED
            if v < s13 + s10:
                return RESP_HOST_PROHIBITED
            return RESP_NET_PROHIBITED
        return RESP_SILENT

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def n_targets(self) -> int:
        return len(self.prefixes)

    @property
    def n_anycast_slash24(self) -> int:
        return int(self.is_anycast.sum())

    @property
    def anycast_ases(self) -> int:
        return len(self.deployments)

    def target_index(self, prefix: int) -> int:
        """Target-array position of a /24 prefix index."""
        try:
            return self._prefix_to_target[prefix]
        except KeyError:
            raise KeyError(f"prefix index {prefix} not routed") from None

    def target_indices(self, prefixes) -> np.ndarray:
        """Target-array positions of many /24 prefix indices at once.

        Vectorized :meth:`target_index`: one ``searchsorted`` over the
        (sorted) target prefixes instead of a dict probe per element.
        Raises :class:`KeyError` naming the first unrouted prefixes.
        """
        query = np.asarray(list(prefixes) if not isinstance(prefixes, np.ndarray) else prefixes, dtype=np.int64)
        if query.size == 0:
            return np.empty(0, dtype=np.int64)
        order = np.argsort(self.prefixes, kind="stable")
        sorted_prefixes = self.prefixes[order]
        pos = np.searchsorted(sorted_prefixes, query)
        in_range = pos < len(sorted_prefixes)
        ok = in_range.copy()
        if in_range.any():
            safe = np.where(in_range, pos, 0)
            ok &= sorted_prefixes[safe] == query
        if not ok.all():
            missing = query[~ok][:5].tolist()
            raise KeyError(f"prefix indices not routed: {missing}")
        return order[pos].astype(np.int64)

    def deployment_of(self, prefix: int) -> Optional[AnycastDeployment]:
        """The deployment announcing a /24, or ``None`` for unicast."""
        pos = self.target_index(prefix)
        dep_idx = int(self.deployment_index[pos])
        return self.deployments[dep_idx] if dep_idx >= 0 else None

    def true_site_cities(self, prefix: int) -> List[City]:
        """Ground-truth replica cities of an anycast /24."""
        dep = self.deployment_of(prefix)
        if dep is None:
            raise ValueError(f"prefix index {prefix} is unicast")
        return dep.site_cities

    def outcome_for(self, prefix: int) -> IcmpOutcome:
        """Probe outcome class for a /24 (reply / silent / error family)."""
        return responsiveness_outcome(int(self.responsiveness[self.target_index(prefix)]))
