"""Ground-truth objects of the synthetic Internet.

The builder (:mod:`repro.internet.topology`) instantiates these from the
catalog: an :class:`AnycastDeployment` is an AS's set of replica *sites*
(each in a city) plus the /24 prefixes announced from all sites; a
:class:`UnicastHost` is an ordinary single-homed host.

The deployment also owns its **catchment**: the BGP-policy mapping from a
client location to the replica that serves it.  BGP picks routes by AS-path
length and local preference, which correlates with — but is not equal to —
geographic proximity.  We model this as a per-(client, site) multiplicative
policy penalty on distance: the serving site minimizes
``distance * penalty``, so clients usually reach a nearby replica yet
sometimes detour, exactly the behaviour that makes anycast geolocation
nontrivial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..geo.cities import City
from ..geo.coords import GeoPoint, pairwise_distances_km
from ..net.asn import AutonomousSystem
from .catalog import CatalogEntry


@dataclass(frozen=True)
class Replica:
    """One anycast replica site: a city plus the exact server location."""

    city: City
    location: GeoPoint

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"replica@{self.city}"


@dataclass
class AnycastDeployment:
    """An AS's anycast deployment: replicas + announced /24 prefixes."""

    entry: CatalogEntry
    replicas: List[Replica]
    #: /24 prefix indices announced by this deployment.
    prefixes: List[int]
    #: Which of ``prefixes`` host Alexa-100k websites (subset).
    alexa_prefixes: List[int] = field(default_factory=list)
    #: BGP-policy penalty strength: 0 = pure geographic routing;
    #: larger values make catchments increasingly non-geographic.
    policy_sigma: float = 0.25
    #: Seed for the deterministic catchment noise.
    catchment_seed: int = 0
    #: Regional announcement scope for secondary sites (km); ``None`` means
    #: every site is globally reachable.  With a scope, only the primary
    #: site (index 0) serves arbitrary clients — other sites serve only
    #: clients within the scope, modelling locally-advertised BGP prefixes.
    local_scope_km: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.replicas:
            raise ValueError(f"{self.entry.name}: deployment with no replicas")
        if not self.prefixes:
            raise ValueError(f"{self.entry.name}: deployment with no prefixes")
        unknown = set(self.alexa_prefixes) - set(self.prefixes)
        if unknown:
            raise ValueError(f"{self.entry.name}: alexa prefixes not announced: {unknown}")

    @property
    def autonomous_system(self) -> AutonomousSystem:
        return self.entry.autonomous_system

    @property
    def site_count(self) -> int:
        return len(self.replicas)

    @property
    def site_cities(self) -> List[City]:
        return [r.city for r in self.replicas]

    def catchment(self, client_lats: Sequence[float], client_lons: Sequence[float]) -> np.ndarray:
        """Serving-replica index for each client location.

        Deterministic in the deployment's ``catchment_seed``: BGP routing is
        stable on census timescales, so repeated censuses observe the same
        client → replica mapping (the paper's censuses are "quite consistent",
        Fig. 12).
        """
        lats = np.asarray(client_lats, dtype=np.float64)
        lons = np.asarray(client_lons, dtype=np.float64)
        rep_lats = [r.location.lat for r in self.replicas]
        rep_lons = [r.location.lon for r in self.replicas]
        distance = pairwise_distances_km(lats, lons, rep_lats, rep_lons)
        if self.policy_sigma > 0.0:
            rng = np.random.default_rng(self.catchment_seed)
            penalty = rng.lognormal(mean=0.0, sigma=self.policy_sigma, size=distance.shape)
        else:
            penalty = 1.0
        # Small floor keeps the argmin well-defined when a client sits on a site.
        cost = np.maximum(distance, 1.0) * penalty
        if self.local_scope_km is not None:
            # Secondary sites are only announced regionally: out-of-scope
            # clients can never route to them.  The primary (index 0) is
            # the globally-announced fallback.
            out_of_scope = distance[:, 1:] > self.local_scope_km
            cost[:, 1:] = np.where(out_of_scope, np.inf, cost[:, 1:])
        return np.argmin(cost, axis=1)

    def serving_replica(self, client: GeoPoint) -> Replica:
        """The replica that serves a single client location."""
        idx = self.catchment([client.lat], [client.lon])[0]
        return self.replicas[int(idx)]


@dataclass(frozen=True)
class UnicastHost:
    """A single-homed host: one location, one /24."""

    prefix: int
    location: GeoPoint
    city: Optional[City] = None


def alive_hosts(deployment: AnycastDeployment, prefix: int) -> List[int]:
    """Host octets (1–254) alive in one of the deployment's /24s.

    Deterministic in (ASN, prefix).  Density follows the catalog's
    ``ip_density``: Google-style sparse deployments expose a single
    address (8.8.8.8 being the only alive IP in its /24), CloudFlare-style
    dense ones expose nearly the whole subnet.  Any alive host of a /24 is
    equivalent for anycast-detection purposes (validated by the paper's
    EdgeCast spot check, Sec. 3.1).
    """
    if prefix not in deployment.prefixes:
        raise ValueError(f"prefix {prefix} not announced by {deployment.entry.name}")
    count = max(1, round(deployment.entry.ip_density * 254))
    rng = np.random.default_rng(deployment.entry.asn * 1_000_003 + prefix)
    octets = rng.choice(np.arange(1, 255), size=count, replace=False)
    return sorted(int(o) for o in octets)


def choose_replica_cities(
    entry: CatalogEntry,
    cities: Sequence[City],
    rng: np.random.Generator,
) -> List[City]:
    """Pick ``entry.n_sites`` distinct cities for a deployment's replicas.

    Site selection is population-weighted — infrastructure goes where the
    eyeballs are — but without replacement, since a deployment's sites are
    geographically distinct by definition.

    Implementation detail: a *full* weighted ordering of the gazetteer is
    drawn and the first ``n_sites`` cities are taken.  Because the draw
    consumes a fixed amount of randomness regardless of ``n_sites``, a
    deployment that grows between census epochs keeps its existing sites
    and only *adds* new ones — real expansions do not relocate PoPs.
    """
    n_sites = entry.n_sites
    if n_sites > len(cities):
        raise ValueError(
            f"{entry.name}: wants {n_sites} sites but only {len(cities)} cities exist"
        )
    pops = np.array([c.population for c in cities], dtype=np.float64)
    weights = pops / pops.sum()
    order = rng.choice(len(cities), size=len(cities), replace=False, p=weights)
    return [cities[i] for i in order[:n_sites]]
