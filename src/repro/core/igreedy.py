"""iGreedy: the full detect / enumerate / geolocate pipeline.

This is the paper's analysis technique [17] end to end (Fig. 3):

(a) map each (VP, RTT) sample to a disk;
(b) **detect**: any disjoint disk pair proves anycast;
(c) **enumerate**: greedy MIS over the disks lower-bounds replica count;
(d) **geolocate**: classify the replica in each selected disk to the most
    populous city it contains;
(e) **iterate**: collapse classified disks onto their city (radius 0) and
    re-run the MIS — collapsed disks overlap less, so more independent
    disks surface each round, until convergence.

Two enumeration modes are provided:

* **strict** (default): replicas are the MIS over the *original* disks.
  Pairwise-disjoint original disks provably contain distinct replicas, so
  the count is a true lower bound — the guarantee the paper leans on
  ("the analysis technique provides a lower bound on the number of
  replicas", Sec. 4.1).
* **iterative** (``strict_enumeration=False``): the paper's step (e).
  Collapsing a classified disk to its city shrinks it, letting additional
  disks join the independent set in later rounds.  This raises recall but
  is only sound when classification is accurate — a disk collapsed onto
  the *wrong* city no longer covers its true replica, and a second disk
  holding that same replica can then be double-counted.  The ablation
  benchmark quantifies exactly this trade-off.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..geo.cities import City, CityDB, default_city_db
from ..geo.disks import FIBER_SPEED_KM_PER_MS, Disk
from ..obs import current_metrics, current_tracer
from .detection import DetectionResult, detect
from .enumeration import greedy_mis
from .geolocation import GeolocatedReplica, classify_disk, classify_nearest
from .samples import LatencySample, min_rtt_samples, samples_to_disks


@dataclass
class IGreedyResult:
    """Full analysis output for one target."""

    detection: DetectionResult
    replicas: List[GeolocatedReplica] = field(default_factory=list)
    iterations: int = 0

    @property
    def is_anycast(self) -> bool:
        return self.detection.is_anycast

    @property
    def replica_count(self) -> int:
        """Number of enumerated replicas (a lower bound in strict mode)."""
        return len(self.replicas)

    @property
    def cities(self) -> List[City]:
        return [r.city for r in self.replicas]

    @property
    def city_names(self) -> List[str]:
        return sorted(f"{c.name},{c.country}" for c in self.cities)


@dataclass(frozen=True)
class IGreedyConfig:
    """Tunables of the analysis (defaults follow the paper's guarantees)."""

    speed_km_per_ms: float = FIBER_SPEED_KM_PER_MS
    population_exponent: float = 1.0
    #: Strict = provably-conservative enumeration (MIS on original disks);
    #: non-strict = the paper's collapse-and-iterate recall boost.
    strict_enumeration: bool = True
    max_iterations: int = 10
    #: Drop samples whose disks span more than this RTT (uninformative).
    max_rtt_ms: Optional[float] = 300.0
    #: Census analysis engine: ``"auto"`` (= the array-native fast path),
    #: ``"fast"``, or ``"reference"`` (the per-sample object pipeline,
    #: kept for differential testing).  The ``REPRO_ANALYSIS_ENGINE``
    #: environment variable overrides this at runtime; both paths produce
    #: equivalent results (enforced by the fast-path equivalence suite).
    engine: str = "auto"

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.speed_km_per_ms <= 0:
            raise ValueError("speed must be positive")
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {sorted(ENGINES)}")

    def resolved_engine(self) -> str:
        """The engine to run: ``"fast"`` or ``"reference"``.

        The ``REPRO_ANALYSIS_ENGINE`` environment variable wins over the
        config (it is a debugging/differential-testing knob); ``"auto"``
        resolves to the fast path.
        """
        choice = os.environ.get(ENGINE_ENV_VAR) or self.engine
        if choice not in ENGINES:
            raise ValueError(
                f"{ENGINE_ENV_VAR}={choice!r}: must be one of {sorted(ENGINES)}"
            )
        return "fast" if choice == "auto" else choice


#: Valid analysis-engine selectors.
ENGINES = frozenset({"auto", "fast", "reference"})

#: Environment knob overriding :attr:`IGreedyConfig.engine`.
ENGINE_ENV_VAR = "REPRO_ANALYSIS_ENGINE"


def _classify(disk: Disk, db: CityDB, cfg: IGreedyConfig) -> GeolocatedReplica:
    replica = classify_disk(disk, db, population_exponent=cfg.population_exponent)
    if replica is None:
        replica = classify_nearest(disk, db)
    return replica


def _dedup_by_city(replicas: Sequence[GeolocatedReplica]) -> List[GeolocatedReplica]:
    seen = set()
    out = []
    for replica in replicas:
        if replica.city.key in seen:
            continue
        seen.add(replica.city.key)
        out.append(replica)
    return out


def igreedy(
    samples: Sequence[LatencySample],
    city_db: Optional[CityDB] = None,
    config: Optional[IGreedyConfig] = None,
) -> IGreedyResult:
    """Run the complete iGreedy analysis on one target's samples.

    For unicast targets (no speed-of-light violation) the result carries no
    replicas; enumeration and geolocation run only on detected targets.
    """
    cfg = config or IGreedyConfig()
    db = city_db or default_city_db()
    metrics = current_metrics()

    with current_tracer().span("igreedy", samples=len(samples)) as span:
        deduped = min_rtt_samples(samples)
        detection = detect(deduped, cfg.speed_km_per_ms)
        result = IGreedyResult(detection=detection)
        if not detection.is_anycast:
            return result

        disks = samples_to_disks(
            deduped, cfg.speed_km_per_ms, max_rtt_ms=cfg.max_rtt_ms
        )
        if len(disks) < 2:
            # All informative samples were filtered; fall back to unfiltered.
            disks = samples_to_disks(deduped, cfg.speed_km_per_ms)
        metrics.histogram("disks_per_target").observe(len(disks))

        if cfg.strict_enumeration:
            selected = greedy_mis(disks)
            replicas = [_classify(disks[i], db, cfg) for i in selected]
            result.replicas = _dedup_by_city(replicas)
            result.iterations = 1
        else:
            # Paper-style iteration: collapse classified disks, re-run MIS.
            current: List[Disk] = list(disks)
            classified: List[Optional[GeolocatedReplica]] = [None] * len(disks)
            for iteration in range(1, cfg.max_iterations + 1):
                selected = greedy_mis(current)
                progressed = False
                for idx in selected:
                    if classified[idx] is not None:
                        continue
                    replica = _classify(current[idx], db, cfg)
                    classified[idx] = replica
                    current[idx] = current[idx].shrunk_to(replica.city.location)
                    progressed = True
                result.iterations = iteration
                if not progressed:
                    break

            final = greedy_mis(current)
            result.replicas = _dedup_by_city(
                [classified[i] for i in final if classified[i] is not None]
            )
        metrics.histogram("igreedy_iterations").observe(result.iterations)
        metrics.counter("replicas_enumerated").inc(result.replica_count)
        span.set("replicas", result.replica_count)
        return result
