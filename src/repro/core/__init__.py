"""The paper's analysis technique: detection, enumeration, geolocation."""

from .detection import DetectionResult, detect, detection_mask, radius_matrix
from .enumeration import (
    exact_mis,
    greedy_approximation_ratio,
    greedy_mis,
    is_independent_set,
)
from .geolocation import (
    GeolocatedReplica,
    classify_disk,
    classify_nearest,
    geolocation_error_km,
    match_replicas_to_truth,
)
from .igreedy import IGreedyConfig, IGreedyResult, igreedy
from .samples import LatencySample, min_rtt_samples, samples_to_disks

__all__ = [
    "DetectionResult",
    "detect",
    "detection_mask",
    "radius_matrix",
    "exact_mis",
    "greedy_approximation_ratio",
    "greedy_mis",
    "is_independent_set",
    "GeolocatedReplica",
    "classify_disk",
    "classify_nearest",
    "geolocation_error_km",
    "match_replicas_to_truth",
    "IGreedyConfig",
    "IGreedyResult",
    "igreedy",
    "LatencySample",
    "min_rtt_samples",
    "samples_to_disks",
]
