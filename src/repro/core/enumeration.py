"""Replica enumeration: Maximum Independent Set over disks (Fig. 3c).

Pairwise-disjoint disks each contain a *different* replica, so the size of
an independent set in the disk-overlap graph lower-bounds the replica
count.  MIS is NP-hard in general, but on disk graphs the greedy that
scans disks by increasing radius is a 5-approximation — and, as the paper
measured, "in practice yields results that are very close to the optimum
provided by a prohibitively more costly brute force solution".

Both solvers are provided:

* :func:`greedy_mis` — the production path, O(n^2);
* :func:`exact_mis` — branch-and-bound exact solver for small instances,
  used by tests and the MIS-quality benchmark.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..geo.disks import Disk, overlap_matrix
from ..obs import current_metrics, current_tracer


def greedy_mis(
    disks: Optional[Sequence[Disk]] = None,
    overlaps: Optional[np.ndarray] = None,
    ordering: str = "radius",
    radii_km: Optional[np.ndarray] = None,
) -> List[int]:
    """Greedy maximum-independent-set on disks, smallest radius first.

    Returns indices of the selected (pairwise-disjoint) disks, in selection
    order.  Passing a precomputed ``overlaps`` matrix skips the geometry.

    The array-native census fast path calls this without ``Disk`` objects
    at all: pass ``overlaps`` (e.g. a slice of the cached VP gap matrix
    plus a radii outer sum) together with ``radii_km`` and leave ``disks``
    as ``None`` — the selection is identical because the greedy only ever
    consults radii and the overlap matrix.

    Ordering by increasing radius (the default) is what makes the
    approximation bound hold: a small disk can conflict with at most five
    mutually-disjoint disks of larger radius.  ``ordering="arbitrary"``
    scans disks in input order instead — no approximation guarantee; kept
    for the MIS-ordering ablation.
    """
    if disks is None:
        if overlaps is None:
            raise ValueError("greedy_mis needs disks or a precomputed overlaps")
        n = overlaps.shape[0]
    else:
        n = len(disks)
    if n == 0:
        return []
    with current_tracer().span("enumeration", disks=n):
        if overlaps is None:
            overlaps = overlap_matrix(disks)
        elif overlaps.shape != (n, n):
            raise ValueError("overlap matrix shape mismatch")
        if ordering == "radius":
            if radii_km is not None:
                if len(radii_km) != n:
                    raise ValueError("radii_km length mismatch")
                order = sorted(range(n), key=lambda i: (radii_km[i], i))
            elif disks is None:
                raise ValueError("radius ordering needs disks or radii_km")
            else:
                order = sorted(range(n), key=lambda i: (disks[i].radius_km, i))
        elif ordering == "arbitrary":
            order = list(range(n))
        else:
            raise ValueError(f"unknown ordering {ordering!r}")
        excluded = np.zeros(n, dtype=bool)
        selected: List[int] = []
        for i in order:
            if excluded[i]:
                continue
            selected.append(i)
            excluded |= overlaps[i]
    current_metrics().histogram("mis_size").observe(len(selected))
    return selected


def is_independent_set(disks: Sequence[Disk], indices: Sequence[int]) -> bool:
    """Check that the given disks are pairwise disjoint."""
    for a in range(len(indices)):
        for b in range(a + 1, len(indices)):
            if disks[indices[a]].overlaps(disks[indices[b]]):
                return False
    return True


def exact_mis(disks: Sequence[Disk], max_disks: int = 40) -> List[int]:
    """Exact maximum independent set by branch and bound.

    Exponential in the worst case — guarded by ``max_disks``.  Used to
    quantify how close the greedy gets (the paper reports near-optimality
    at ~10,000x lower cost).
    """
    n = len(disks)
    if n == 0:
        return []
    if n > max_disks:
        raise ValueError(f"exact MIS limited to {max_disks} disks, got {n}")
    overlaps = overlap_matrix(disks)
    neighbours = [frozenset(np.nonzero(overlaps[i])[0].tolist()) - {i} for i in range(n)]

    best: List[int] = []

    def search(candidates: List[int], chosen: List[int]) -> None:
        nonlocal best
        if len(chosen) + len(candidates) <= len(best):
            return  # bound: cannot beat the incumbent
        if not candidates:
            if len(chosen) > len(best):
                best = list(chosen)
            return
        head, rest = candidates[0], candidates[1:]
        # Branch 1: take head, drop its neighbours.
        search([c for c in rest if c not in neighbours[head]], chosen + [head])
        # Branch 2: skip head.
        search(rest, chosen)

    # Order candidates by degree (fewest conflicts first) to tighten bounds.
    initial = sorted(range(n), key=lambda i: len(neighbours[i]))
    search(initial, [])
    return sorted(best)


def greedy_approximation_ratio(disks: Sequence[Disk]) -> float:
    """|exact| / |greedy| for one instance (1.0 means greedy was optimal)."""
    greedy = greedy_mis(disks)
    exact = exact_mis(disks)
    if not exact:
        return 1.0
    return len(exact) / max(len(greedy), 1)
