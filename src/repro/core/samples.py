"""Latency samples — the input of the analysis technique.

The technique [17] consumes, per target, a set of (vantage point, RTT)
pairs; everything else (protocol, platform, hitlist) is upstream concern.
Step (a) of the paper's Fig. 3 maps each sample to a geodesic disk that is
guaranteed to contain the replica which answered the probe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..geo.coords import GeoPoint
from ..geo.disks import FIBER_SPEED_KM_PER_MS, Disk, disk_from_sample


@dataclass(frozen=True)
class LatencySample:
    """One RTT measurement from a vantage point toward the target."""

    vp_name: str
    vp_location: GeoPoint
    rtt_ms: float

    def __post_init__(self) -> None:
        if self.rtt_ms < 0:
            raise ValueError(f"negative RTT from {self.vp_name}: {self.rtt_ms}")

    def to_disk(self, speed_km_per_ms: float = FIBER_SPEED_KM_PER_MS) -> Disk:
        """The disk certain to contain the replica that answered."""
        return disk_from_sample(self.vp_location, self.rtt_ms, speed_km_per_ms)


def min_rtt_samples(samples: Sequence[LatencySample]) -> List[LatencySample]:
    """Keep the minimum RTT per vantage point.

    Multiple probes (or multiple censuses) toward the same target from the
    same VP are combined by minimum — the estimate closest to the pure
    propagation delay, hence the tightest valid disk (Sec. 4.2).
    """
    best = {}
    for sample in samples:
        current = best.get(sample.vp_name)
        if current is None or sample.rtt_ms < current.rtt_ms:
            best[sample.vp_name] = sample
    return sorted(best.values(), key=lambda s: (s.rtt_ms, s.vp_name))


def samples_to_disks(
    samples: Sequence[LatencySample],
    speed_km_per_ms: float = FIBER_SPEED_KM_PER_MS,
    max_rtt_ms: Optional[float] = None,
) -> List[Disk]:
    """Map samples to disks, optionally discarding uninformative ones.

    ``max_rtt_ms`` drops samples whose disk would span a large share of the
    planet (e.g. satellite or badly congested paths); they cannot create a
    speed-of-light violation and only slow the MIS down.
    """
    disks = []
    for sample in samples:
        if max_rtt_ms is not None and sample.rtt_ms > max_rtt_ms:
            continue
        disks.append(sample.to_disk(speed_km_per_ms))
    return disks
