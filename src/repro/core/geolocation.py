"""Replica geolocation: population-biased classification (Fig. 3d).

Each disk selected by the MIS contains exactly one (distinct) replica.
Within the disk, the replica is classified to a city by maximum likelihood
with a prior proportional to city population — the paper found the
population prior alone discriminates correctly in ~75% of cases, so the
classifier "boils down into picking the largest city in that disk".

This deliberately introduces the paper's one documented failure mode:
OpenDNS's Ashburn, VA replica is classified as Philadelphia, because
Philadelphia is ~33x more populous and both lie in the same disk.  The
``population_exponent`` knob exposes the bias strength for the ablation
benchmark (0 = ignore population, pick the city nearest the disk center).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..geo.cities import City, CityDB
from ..geo.coords import GeoPoint
from ..geo.disks import Disk
from ..obs import current_tracer


@dataclass(frozen=True)
class GeolocatedReplica:
    """A replica pinned to a city, with the disk that witnessed it."""

    city: City
    disk: Disk
    #: Classification confidence: the chosen city's share of the candidate
    #: population mass inside the disk (1.0 when it was the only option).
    confidence: float

    @property
    def location(self) -> GeoPoint:
        return self.city.location


def classify_disk(
    disk: Disk,
    city_db: CityDB,
    population_exponent: float = 1.0,
) -> Optional[GeolocatedReplica]:
    """Classify the replica inside a disk to a city.

    Returns ``None`` when no known city falls inside the disk (possible for
    tiny disks centered in unpopulated areas); callers fall back to the
    nearest city via :func:`classify_nearest`.

    ``population_exponent`` raises the population prior to a power:
    1.0 is the paper's estimator, 0.0 makes all cities equally likely
    (ties broken toward the disk center).
    """
    if population_exponent < 0:
        raise ValueError("population_exponent must be non-negative")
    with current_tracer().span("geolocation"):
        inside = city_db.city_indices_in_disk(disk)
        if inside.size == 0:
            return None
        if population_exponent == 0.0:
            # Uniform prior: the maximum-likelihood choice degenerates to the
            # city closest to the disk center.
            best = min(
                (city_db.city_at(i) for i in inside),
                key=lambda c: disk.center.distance_km(c.location),
            )
            return GeolocatedReplica(
                city=best, disk=disk, confidence=1.0 / inside.size
            )
        # Weight vector sliced from the cached population array — no
        # per-city Python objects or scalar exponentiation in the loop.
        weights = city_db.population_array()[inside] ** population_exponent
        total = float(weights.sum())
        idx = int(np.argmax(weights))
        return GeolocatedReplica(
            city=city_db.city_at(int(inside[idx])),
            disk=disk,
            confidence=float(weights[idx]) / total,
        )


def classify_nearest(disk: Disk, city_db: CityDB) -> GeolocatedReplica:
    """Fallback: pin the replica to the city nearest the disk center."""
    with current_tracer().span("geolocation", fallback=True):
        city = city_db.nearest(disk.center)
        return GeolocatedReplica(city=city, disk=disk, confidence=0.0)


def classify_disks(
    disks: Sequence[Disk],
    city_db: CityDB,
    population_exponent: float = 1.0,
    center_distances: Optional[np.ndarray] = None,
) -> List[GeolocatedReplica]:
    """Batched classification of many disks in one vectorized call.

    Equivalent to ``classify_disk`` per disk with the ``classify_nearest``
    fallback applied, but all city-to-center distances are computed in a
    single haversine over the gazetteer's cached radian arrays (or taken
    from a precomputed ``center_distances`` matrix).  See
    :meth:`repro.geo.cities.CityDB.classify_disks`.
    """
    with current_tracer().span("geolocation", batched=len(disks)):
        return city_db.classify_disks(
            disks,
            population_exponent=population_exponent,
            center_distances=center_distances,
        )


def geolocation_error_km(predicted: City, truth: City) -> float:
    """Distance between predicted and true replica city (0 when exact)."""
    return predicted.location.distance_km(truth.location)


def match_replicas_to_truth(
    predicted: Sequence[City],
    truth: Sequence[City],
) -> dict:
    """Greedy one-to-one matching of predicted cities to true cities.

    Returns a dict with ``true_positives`` (exact city matches),
    ``errors_km`` (distance of each mispredicted replica to its closest
    unmatched true city), ``recall`` (matched fraction of truth) and
    ``precision`` (exact-match fraction of the predictions).  ``"tpr"``
    is kept as a deprecated alias of ``"precision"`` — the quantity was
    historically mislabeled; it divides by the *predicted* count, which
    is precision, not a true-positive rate.  Used by the validation
    pipeline (paper Fig. 7).
    """
    remaining = list(truth)
    tp = 0
    errors = []
    for city in predicted:
        if city in remaining:
            remaining.remove(city)
            tp += 1
            continue
        if remaining:
            nearest = min(remaining, key=lambda t: geolocation_error_km(city, t))
            errors.append(geolocation_error_km(city, nearest))
            remaining.remove(nearest)
    precision = tp / len(predicted) if predicted else 0.0
    return {
        "true_positives": tp,
        "errors_km": errors,
        "recall": (len(truth) - len(remaining)) / len(truth) if truth else 1.0,
        "precision": precision,
        # Deprecated alias: this ratio was historically (and wrongly)
        # published under "tpr"; keep it until consumers migrate.
        "tpr": precision,
    }
