"""Anycast detection via speed-of-light violations (paper Fig. 3b).

A single IP answered two vantage points with RTTs so small that the disks
bounding the responder's position do not intersect: no single machine can
be in both disks, therefore at least two replicas share the address — the
target is anycast.  The test has no false positives (RTTs only ever
*inflate* above propagation delay, so a unicast host always lies inside
every disk) and is conservative: overlap does not prove unicast.

Two interfaces are provided:

* :func:`detect` — object-level, for a handful of samples;
* :func:`detection_mask` — vectorized over a whole census: given the
  VP-to-VP distance matrix and a per-target radius matrix, flag every
  anycast target in one pass (this is the O(10^6)-target hot path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..geo.disks import FIBER_SPEED_KM_PER_MS, any_disjoint_pair
from ..obs import current_metrics, current_tracer
from .samples import LatencySample, min_rtt_samples, samples_to_disks


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of the anycast test for one target."""

    is_anycast: bool
    #: Indices (into the deduplicated sample list) of one witness pair of
    #: disjoint disks, when anycast.
    witness: Optional[Tuple[int, int]] = None
    #: Number of usable samples the decision was based on.
    sample_count: int = 0


def detect(
    samples: Sequence[LatencySample],
    speed_km_per_ms: float = FIBER_SPEED_KM_PER_MS,
) -> DetectionResult:
    """Run the speed-of-light-violation test on one target's samples."""
    with current_tracer().span("detection", samples=len(samples)):
        deduped = min_rtt_samples(samples)
        disks = samples_to_disks(deduped, speed_km_per_ms)
        if len(disks) < 2:
            return DetectionResult(is_anycast=False, sample_count=len(disks))
        pair = any_disjoint_pair(disks)
        return DetectionResult(
            is_anycast=pair is not None,
            witness=pair,
            sample_count=len(disks),
        )


def detection_mask(
    vp_distances_km: np.ndarray,
    radii_km: np.ndarray,
    chunk: int = 256,
) -> np.ndarray:
    """Vectorized anycast detection over many targets.

    Parameters
    ----------
    vp_distances_km:
        (n_vps, n_vps) great-circle distances between vantage points.
    radii_km:
        (n_targets, n_vps) disk radii; NaN marks a missing sample (the VP
        got no reply from that target).
    chunk:
        Targets processed per vectorized block (memory/speed trade-off).

    Returns
    -------
    Boolean array of shape (n_targets,): True where some pair of disks is
    disjoint, i.e. ``distance(v_i, v_j) > r_i + r_j``.
    """
    radii_km = np.asarray(radii_km, dtype=np.float64)
    n_targets, n_vps = radii_km.shape
    if vp_distances_km.shape != (n_vps, n_vps):
        raise ValueError("vp distance matrix shape mismatch")
    with current_tracer().span("detection", targets=n_targets, vectorized=True):
        out = np.zeros(n_targets, dtype=bool)
        # Missing samples must never witness a violation: substitute +inf
        # radius so the pair sum is infinite and the test fails.
        safe = np.where(np.isnan(radii_km), np.inf, radii_km)
        for start in range(0, n_targets, chunk):
            block = safe[start : start + chunk]  # (b, n_vps)
            sums = block[:, :, None] + block[:, None, :]  # (b, n, n)
            violations = vp_distances_km[None, :, :] > sums
            out[start : start + chunk] = violations.any(axis=(1, 2))
    metrics = current_metrics()
    if metrics.enabled:
        metrics.counter("detection_targets_tested").inc(n_targets)
        metrics.counter("detection_targets_flagged").inc(int(out.sum()))
    return out


def radius_matrix(
    rtt_ms: np.ndarray,
    speed_km_per_ms: float = FIBER_SPEED_KM_PER_MS,
) -> np.ndarray:
    """Convert an RTT matrix (NaN = missing) to disk radii."""
    return np.asarray(rtt_ms, dtype=np.float64) / 2.0 * speed_km_per_ms
