"""Command-line interface: ``repro-anycast``.

Runs scaled-down census studies from the terminal::

    repro-anycast glance --unicast 3000 --vps 150
    repro-anycast top --k 20
    repro-anycast validate "CLOUDFLARENET,US"
    repro-anycast portscan
    repro-anycast funnel
    repro-anycast trace                    # span tree of the whole pipeline
    repro-anycast stats                    # pipeline metrics table
    repro-anycast --manifest run.json glance   # + JSON run manifest
    repro-anycast service catch-up --archive runs/ --through 6
    repro-anycast service fsck --archive runs/
    repro-anycast service timeline --archive runs/   # regression sentinel
    repro-anycast obs export --archive runs/ --epoch 3 --prometheus m.prom

All subcommands share the scale/seed options; results are printed as plain
text tables.
"""

from __future__ import annotations

import argparse
import os
import sys
import traceback
from typing import List, Optional

from .census.report import format_table
from .internet.topology import InternetConfig
from .measurement.campaign import CensusAborted, CensusInterrupted
from .measurement.faults import (
    DistortionKind,
    FaultPlan,
    PoisonKind,
    PoisonPlan,
    RetryPolicy,
    VpDistortionPlan,
)
from .obs import render_trace
from .resilience import ResiliencePolicy, StageFailed
from .workflow import CensusStudy, StudyConfig

#: Exit codes (documented in docs/API_GUIDE.md).  0 = success; 2 is
#: argparse's usage-error code; supervised aborts and unexpected crashes
#: get distinct codes so scripts can tell "the campaign gave up per
#: policy" from "the tool itself broke".  130 (the shell's SIGINT
#: convention) marks a clean operator drain: the checkpoint journal and
#: manifest are valid and the run is resumable.
EXIT_OK = 0
EXIT_USAGE = 2
EXIT_ABORTED = 3
EXIT_UNEXPECTED = 4
#: ``service fsck`` found problems.  With repair (the default) they were
#: fixed and the archive is healthy again; with ``--dry-run`` they are
#: merely reported.  Distinct from 0 so cron jobs can alert on rot.
EXIT_REPAIRED = 5
#: ``service timeline`` flagged at least one regression (a per-epoch
#: metric sitting more than k robust deviations above its rolling
#: median).  Distinct from 0 so CI and cron can alert on drift.
EXIT_REGRESSION = 6
#: ``service alarms`` found at least one alarming routing verdict
#: (hijack or route leak) recorded in the archive's manifests.
#: Distinct from 0 so cron can page on routing incidents.
EXIT_ALARMS = 7
EXIT_INTERRUPTED = 130

_POLICIES = {
    "off": None,
    "on": ResiliencePolicy.permissive,
    "strict": ResiliencePolicy.strict,
}


def _parse_workers(value: Optional[str]) -> Optional[int]:
    """``--workers`` value: a non-negative integer or ``auto``."""
    if value is None:
        return None
    if value == "auto":
        return max(os.cpu_count() or 1, 1)
    try:
        workers = int(value)
    except ValueError:
        raise ValueError(f"--workers must be an integer or 'auto', got {value!r}")
    if workers < 0:
        raise ValueError("--workers must be >= 0")
    return workers


def _distortion_from_args(args: argparse.Namespace) -> Optional[VpDistortionPlan]:
    """The ``--vp-distortion*`` flags as a plan (``None`` when off)."""
    if args.vp_distortion <= 0.0:
        return None
    if args.vp_distortion_kind is not None:
        return VpDistortionPlan.single(
            args.vp_distortion_kind,
            fraction=args.vp_distortion,
            seed=args.vp_distortion_seed,
        )
    return VpDistortionPlan(
        fraction=args.vp_distortion, seed=args.vp_distortion_seed
    )


def _build_study(args: argparse.Namespace) -> CensusStudy:
    fault_plan = FaultPlan.uniform(
        args.fault_rate, seed=args.fault_seed, flap_prob=args.flap_prob
    )
    retry = RetryPolicy(timeout_hours=args.scan_timeout)
    policy_factory = _POLICIES[args.resilience_policy]
    poison = None
    if args.poison is not None:
        poison = PoisonPlan.single(
            args.poison, fraction=args.poison_fraction, seed=args.poison_seed
        )
    # A manifest is only worth writing with observability on; the trace
    # and stats subcommands obviously need their respective layer too.
    want_manifest = args.manifest is not None
    return CensusStudy(
        StudyConfig(
            internet=InternetConfig(
                seed=args.seed,
                n_unicast_slash24=args.unicast,
                tail_deployments=args.tail,
            ),
            n_vantage_points=args.vps,
            n_censuses=args.censuses,
            fault_plan=fault_plan,
            retry=retry,
            min_vp_quorum=args.quorum,
            checkpoint_dir=args.checkpoint_dir,
            workers=_parse_workers(args.workers),
            analysis_workers=_parse_workers(args.analysis_workers),
            deadline=args.deadline,
            trace=want_manifest or args.command == "trace",
            metrics=want_manifest or args.command in ("trace", "stats"),
            manifest_path=args.manifest,
            resilience=policy_factory() if policy_factory is not None else None,
            poison=poison,
            vp_distortion=_distortion_from_args(args),
            trust=args.trust,
            matrix_store=args.matrix_store,
        )
    )


def _cmd_glance(study: CensusStudy, args: argparse.Namespace) -> int:
    rows = [
        (r.label, r.ip24, r.ases, r.cities, r.countries, r.replicas)
        for r in study.glance_table()
    ]
    print(format_table(rows, ["", "IP/24", "ASes", "Cities", "CC", "Replicas"]))
    return 0


def _cmd_top(study: CensusStudy, args: argparse.Namespace) -> int:
    char = study.characterization
    # A confidence column appears only when some verdict is non-full, so
    # clean runs print exactly what they always printed.
    counts = char.confidence_counts()
    marked = any(counts.get(v, 0) for v in ("degraded", "insufficient"))
    rows = []
    for fp in char.top_ases(k=args.k):
        row = (
            fp.autonomous_system.whois_label,
            fp.autonomous_system.category.value,
            fp.n_ip24,
            f"{fp.mean_replicas:.1f}",
            f"{fp.std_replicas:.1f}",
            len(fp.cities),
        )
        if marked:
            row += (char.footprint_confidence(fp),)
        rows.append(row)
    headers = ["AS", "category", "IP/24", "replicas", "std", "cities"]
    if marked:
        headers.append("confidence")
    print(format_table(rows, headers))
    return 0


def _cmd_validate(study: CensusStudy, args: argparse.Namespace) -> int:
    report = study.validate(args.deployment)
    print(f"AS:              {report.as_name}")
    print(f"GT cities:       {len(report.gt_cities)}")
    print(f"PAI cities:      {len(report.pai_cities)}")
    print(f"GT/PAI:          {report.gt_pai:.2f}")
    # The paper's Fig. 7 labels city-level precision "TPR"; keep the
    # historical label alongside the correct name.
    print(f"precision (TPR): {report.precision_mean:.2f} +- {report.precision_std:.2f}")
    print(f"median error km: {report.median_error_km:.0f}")
    return 0


def _cmd_portscan(study: CensusStudy, args: argparse.Namespace) -> int:
    scan = study.portscan
    print(f"hosts scanned:      {scan.n_hosts}")
    print(f"responding ASes:    {scan.n_ases}")
    print(f"total open ports:   {scan.total_open_ports}")
    print(f"well-known services: {len(scan.well_known_services())}")
    print(f"SSL services:       {len(scan.ssl_services())}")
    print(f"software seen:      {len(scan.software_seen())}")
    rows = [(p, n) for p, n in scan.top_ports_by_as(k=10)]
    print(format_table(rows, ["port", "#ASes"]))
    return 0


def _cmd_map(study: CensusStudy, args: argparse.Namespace) -> int:
    from .census.geomap import deployment_map, replica_density_map

    if args.deployment:
        dep = study.deployment(args.deployment)
        observed = []
        for prefix in dep.prefixes:
            result = study.analysis.results.get(prefix)
            if result is not None:
                observed.extend(result.cities)
        print(f"{args.deployment}: O = observed replica, x = unobserved site")
        print(deployment_map(observed, truth_cities=dep.site_cities))
    else:
        grid = replica_density_map(study.analysis)
        print(f"Anycast replica density ({grid.total} replicas):")
        print(grid.render())
    return 0


def _cmd_trace(study: CensusStudy, args: argparse.Namespace) -> int:
    # Force the full pipeline, then render what the tracer saw.
    study.characterization
    print(render_trace(study.tracer))
    return 0


def _cmd_stats(study: CensusStudy, args: argparse.Namespace) -> int:
    study.characterization
    snap = study.metrics.snapshot()
    rows = [(name, "counter", value) for name, value in snap["counters"].items()]
    rows += [(name, "gauge", value) for name, value in snap["gauges"].items()]
    rows += [
        (
            name,
            "histogram",
            f"n={h['count']} mean={h['mean']:.2f} max={h['max']:.0f}",
        )
        for name, h in snap["histograms"].items()
    ]
    print(format_table(rows, ["metric", "kind", "value"]))
    return 0


def _cmd_health(study: CensusStudy, args: argparse.Namespace) -> int:
    study.censuses  # health_reports is lazy: materialize the campaign first
    if study.config.trust:
        # The trust stage runs on the combined matrix; its verdicts are
        # absorbed into the per-census health reports printed below.
        study.matrix
    for report in study.health_reports:
        for line in report.summary_lines():
            print(line)
    tracker = study.campaign.health
    quarantined = sorted(tracker.quarantined_names())
    print(f"quarantined VPs: {len(quarantined)}")
    for name in quarantined:
        print(f"  {name}")
    if study.trust_report is not None:
        for line in study.trust_report.summary_lines():
            print(line)
    if study.supervisor is not None:
        # With the resilience layer on, surface the data quarantine and
        # the per-stage degradation picture too.  Force the analysis so
        # the report covers the whole pipeline, not just measurement.
        study.analysis
        for line in study.quarantine.summary_lines():
            print(line)
        report = study.degradation_report
        if report is not None:
            for line in report.summary_lines():
                print(line)
    return 0


def _service_from_args(args: argparse.Namespace):
    from .service import CensusService, ServiceConfig

    policy_factory = _POLICIES[args.resilience_policy]
    return CensusService(
        ServiceConfig(
            archive_root=args.archive,
            internet_seed=args.seed,
            n_unicast=args.unicast,
            tail_deployments=args.tail,
            n_vps=args.vps,
            availability=args.availability,
            noise=args.noise,
            incremental=not args.no_incremental,
            churn_threshold=args.churn_threshold,
            resilience=policy_factory() if policy_factory is not None else None,
            telemetry=getattr(args, "telemetry", False),
            roster_churn_prob=args.roster_churn,
            roster_seed=args.roster_seed,
            baseline_depth=args.baseline_depth,
            trust=args.trust,
            vp_distortion=_distortion_from_args(args),
            routing=getattr(args, "routing", "geo"),
            alarms=getattr(args, "alarms", False),
        )
    )


def _cmd_service(study: CensusStudy, args: argparse.Namespace) -> int:
    # The longitudinal service owns its archive and builds its own
    # pipeline per epoch; the shared study object is unused (and, being
    # lazy, was never materialized).
    service = _service_from_args(args)
    if args.verb == "fsck":
        report = service.fsck(repair=not args.dry_run)
        for line in report.summary_lines():
            print(line)
        return EXIT_OK if report.clean else EXIT_REPAIRED
    if args.verb == "run":
        outcome = service.run_epoch(args.epoch)
        for line in outcome.summary_lines():
            print(line)
        return EXIT_OK
    if args.verb == "catch-up":
        through = args.through if args.through is not None else args.epoch
        report, outcomes = service.catch_up(through)
        if not report.clean:
            for line in report.summary_lines():
                print(line)
        for outcome in outcomes:
            for line in outcome.summary_lines():
                print(line)
        return EXIT_OK
    if args.verb == "timeline":
        from .obs import render_timeline

        timeline, regressions = service.timeline(k=args.mad_k)
        for line in render_timeline(timeline, regressions):
            print(line)
        return EXIT_REGRESSION if regressions else EXIT_OK
    if args.verb == "alarms":
        alarm_rows = service.alarm_history()
        if not alarm_rows:
            print("no routing alarms on record")
            return EXIT_OK
        rows = [
            (
                row["epoch"],
                row["prefix"],
                row["verdict"],
                f"{row['confidence']:.2f}",
                row["detail"],
            )
            for row in alarm_rows
        ]
        print(format_table(rows, ["day", "prefix", "verdict", "conf", "detail"]))
        return EXIT_ALARMS
    # history
    rows = [
        (
            row["epoch"],
            row["mode"],
            f"{row['churn_fraction']:.3f}",
            row["n_targets"],
            row["n_anycast"],
            row["total_replicas"],
        )
        for row in service.history()
    ]
    print(format_table(rows, ["day", "mode", "churn", "targets", "anycast", "replicas"]))
    return EXIT_OK


def _cmd_obs(study: CensusStudy, args: argparse.Namespace) -> int:
    """Export one archived epoch's telemetry to standard formats."""
    import json
    import pathlib

    from .obs import (
        chrome_trace_problems,
        prometheus_problems,
        to_chrome_trace,
        to_prometheus,
    )
    from .service.archive import CensusArchive

    archive = CensusArchive(args.archive)
    telemetry = archive.read_telemetry(args.epoch)
    if telemetry is None:
        print(
            f"error: epoch {args.epoch} has no telemetry sidecar "
            f"(run the service with --telemetry)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    prometheus_text = to_prometheus(telemetry.get("metrics", {}))
    chrome_doc = to_chrome_trace(telemetry.get("trace") or [])
    problems = [
        f"prometheus: {p}" for p in prometheus_problems(prometheus_text)
    ] + [f"chrome-trace: {p}" for p in chrome_trace_problems(chrome_doc)]
    if problems:
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        return EXIT_UNEXPECTED
    wrote = False
    if args.prometheus is not None:
        pathlib.Path(args.prometheus).write_text(prometheus_text, encoding="utf-8")
        print(f"prometheus metrics written: {args.prometheus}")
        wrote = True
    if args.chrome_trace is not None:
        pathlib.Path(args.chrome_trace).write_text(
            json.dumps(chrome_doc, indent=2) + "\n", encoding="utf-8"
        )
        print(f"chrome trace written: {args.chrome_trace}")
        wrote = True
    if not wrote:
        print(prometheus_text, end="")
    return EXIT_OK


def _cmd_funnel(study: CensusStudy, args: argparse.Namespace) -> int:
    for i, funnel in enumerate(study.funnels(), start=1):
        print(f"census {i}:")
        for stage, count in funnel.rows():
            print(f"  {stage:30s} {count}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-anycast",
        description="IPv4 anycast census reproduction (CoNEXT 2015).",
    )
    parser.add_argument("--seed", type=int, default=2015, help="master RNG seed")
    parser.add_argument("--unicast", type=int, default=3000,
                        help="size of the unicast /24 haystack")
    parser.add_argument("--tail", type=int, default=80,
                        help="number of small tail deployments")
    parser.add_argument("--vps", type=int, default=150,
                        help="number of PlanetLab-like vantage points")
    parser.add_argument("--censuses", type=int, default=2,
                        help="number of censuses to combine")
    parser.add_argument("--fault-rate", type=float, default=0.0,
                        help="per-VP node-fault rate, split over "
                             "crash/hang/corrupt (default: no faults)")
    parser.add_argument("--flap-prob", type=float, default=0.0,
                        help="per-census probability a VP disappears entirely")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed of the fault injector")
    parser.add_argument("--quorum", type=int, default=1,
                        help="minimum usable VPs per census before aborting")
    parser.add_argument("--scan-timeout", type=float, default=None,
                        help="per-VP scan timeout in hours (default: none)")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="journal directory for census checkpoint/resume")
    parser.add_argument("--workers", default=None, metavar="N|auto",
                        help="run census scans on a supervised worker pool "
                             "of N forked processes ('auto' = CPU count; 0 "
                             "= sharded engine in-process; default: classic "
                             "serial loop).  Output bytes are identical in "
                             "every mode")
    parser.add_argument("--analysis-workers", default=None, metavar="N|auto",
                        help="chunk the analysis of detected targets over N "
                             "forked worker processes ('auto' = CPU count; "
                             "fast engine only; default: serial).  Results "
                             "are identical for every worker count")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget per census scan phase; on "
                             "expiry unfinished VPs are failed into the "
                             "quorum check instead of hanging the run")
    parser.add_argument("--manifest", default=None, metavar="PATH",
                        help="write a JSON run manifest (config, trace, "
                             "metrics, health) after the command")
    parser.add_argument("--resilience-policy", choices=sorted(_POLICIES),
                        default="off",
                        help="stage supervision + data quarantine: 'on' "
                             "degrades-and-continues on corrupt input, "
                             "'strict' validates but fails instead of "
                             "degrading (default: off)")
    parser.add_argument("--poison", choices=[k.value for k in PoisonKind],
                        default=None, metavar="MODE",
                        help="chaos harness: poison data between pipeline "
                             "stages (testing aid; combine with "
                             "--resilience-policy to exercise degraded mode)")
    parser.add_argument("--poison-fraction", type=float, default=0.25,
                        help="fraction of items the poison mode hits")
    parser.add_argument("--poison-seed", type=int, default=0,
                        help="seed of the data poisoner")
    parser.add_argument("--vp-distortion", type=float, default=0.0,
                        metavar="FRACTION",
                        help="chaos harness: miscalibrate this keyed "
                             "fraction of vantage points for the whole "
                             "campaign (clock skew, bufferbloat, stale "
                             "geolocation, stuck RTTs; combine with "
                             "--trust to exercise the detector)")
    parser.add_argument("--vp-distortion-seed", type=int, default=0,
                        help="seed of the VP distortion plan")
    parser.add_argument("--vp-distortion-kind",
                        choices=[k.value for k in DistortionKind],
                        default=None, metavar="KIND",
                        help="restrict distortion to one kind "
                             "(default: all four)")
    parser.add_argument("--matrix-store",
                        choices=["auto", "inline", "memmap", "shared"],
                        default="auto",
                        help="backing store for the combined RTT matrix: "
                             "'inline' = heap arrays, 'memmap'/'shared' = "
                             "file-backed or POSIX shared-memory planes "
                             "that analysis workers attach to by token, "
                             "'auto' = inline below the size threshold "
                             "(REPRO_MATRIX_STORE overrides; bytes are "
                             "identical for every choice)")
    parser.add_argument("--trust", action="store_true",
                        help="cross-VP trust scoring: excise vantage "
                             "points whose columns are self-inconsistent "
                             "before analysis; clean rosters are "
                             "byte-identical with or without this flag")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("glance", help="Fig. 10 summary table").set_defaults(func=_cmd_glance)
    top = sub.add_parser("top", help="top anycast ASes (Fig. 9)")
    top.add_argument("--k", type=int, default=20)
    top.set_defaults(func=_cmd_top)
    val = sub.add_parser("validate", help="validate one deployment (Fig. 7)")
    val.add_argument("deployment", help='catalog AS name, e.g. "CLOUDFLARENET,US"')
    val.set_defaults(func=_cmd_validate)
    sub.add_parser("portscan", help="TCP portscan statistics (Fig. 14)").set_defaults(
        func=_cmd_portscan
    )
    sub.add_parser("funnel", help="census magnitude funnel (Fig. 4)").set_defaults(
        func=_cmd_funnel
    )
    sub.add_parser(
        "health", help="per-census fault/supervision health reports"
    ).set_defaults(func=_cmd_health)
    sub.add_parser(
        "trace", help="run the pipeline and print its stage span tree"
    ).set_defaults(func=_cmd_trace)
    sub.add_parser(
        "stats", help="run the pipeline and print its metrics table"
    ).set_defaults(func=_cmd_stats)
    map_cmd = sub.add_parser("map", help="ASCII replica map (Fig. 10 / Fig. 5)")
    map_cmd.add_argument(
        "--deployment", default=None,
        help='catalog AS name for a per-deployment map (default: world density)',
    )
    map_cmd.set_defaults(func=_cmd_map)
    svc = sub.add_parser(
        "service",
        help="longitudinal census service: dated runs into a crash-"
             "tolerant archive",
    )
    svc.add_argument(
        "verb",
        choices=["run", "catch-up", "fsck", "history", "timeline", "alarms"],
        help="run one day; fsck + run every missing day; verify/repair "
             "the archive; print the per-day summary table; scan the "
             "archive's health series for regressions (exit 6 when one "
             "is flagged); print every recorded routing alarm (exit 7 "
             "when any exist)",
    )
    svc.add_argument("--archive", required=True, metavar="DIR",
                     help="archive root directory")
    svc.add_argument("--epoch", type=int, default=0, metavar="DAY",
                     help="day number for 'run' (default: 0)")
    svc.add_argument("--through", type=int, default=None, metavar="DAY",
                     help="last day for 'catch-up' (default: --epoch)")
    svc.add_argument("--availability", type=float, default=1.0,
                     help="per-census VP availability (default: 1.0)")
    svc.add_argument("--noise", choices=["keyed", "stream"], default="keyed",
                     help="campaign noise mode; 'keyed' gives per-target "
                          "stable RTT rows, enabling incremental recompute "
                          "(default: keyed)")
    svc.add_argument("--no-incremental", action="store_true",
                     help="always run cold censuses")
    svc.add_argument("--churn-threshold", type=float, default=0.25,
                     help="churn fraction above which incremental mode "
                          "falls back to a cold census (default: 0.25)")
    svc.add_argument("--roster-churn", type=float, default=0.0,
                     metavar="PROB",
                     help="per-epoch keyed probability each VP sits the "
                          "day out; an epoch whose roster matches an "
                          "archived one recovers that day's analysis "
                          "instead of going cold (default: 0.0)")
    svc.add_argument("--roster-seed", type=int, default=23,
                     help="seed of the roster-churn draws")
    svc.add_argument("--baseline-depth", type=int, default=3, metavar="N",
                     help="how many archived epochs the delta planner "
                          "may recover unchanged targets from "
                          "(default: 3)")
    svc.add_argument("--dry-run", action="store_true",
                     help="fsck only: report problems without touching "
                          "the archive")
    svc.add_argument("--telemetry", action="store_true",
                     help="archive a telemetry sidecar (trace, metrics, "
                          "SLO report, event log) with each committed "
                          "run; census bytes are identical either way")
    svc.add_argument("--routing", choices=["geo", "bgp"], default="geo",
                     help="latency model: 'geo' is the classic great-"
                          "circle model; 'bgp' routes every probe over a "
                          "synthetic AS graph with Gao-Rexford policies "
                          "(default: geo)")
    svc.add_argument("--alarms", action="store_true",
                     help="after each committed run, diff this epoch's "
                          "routing story against the previous committed "
                          "epoch and record typed hijack/leak verdicts "
                          "in the manifest's routing block")
    svc.add_argument("--mad-k", type=float, default=4.0, metavar="K",
                     help="timeline only: flag points more than K robust "
                          "(median/MAD) scale units above the rolling "
                          "median (default: 4.0)")
    svc.set_defaults(func=_cmd_service)
    obs = sub.add_parser(
        "obs",
        help="export archived telemetry to standard observability formats",
    )
    obs.add_argument(
        "verb", choices=["export"],
        help="export one epoch's telemetry sidecar",
    )
    obs.add_argument("--archive", required=True, metavar="DIR",
                     help="archive root directory")
    obs.add_argument("--epoch", type=int, default=0, metavar="DAY",
                     help="epoch to export (default: 0)")
    obs.add_argument("--prometheus", default=None, metavar="PATH",
                     help="write the metrics snapshot in Prometheus text "
                          "exposition format (default: print to stdout "
                          "when no output is selected)")
    obs.add_argument("--chrome-trace", default=None, metavar="PATH",
                     help="write the span forest as Chrome trace-event "
                          "JSON (load in Perfetto / chrome://tracing)")
    obs.set_defaults(func=_cmd_obs)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        study = _build_study(args)
    except ValueError as exc:  # e.g. an out-of-range --fault-rate
        parser.error(str(exc))
    try:
        return args.func(study, args)
    except CensusAborted as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ABORTED
    except CensusInterrupted as exc:
        # Clean drain: the journal holds every finished batch and the
        # finally block below still writes the manifest.
        print(f"interrupted: {exc}", file=sys.stderr)
        return EXIT_INTERRUPTED
    except KeyboardInterrupt:
        # Second signal (forced quit) or an interrupt outside the
        # drain's scope: less graceful, same resumable intent.
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except StageFailed as exc:
        if isinstance(exc.__cause__, CensusAborted):
            # Supervised variant of the same policy decision.
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_ABORTED
        if isinstance(exc.__cause__, CensusInterrupted):
            print(f"interrupted: {exc}", file=sys.stderr)
            return EXIT_INTERRUPTED
        traceback.print_exc(file=sys.stderr)
        return EXIT_UNEXPECTED
    except Exception:  # noqa: BLE001 — last-resort boundary, code 4
        traceback.print_exc(file=sys.stderr)
        return EXIT_UNEXPECTED
    finally:
        # Write the manifest even after an abort: it records what the
        # supervisor saw up to the failure.
        if args.manifest is not None:
            path = study.write_manifest(args.manifest)
            print(f"manifest written: {path}", file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
