"""Network substrate: addressing, ASes, latency, ICMP, and TCP services."""

from .addresses import (
    Prefix,
    format_ipv4,
    format_slash24,
    host_in_slash24,
    is_reserved,
    parse_ipv4,
    parse_slash24,
    slash24_base_address,
    slash24_of,
    split_to_slash24,
)
from .asn import ASRegistry, AutonomousSystem, BusinessCategory
from .bgp import (
    Announcement,
    AnnouncementTable,
    announce_owned_slash24s,
    table_for_internet,
)
from .icmp import (
    GREYLIST_COMPOSITION,
    NO_RATE_LIMIT,
    IcmpOutcome,
    RateLimitPolicy,
    outcome_from_code,
)
from .latency import CLEAN_MODEL, DEFAULT_MODEL, NOISY_MODEL, LatencyModel
from .services import (
    SOFTWARE_CATALOG,
    SSL_PORTS,
    WELL_KNOWN_SERVICES,
    Software,
    SoftwareCategory,
    is_ssl,
    is_well_known,
    service_name,
    software,
)

__all__ = [
    "Prefix",
    "format_ipv4",
    "format_slash24",
    "host_in_slash24",
    "is_reserved",
    "parse_ipv4",
    "parse_slash24",
    "slash24_base_address",
    "slash24_of",
    "split_to_slash24",
    "ASRegistry",
    "AutonomousSystem",
    "BusinessCategory",
    "Announcement",
    "AnnouncementTable",
    "announce_owned_slash24s",
    "table_for_internet",
    "GREYLIST_COMPOSITION",
    "NO_RATE_LIMIT",
    "IcmpOutcome",
    "RateLimitPolicy",
    "outcome_from_code",
    "CLEAN_MODEL",
    "DEFAULT_MODEL",
    "NOISY_MODEL",
    "LatencyModel",
    "SOFTWARE_CATALOG",
    "SSL_PORTS",
    "WELL_KNOWN_SERVICES",
    "Software",
    "SoftwareCategory",
    "is_ssl",
    "is_well_known",
    "service_name",
    "software",
]
