"""Autonomous-system registry.

Each anycast deployment in the census belongs to an AS, identified in the
paper by its WHOIS name (Fig. 9's x-axis) and characterized by a business
category (Fig. 11's breakdown).  This module provides the AS object model
and a registry supporting the joins the characterization step performs:
prefix → AS, AS → category, AS → CAIDA/Alexa rank.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional


class BusinessCategory(enum.Enum):
    """Main business activity of an AS, as labelled in the paper's Fig. 9.

    The paper notes the category is informal; for multi-service ASes only
    the most prominent activity is kept.
    """

    DNS = "DNS"
    CDN = "CDN"
    CLOUD = "Cloud"
    ISP = "ISP"
    ISP_TIER1 = "ISP-tier1"
    SECURITY = "Security"
    SOCIAL_NETWORK = "Social Network"
    WEB_PORTAL = "Web Portal"
    WEB_ANALYTICS = "Web Analytics"
    ONLINE_MARKETING = "Online Marketing"
    AD_TECHNOLOGY = "AD technology"
    CLOUD_MESSAGING = "Cloud messaging"
    BLOGGING = "Blogging"
    VIDEO_CONFERENCING = "Video Conferencing"
    TELECOM_VENDOR = "Telecom Vendor"
    BACKBONE = "Backbone Network"
    UNKNOWN = "unknown"

    @property
    def coarse(self) -> str:
        """Coarse bucket used in the Fig. 11 breakdown.

        The paper's histogram shows DNS, CDN, Cloud, ISP, Security, Social,
        Unknown, and Other.
        """
        mapping = {
            BusinessCategory.DNS: "DNS",
            BusinessCategory.CDN: "CDN",
            BusinessCategory.CLOUD: "Cloud",
            BusinessCategory.CLOUD_MESSAGING: "Cloud",
            BusinessCategory.ISP: "ISP",
            BusinessCategory.ISP_TIER1: "ISP",
            BusinessCategory.BACKBONE: "ISP",
            BusinessCategory.SECURITY: "Security",
            BusinessCategory.SOCIAL_NETWORK: "Social",
            BusinessCategory.UNKNOWN: "Unknown",
        }
        return mapping.get(self, "Other")


@dataclass(frozen=True)
class AutonomousSystem:
    """An AS: number, WHOIS-style name, registration country, category."""

    asn: int
    name: str
    country: str
    category: BusinessCategory = BusinessCategory.UNKNOWN

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"ASN must be positive: {self.asn!r}")
        if not self.name:
            raise ValueError("AS name must be non-empty")

    @property
    def whois_label(self) -> str:
        """WHOIS name capped to 12 characters, as rendered in Fig. 9."""
        return self.name[:12]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"AS{self.asn} {self.name}"


class ASRegistry:
    """Registry of ASes with prefix ownership.

    Supports the lookups the analysis pipeline needs:

    * ``registry[asn]`` — AS by number.
    * :meth:`owner_of` — AS owning a /24 prefix index.
    * :meth:`prefixes_of` — /24s registered to an AS.
    """

    def __init__(self) -> None:
        self._by_asn: Dict[int, AutonomousSystem] = {}
        self._prefix_owner: Dict[int, int] = {}
        self._as_prefixes: Dict[int, List[int]] = {}

    def add(self, asys: AutonomousSystem) -> AutonomousSystem:
        """Register an AS; re-adding the same ASN must be identical."""
        existing = self._by_asn.get(asys.asn)
        if existing is not None:
            if existing != asys:
                raise ValueError(f"conflicting registration for AS{asys.asn}")
            return existing
        self._by_asn[asys.asn] = asys
        self._as_prefixes.setdefault(asys.asn, [])
        return asys

    def assign_prefix(self, prefix_index: int, asn: int) -> None:
        """Record that a /24 belongs to an AS (each /24 has one owner)."""
        if asn not in self._by_asn:
            raise KeyError(f"unknown AS{asn}")
        current = self._prefix_owner.get(prefix_index)
        if current is not None and current != asn:
            raise ValueError(
                f"/24 index {prefix_index} already owned by AS{current}, "
                f"cannot reassign to AS{asn}"
            )
        if current is None:
            self._prefix_owner[prefix_index] = asn
            self._as_prefixes[asn].append(prefix_index)

    def __getitem__(self, asn: int) -> AutonomousSystem:
        try:
            return self._by_asn[asn]
        except KeyError:
            raise KeyError(f"unknown AS{asn}") from None

    def __contains__(self, asn: int) -> bool:
        return asn in self._by_asn

    def __len__(self) -> int:
        return len(self._by_asn)

    def __iter__(self) -> Iterator[AutonomousSystem]:
        return iter(self._by_asn.values())

    def owner_of(self, prefix_index: int) -> Optional[AutonomousSystem]:
        """The AS owning a /24 prefix index, or ``None`` if unassigned."""
        asn = self._prefix_owner.get(prefix_index)
        return None if asn is None else self._by_asn[asn]

    def prefixes_of(self, asn: int) -> List[int]:
        """Sorted /24 prefix indices registered to an AS."""
        if asn not in self._by_asn:
            raise KeyError(f"unknown AS{asn}")
        return sorted(self._as_prefixes[asn])

    def by_category(self, category: BusinessCategory) -> List[AutonomousSystem]:
        """All ASes in a business category, ordered by ASN."""
        return sorted(
            (a for a in self._by_asn.values() if a.category is category),
            key=lambda a: a.asn,
        )

    def find_by_name(self, name: str) -> AutonomousSystem:
        """Look up an AS by exact WHOIS name."""
        for asys in self._by_asn.values():
            if asys.name == name:
                return asys
        raise KeyError(f"no AS named {name!r}")
