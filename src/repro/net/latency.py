"""Round-trip-time model for the synthetic Internet.

The analysis technique consumes RTTs; the synthetic substrate must produce
them with the properties real paths have:

* a hard lower bound — the great-circle propagation delay at fiber speed
  (2/3 c).  Real measurements can *never* beat this, which is precisely why
  speed-of-light-violation detection has no false positives;
* **path stretch** — fiber does not follow great circles; paths detour
  through IXPs and follow cable layouts.  We model a multiplicative stretch
  factor ≥ 1 drawn per (vantage point, target) pair;
* **last-mile and processing delay** — an additive component covering access
  links, router queues, and ICMP slow-path processing at the target;
* **jitter** — per-probe variability on top of a path's base RTT.

All generation is vectorized: a census needs O(VPs x targets) RTTs and the
model is the hot loop of the measurement simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geo.disks import FIBER_SPEED_KM_PER_MS


@dataclass(frozen=True)
class LatencyModel:
    """Parametric RTT generator.

    Parameters
    ----------
    stretch_min, stretch_mode, stretch_max:
        Triangular-distribution parameters of the multiplicative path
        stretch (unitless, ≥ 1).  Defaults give a mode of 1.3 — paths are
        typically ~30% longer than the geodesic, occasionally much worse.
    last_mile_ms_mean:
        Mean of the exponential additive delay (access + processing).
    jitter_ms_scale:
        Scale of the exponential per-probe jitter.
    spike_prob, spike_ms_scale:
        Heavy-tailed jitter component: with probability ``spike_prob`` a
        probe additionally suffers an exponential delay of scale
        ``spike_ms_scale`` (queueing bursts, ICMP slow-path processing).
        Spikes are what make single-census RTTs noticeably worse than the
        per-pair minimum over several censuses — the effect behind the
        paper's census *combination* gains (Fig. 12).
    speed_km_per_ms:
        Propagation speed on the (stretched) path; fiber speed by default.
    """

    stretch_min: float = 1.0
    stretch_mode: float = 1.3
    stretch_max: float = 2.2
    last_mile_ms_mean: float = 2.0
    jitter_ms_scale: float = 1.0
    spike_prob: float = 0.30
    spike_ms_scale: float = 40.0
    speed_km_per_ms: float = FIBER_SPEED_KM_PER_MS

    def __post_init__(self) -> None:
        if not 1.0 <= self.stretch_min <= self.stretch_mode <= self.stretch_max:
            raise ValueError(
                "stretch parameters must satisfy 1 <= min <= mode <= max, got "
                f"({self.stretch_min}, {self.stretch_mode}, {self.stretch_max})"
            )
        if self.last_mile_ms_mean < 0 or self.jitter_ms_scale < 0:
            raise ValueError("delay components must be non-negative")
        if not 0.0 <= self.spike_prob <= 1.0:
            raise ValueError("spike_prob must be in [0, 1]")
        if self.spike_ms_scale < 0:
            raise ValueError("spike_ms_scale must be non-negative")
        if self.speed_km_per_ms <= 0:
            raise ValueError("propagation speed must be positive")

    def propagation_rtt_ms(self, distance_km: np.ndarray) -> np.ndarray:
        """The physical floor: round-trip geodesic propagation delay."""
        return 2.0 * np.asarray(distance_km, dtype=np.float64) / self.speed_km_per_ms

    def path_rtt_ms(self, distance_km: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Base RTT of paths covering ``distance_km`` (any array shape).

        The result is the *per-path* baseline (stretch + last mile applied,
        no per-probe jitter); it is always ≥ the propagation floor.
        """
        distance_km = np.asarray(distance_km, dtype=np.float64)
        if (distance_km < 0).any():
            raise ValueError("distances must be non-negative")
        stretch = rng.triangular(
            self.stretch_min, self.stretch_mode, self.stretch_max, size=distance_km.shape
        )
        last_mile = rng.exponential(self.last_mile_ms_mean, size=distance_km.shape)
        return self.propagation_rtt_ms(distance_km) * stretch + last_mile

    def probe_rtt_ms(self, base_rtt_ms: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """One probe's RTT given the path baseline: baseline + jitter.

        Jitter is strictly additive — a measured RTT can never undercut the
        path baseline, preserving the no-false-positive property of
        speed-of-light detection.
        """
        base_rtt_ms = np.asarray(base_rtt_ms, dtype=np.float64)
        jitter = rng.exponential(self.jitter_ms_scale, size=base_rtt_ms.shape)
        if self.spike_prob > 0.0 and self.spike_ms_scale > 0.0:
            spikes = rng.random(base_rtt_ms.shape) < self.spike_prob
            jitter = jitter + spikes * rng.exponential(
                self.spike_ms_scale, size=base_rtt_ms.shape
            )
        return base_rtt_ms + jitter

    # ------------------------------------------------------------------
    # Uniform-driven variants (keyed noise mode)
    # ------------------------------------------------------------------
    #
    # The ``rng``-driven methods above consume a positional stream: the
    # i-th target's draw depends on how many targets precede it, so adding
    # one /24 to the universe perturbs *every* RTT.  The ``*_from_uniforms``
    # variants instead map caller-supplied uniforms through the inverse
    # CDFs of the exact same distributions — callers key each uniform to
    # the target identity, making a target's RTT independent of the rest
    # of the universe (the property incremental recompute relies on).

    def _triangular_from_uniform(self, u: np.ndarray) -> np.ndarray:
        """Inverse-CDF triangular(stretch_min, stretch_mode, stretch_max)."""
        a, c, b = self.stretch_min, self.stretch_mode, self.stretch_max
        if b == a:
            return np.full_like(u, a)
        fc = (c - a) / (b - a)
        left = a + np.sqrt(u * (b - a) * (c - a))
        right = b - np.sqrt((1.0 - u) * (b - a) * (b - c))
        return np.where(u < fc, left, right)

    @staticmethod
    def _exponential_from_uniform(u: np.ndarray, scale: float) -> np.ndarray:
        """Inverse-CDF exponential; ``log1p`` keeps u ~ 1 well-conditioned."""
        return -scale * np.log1p(-u)

    def path_rtt_ms_from_uniforms(
        self,
        distance_km: np.ndarray,
        u_stretch: np.ndarray,
        u_last_mile: np.ndarray,
    ) -> np.ndarray:
        """:meth:`path_rtt_ms` driven by per-path uniforms in [0, 1)."""
        distance_km = np.asarray(distance_km, dtype=np.float64)
        if (distance_km < 0).any():
            raise ValueError("distances must be non-negative")
        stretch = self._triangular_from_uniform(np.asarray(u_stretch, dtype=np.float64))
        last_mile = self._exponential_from_uniform(
            np.asarray(u_last_mile, dtype=np.float64), self.last_mile_ms_mean
        )
        return self.propagation_rtt_ms(distance_km) * stretch + last_mile

    def probe_rtt_ms_from_uniforms(
        self,
        base_rtt_ms: np.ndarray,
        u_jitter: np.ndarray,
        u_spike_gate: np.ndarray,
        u_spike: np.ndarray,
    ) -> np.ndarray:
        """:meth:`probe_rtt_ms` driven by per-probe uniforms in [0, 1)."""
        base_rtt_ms = np.asarray(base_rtt_ms, dtype=np.float64)
        jitter = self._exponential_from_uniform(
            np.asarray(u_jitter, dtype=np.float64), self.jitter_ms_scale
        )
        if self.spike_prob > 0.0 and self.spike_ms_scale > 0.0:
            spikes = np.asarray(u_spike_gate, dtype=np.float64) < self.spike_prob
            jitter = jitter + spikes * self._exponential_from_uniform(
                np.asarray(u_spike, dtype=np.float64), self.spike_ms_scale
            )
        return base_rtt_ms + jitter


#: Model tuned to intra-datacenter measurement (tight, for unit fixtures).
CLEAN_MODEL = LatencyModel(
    stretch_min=1.0,
    stretch_mode=1.05,
    stretch_max=1.1,
    last_mile_ms_mean=0.2,
    jitter_ms_scale=0.05,
    spike_prob=0.0,
)

#: Default wide-area model used by the census simulator.
DEFAULT_MODEL = LatencyModel()

#: Pessimistic model (congested paths, long detours) for robustness tests.
NOISY_MODEL = LatencyModel(
    stretch_min=1.0,
    stretch_mode=1.5,
    stretch_max=3.0,
    last_mile_ms_mean=8.0,
    jitter_ms_scale=5.0,
    spike_prob=0.4,
    spike_ms_scale=60.0,
)
