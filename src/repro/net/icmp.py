"""ICMP message taxonomy and rate-limiting model.

The census prober speaks ICMP echo (ping).  Targets answer with an echo
reply, an error, or silence.  Three error codes matter to the pipeline
because they trigger greylisting (Sec. 3.3):

* type 3 code 13 — communication administratively filtered (RFC 1812);
  98.5% of the paper's greylist;
* type 3 code 10 — host administratively prohibited (RFC 1122); 1.3%;
* type 3 code 9  — network administratively prohibited; 0.2%.

The binary census record encodes these greylist codes "as a negative sign"
on the flag field; :mod:`repro.measurement.recordio` relies on the numeric
values defined here.

This module also models *ICMP rate limiting*: routers and hosts cap the
rate of ICMP responses, and — the paper's key scalability lesson (Sec. 3.5)
— reply aggregates near the vantage point get policed when the probing rate
is too high, causing heterogeneous per-VP drop rates that disappear once
the prober slows down by an order of magnitude.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class IcmpOutcome(enum.Enum):
    """Outcome of one ICMP echo probe."""

    ECHO_REPLY = "echo-reply"
    #: Type 3 code 13 (RFC 1812): communication administratively filtered.
    ADMIN_FILTERED = "admin-filtered"
    #: Type 3 code 10 (RFC 1122): host administratively prohibited.
    HOST_PROHIBITED = "host-prohibited"
    #: Type 3 code 9 (RFC 1122): network administratively prohibited.
    NET_PROHIBITED = "net-prohibited"
    #: Other type-3 errors (unreachable host/net/port), not greylisted.
    UNREACHABLE = "unreachable"
    #: No answer at all (dead host, silent drop, rate-limit loss).
    SILENT = "silent"

    @property
    def is_reply(self) -> bool:
        return self is IcmpOutcome.ECHO_REPLY

    @property
    def is_error(self) -> bool:
        return self in _ERROR_OUTCOMES

    @property
    def triggers_greylist(self) -> bool:
        """True for the administratively-prohibited family (codes 9/10/13)."""
        return self in _GREYLIST_OUTCOMES

    @property
    def icmp_code(self) -> int:
        """The ICMP type-3 code, or -1 when not applicable."""
        return _CODES.get(self, -1)


_ERROR_OUTCOMES = frozenset(
    {
        IcmpOutcome.ADMIN_FILTERED,
        IcmpOutcome.HOST_PROHIBITED,
        IcmpOutcome.NET_PROHIBITED,
        IcmpOutcome.UNREACHABLE,
    }
)
_GREYLIST_OUTCOMES = frozenset(
    {IcmpOutcome.ADMIN_FILTERED, IcmpOutcome.HOST_PROHIBITED, IcmpOutcome.NET_PROHIBITED}
)
_CODES = {
    IcmpOutcome.ADMIN_FILTERED: 13,
    IcmpOutcome.HOST_PROHIBITED: 10,
    IcmpOutcome.NET_PROHIBITED: 9,
    IcmpOutcome.UNREACHABLE: 1,
}


def outcome_from_code(code: int) -> IcmpOutcome:
    """Map an ICMP type-3 code back to an outcome (greylist decoding)."""
    for outcome, c in _CODES.items():
        if c == code:
            return outcome
    raise ValueError(f"unmapped ICMP type-3 code: {code!r}")


#: Paper-reported composition of the greylist (Sec. 3.3).
GREYLIST_COMPOSITION = {
    IcmpOutcome.ADMIN_FILTERED: 0.985,
    IcmpOutcome.HOST_PROHIBITED: 0.013,
    IcmpOutcome.NET_PROHIBITED: 0.002,
}


@dataclass(frozen=True)
class RateLimitPolicy:
    """Token-bucket-style policing of the reply aggregate near a VP.

    The paper found that while the LFSR permutation spreads requests across
    *targets*, the **replies** all converge on the vantage point, arriving at
    the full probing rate; some VP-side networks police that aggregate.
    We model the surviving fraction as::

        keep(rate) = 1                                  if rate <= safe_rate
                   = (safe_rate / rate) ** severity     otherwise

    ``severity`` = 0 disables policing (a well-provisioned network);
    ``severity`` = 1 is a hard cap at ``safe_rate`` replies/s.
    """

    safe_rate_pps: float = 1000.0
    severity: float = 1.0

    def __post_init__(self) -> None:
        if self.safe_rate_pps <= 0:
            raise ValueError("safe_rate_pps must be positive")
        if not 0.0 <= self.severity <= 1.0:
            raise ValueError("severity must be in [0, 1]")

    def keep_probability(self, rate_pps: float) -> float:
        """Probability a reply survives policing at the given probe rate."""
        if rate_pps < 0:
            raise ValueError("rate must be non-negative")
        if rate_pps <= self.safe_rate_pps or self.severity == 0.0:
            return 1.0
        return (self.safe_rate_pps / rate_pps) ** self.severity


#: A VP hosted on a network that never polices (the lucky case).
NO_RATE_LIMIT = RateLimitPolicy(safe_rate_pps=float("inf"), severity=0.0)
