"""IPv4 address and /24-prefix arithmetic.

The census operates at /24 granularity: "BGP standard practice is to ignore
or block prefixes shorter [longer] than /24. Thus, /24 is the minimum
granularity for anycasted services" (Sec. 3.1).  Every target in the hitlist
is one representative IP/32 per /24.

We deliberately avoid the stdlib ``ipaddress`` module in the hot paths:
census-scale code manipulates hundreds of thousands of prefixes, and packing
them as plain ``int`` indices (the /24 "prefix index" = the top 24 bits) is
both faster and friendlier to numpy vectorization.  Conversion helpers keep
the human-readable dotted-quad forms at the edges.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Tuple

#: Number of /24 prefixes in the full IPv4 space.
TOTAL_SLASH24 = 1 << 24

_DOTTED_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")


def parse_ipv4(text: str) -> int:
    """Parse a dotted-quad IPv4 address into a 32-bit integer."""
    match = _DOTTED_RE.match(text.strip())
    if match is None:
        raise ValueError(f"malformed IPv4 address: {text!r}")
    octets = [int(g) for g in match.groups()]
    if any(o > 255 for o in octets):
        raise ValueError(f"IPv4 octet out of range: {text!r}")
    return (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]


def format_ipv4(addr: int) -> str:
    """Format a 32-bit integer as a dotted-quad IPv4 address."""
    if not 0 <= addr <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 integer out of range: {addr!r}")
    return f"{(addr >> 24) & 0xFF}.{(addr >> 16) & 0xFF}.{(addr >> 8) & 0xFF}.{addr & 0xFF}"


def slash24_of(addr: int) -> int:
    """The /24 prefix index (top 24 bits) of an address."""
    if not 0 <= addr <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 integer out of range: {addr!r}")
    return addr >> 8


def slash24_base_address(prefix_index: int) -> int:
    """The .0 address of a /24 given its prefix index."""
    if not 0 <= prefix_index < TOTAL_SLASH24:
        raise ValueError(f"/24 index out of range: {prefix_index!r}")
    return prefix_index << 8


def host_in_slash24(prefix_index: int, host: int) -> int:
    """The address of host ``host`` (0–255) inside a /24."""
    if not 0 <= host <= 255:
        raise ValueError(f"host octet out of range: {host!r}")
    return slash24_base_address(prefix_index) | host


def format_slash24(prefix_index: int) -> str:
    """Render a /24 prefix index in CIDR notation, e.g. ``'192.0.2.0/24'``."""
    return format_ipv4(slash24_base_address(prefix_index)) + "/24"


def parse_slash24(text: str) -> int:
    """Parse ``'a.b.c.0/24'`` (or any address with /24 suffix) to its index."""
    body, _, plen = text.strip().partition("/")
    if plen != "24":
        raise ValueError(f"not a /24 prefix: {text!r}")
    return slash24_of(parse_ipv4(body))


@dataclass(frozen=True, order=True)
class Prefix:
    """A CIDR prefix of arbitrary length (used for announced BGP prefixes).

    ``base`` is the network address as an int with host bits zeroed;
    ``length`` the prefix length.  Announced prefixes shorter than /24 are
    split into /24s for census purposes (:meth:`slash24s`), mirroring the
    paper's handling of BGP aggregates.
    """

    base: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"prefix length out of range: {self.length!r}")
        mask = self.netmask
        if self.base & ~mask & 0xFFFFFFFF:
            raise ValueError(f"host bits set in prefix base {format_ipv4(self.base)}/{self.length}")

    @property
    def netmask(self) -> int:
        return (0xFFFFFFFF << (32 - self.length)) & 0xFFFFFFFF if self.length else 0

    @property
    def size(self) -> int:
        """Number of addresses covered."""
        return 1 << (32 - self.length)

    def contains(self, addr: int) -> bool:
        return (addr & self.netmask) == self.base

    def slash24s(self) -> Iterator[int]:
        """Iterate the /24 prefix indices covered by this prefix.

        A /25-or-longer prefix is contained in a single /24 and yields just
        that one (the mapping back from /24 to announced prefix is done a
        posteriori, as in the paper).
        """
        if self.length >= 24:
            yield self.base >> 8
            return
        first = self.base >> 8
        count = 1 << (24 - self.length)
        for i in range(count):
            yield first + i

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        body, _, plen = text.strip().partition("/")
        if not plen:
            raise ValueError(f"missing prefix length: {text!r}")
        return cls(parse_ipv4(body), int(plen))

    def __str__(self) -> str:
        return f"{format_ipv4(self.base)}/{self.length}"


#: Prefixes never routed on the public Internet; excluded from hitlists.
RESERVED_PREFIXES: Tuple[Prefix, ...] = (
    Prefix.parse("0.0.0.0/8"),       # "this network"
    Prefix.parse("10.0.0.0/8"),      # RFC 1918
    Prefix.parse("100.64.0.0/10"),   # CGN shared space
    Prefix.parse("127.0.0.0/8"),     # loopback
    Prefix.parse("169.254.0.0/16"),  # link local
    Prefix.parse("172.16.0.0/12"),   # RFC 1918
    Prefix.parse("192.0.2.0/24"),    # TEST-NET-1
    Prefix.parse("192.168.0.0/16"),  # RFC 1918
    Prefix.parse("198.18.0.0/15"),   # benchmarking
    Prefix.parse("198.51.100.0/24"), # TEST-NET-2
    Prefix.parse("203.0.113.0/24"),  # TEST-NET-3
    Prefix.parse("224.0.0.0/4"),     # multicast
    Prefix.parse("240.0.0.0/4"),     # reserved
)


def is_reserved(addr: int) -> bool:
    """True if the address falls in a reserved/non-routable block."""
    return any(p.contains(addr) for p in RESERVED_PREFIXES)


def split_to_slash24(prefixes: List[Prefix]) -> List[int]:
    """Split announced prefixes into the sorted, deduplicated /24 universe.

    This mirrors the paper's coverage computation: the RIS/RouteViews
    announced-prefix dump is split into 10,616,435 /24s and matched against
    the hitlist.
    """
    seen = set()
    for prefix in prefixes:
        seen.update(prefix.slash24s())
    return sorted(seen)
