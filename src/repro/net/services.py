"""TCP service registry and software fingerprints.

The portscan step (Sec. 4.3) maps open TCP ports to well-known services
(via the IANA-style port classification nmap uses) and fingerprints the
software answering on them.  This module embeds:

* a port → service-name registry covering the ports that actually appear in
  the paper's Fig. 14 top-10s plus the common well-known range;
* the set of SSL-wrapped service ports;
* the 30-software fingerprint catalog of Fig. 16, grouped into the paper's
  DNS / Web / Mail / Other categories.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

# Frequently-referenced ports, named for readability at call sites.
PORT_SSH = 22
PORT_DNS = 53
PORT_HTTP = 80
PORT_BGP = 179
PORT_HTTPS = 443
PORT_RTMP = 1935
PORT_MYSQL = 3306
PORT_HTTP_ALT = 8080
PORT_US_SRV = 8083
PORT_MOVAZ_SSC = 5252

#: Port → well-known service name.  Mirrors nmap's nmap-services view for
#: the ports relevant to the census; ports absent here are "unknown".
WELL_KNOWN_SERVICES: Dict[int, str] = {
    20: "ftp-data",
    21: "ftp",
    22: "ssh",
    23: "telnet",
    25: "smtp",
    43: "whois",
    53: "domain",
    80: "http",
    88: "kerberos",
    110: "pop3",
    111: "rpcbind",
    119: "nntp",
    123: "ntp",
    135: "msrpc",
    139: "netbios-ssn",
    143: "imap",
    161: "snmp",
    179: "bgp",
    389: "ldap",
    443: "https",
    445: "microsoft-ds",
    465: "smtps",
    514: "syslog",
    587: "submission",
    636: "ldaps",
    853: "domain-s",
    873: "rsync",
    990: "ftps",
    993: "imaps",
    995: "pop3s",
    1433: "ms-sql-s",
    1723: "pptp",
    1935: "rtmp",
    2052: "clearvisn",
    2053: "knetd",
    2082: "cpanel",
    2083: "cpanel-ssl",
    2086: "whm",
    2087: "whm-ssl",
    2095: "webmail",
    2096: "webmail-ssl",
    3128: "squid-http",
    3306: "mysql",
    3389: "ms-wbt-server",
    5060: "sip",
    5061: "sips",
    5222: "xmpp-client",
    5252: "movaz-ssc",
    5432: "postgresql",
    5900: "vnc",
    6379: "redis",
    8000: "http-alt",
    8080: "http-proxy",
    8083: "us-srv",
    8443: "https-alt",
    8888: "sun-answerbook",
    9418: "git",
    11211: "memcache",
    25565: "minecraft",
    27017: "mongodb",
    8554: "rtsp-alt",
    3690: "svn",
    6667: "irc",
    5000: "upnp",
    7070: "realserver",
    5269: "xmpp-server",
    1194: "openvpn",
    500: "isakmp",
    4500: "ipsec-nat-t",
    9000: "cslistener",
    10000: "snet-sensor-mgmt",
}

#: Ports whose service runs over SSL/TLS (used for the "(SSL)" count in Fig. 14).
SSL_PORTS: FrozenSet[int] = frozenset(
    {443, 465, 563, 636, 853, 990, 993, 995, 2053, 2083, 2087, 2096, 5061, 8443}
)


def service_name(port: int) -> Optional[str]:
    """The well-known service on ``port``, or ``None`` if unregistered."""
    if not 0 < port <= 65535:
        raise ValueError(f"TCP port out of range: {port!r}")
    return WELL_KNOWN_SERVICES.get(port)


def is_well_known(port: int) -> bool:
    """True if the port maps to a well-known service."""
    return service_name(port) is not None


def is_ssl(port: int) -> bool:
    """True if the port conventionally carries SSL/TLS."""
    if not 0 < port <= 65535:
        raise ValueError(f"TCP port out of range: {port!r}")
    return port in SSL_PORTS


class SoftwareCategory(enum.Enum):
    """Coarse grouping of fingerprinted software (paper Fig. 16)."""

    DNS = "DNS"
    WEB = "Web"
    MAIL = "Mail"
    OTHER = "Other"


@dataclass(frozen=True)
class Software:
    """A fingerprintable server implementation."""

    name: str
    category: SoftwareCategory
    #: Whether the implementation is open source (paper remarks the census
    #: covers both open-source and proprietary daemons).
    open_source: bool = False


# The 30 software implementations of Fig. 16, left-to-right.
SOFTWARE_CATALOG: Dict[str, Software] = {
    sw.name: sw
    for sw in (
        Software("ISC BIND", SoftwareCategory.DNS, open_source=True),
        Software("NLnet Labs NSD", SoftwareCategory.DNS, open_source=True),
        Software("Microsoft DNS", SoftwareCategory.DNS),
        Software("OpenDNS", SoftwareCategory.DNS),
        Software("nginx", SoftwareCategory.WEB, open_source=True),
        Software("lighttpd", SoftwareCategory.WEB, open_source=True),
        Software("Apache httpd", SoftwareCategory.WEB, open_source=True),
        Software("ECD", SoftwareCategory.WEB),
        Software("Microsoft IIS", SoftwareCategory.WEB),
        Software("Varnish", SoftwareCategory.WEB, open_source=True),
        Software("Apache Tomcat", SoftwareCategory.WEB, open_source=True),
        Software("bitasicv2", SoftwareCategory.WEB),
        Software("CFS 0213", SoftwareCategory.WEB),
        Software("cloudflare-nginx", SoftwareCategory.WEB),
        Software("cPanel httpd", SoftwareCategory.WEB),
        Software("thttpd", SoftwareCategory.WEB, open_source=True),
        Software("ECAcc/ECS", SoftwareCategory.WEB),
        Software("Google httpd", SoftwareCategory.WEB),
        Software("instart/160", SoftwareCategory.WEB),
        Software("Gmail imapd", SoftwareCategory.MAIL),
        Software("Gmail pop3d", SoftwareCategory.MAIL),
        Software("Google gsmtp", SoftwareCategory.MAIL),
        Software("OpenSSH", SoftwareCategory.OTHER, open_source=True),
        Software("MySQL", SoftwareCategory.OTHER, open_source=True),
        Software("sslstrip", SoftwareCategory.OTHER, open_source=True),
        Software("Microsoft RPC", SoftwareCategory.OTHER),
        Software("Microsoft HTTP", SoftwareCategory.OTHER),
        Software("Microsoft SQL", SoftwareCategory.OTHER),
        Software("PowerDNS", SoftwareCategory.DNS, open_source=True),
        Software("Unbound", SoftwareCategory.DNS, open_source=True),
    )
}


def software(name: str) -> Software:
    """Look up a fingerprint by exact name."""
    try:
        return SOFTWARE_CATALOG[name]
    except KeyError:
        raise KeyError(f"unknown software fingerprint {name!r}") from None
