"""BGP announcement table: /24 census units vs announced prefixes.

The census probes at /24 granularity, but operators announce aggregates:
"announced BGP prefixes that are smaller [shorter] than /24 are tested
multiple times, one per each /24 they contain: the mapping between /24 and
announced prefixes is still possible a posteriori" (Sec. 3.1).  The paper
also leans on [35]'s observation that "anycast prefixes are dominated by
/24" (88% of announced anycast prefixes).

This module provides the announcement table: generation of realistic
announcements covering a set of owned /24s (mostly exact /24s for anycast,
larger aggregates for unicast space), and the a-posteriori /24 → announced
prefix join.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .addresses import Prefix, slash24_base_address


@dataclass(frozen=True)
class Announcement:
    """One BGP table entry."""

    prefix: Prefix
    origin_asn: int

    def covers_slash24(self, index: int) -> bool:
        return self.prefix.contains(slash24_base_address(index))


class AnnouncementTable:
    """A routing-table view supporting longest-prefix /24 lookups."""

    def __init__(self, announcements: Iterable[Announcement]) -> None:
        self._announcements: List[Announcement] = sorted(
            announcements, key=lambda a: (a.prefix.base, -a.prefix.length)
        )
        # Sorted bases for bisect; candidates are scanned backward from the
        # insertion point (a covering prefix must start at or before the
        # target address).
        self._bases = [a.prefix.base for a in self._announcements]

    def __len__(self) -> int:
        return len(self._announcements)

    def __iter__(self):
        return iter(self._announcements)

    def lookup_slash24(self, index: int) -> Optional[Announcement]:
        """Longest-prefix match for a /24 (the a-posteriori join)."""
        address = slash24_base_address(index)
        pos = bisect.bisect_right(self._bases, address) - 1
        best: Optional[Announcement] = None
        # Scan back while candidates could still cover the address: once a
        # candidate's base is below address - max_span, stop.
        scan = pos
        while scan >= 0:
            candidate = self._announcements[scan]
            if candidate.prefix.contains(address):
                if best is None or candidate.prefix.length > best.prefix.length:
                    best = candidate
            if address - candidate.prefix.base >= (1 << 24):
                break  # nothing shorter than /8 exists; stop scanning
            scan -= 1
        return best

    def slash24_share(self) -> float:
        """Share of announcements that are exact /24s (paper: 88%)."""
        if not self._announcements:
            raise ValueError("empty announcement table")
        exact = sum(1 for a in self._announcements if a.prefix.length == 24)
        return exact / len(self._announcements)


def announce_owned_slash24s(
    owned: Sequence[int],
    origin_asn: int,
    rng: np.random.Generator,
    slash24_prob: float = 0.88,
) -> List[Announcement]:
    """Generate announcements covering an AS's owned /24 indices.

    Contiguous runs of /24s are either announced individually (with
    probability ``slash24_prob``, the anycast-typical case) or aggregated
    into the largest aligned covering blocks — the way operators announce
    unicast allocations.
    """
    if not 0.0 <= slash24_prob <= 1.0:
        raise ValueError("slash24_prob must be in [0, 1]")
    announcements: List[Announcement] = []
    for run_start, run_len in _contiguous_runs(sorted(owned)):
        if rng.random() < slash24_prob or run_len == 1:
            for i in range(run_len):
                announcements.append(
                    Announcement(
                        prefix=Prefix(slash24_base_address(run_start + i), 24),
                        origin_asn=origin_asn,
                    )
                )
            continue
        # Aggregate the run into maximal aligned power-of-two blocks.
        index = run_start
        remaining = run_len
        while remaining > 0:
            block = 1
            while (
                block * 2 <= remaining
                and index % (block * 2) == 0
            ):
                block *= 2
            length = 24 - block.bit_length() + 1
            announcements.append(
                Announcement(
                    prefix=Prefix(slash24_base_address(index), length),
                    origin_asn=origin_asn,
                )
            )
            index += block
            remaining -= block
    return announcements


def _contiguous_runs(indices: Sequence[int]) -> List[Tuple[int, int]]:
    """(start, length) of each maximal run of consecutive integers."""
    runs: List[Tuple[int, int]] = []
    start: Optional[int] = None
    previous: Optional[int] = None
    for index in indices:
        if start is None:
            start, previous = index, index
            continue
        if index == previous + 1:
            previous = index
            continue
        runs.append((start, previous - start + 1))
        start, previous = index, index
    if start is not None:
        runs.append((start, previous - start + 1))
    return runs


def table_for_internet(internet, seed: int = 88) -> AnnouncementTable:
    """Build the announcement table of a synthetic Internet.

    Anycast deployments announce /24-dominated prefixes (the [35]
    observation; per-run aggregation probability is tuned so ~88% of the
    resulting anycast announcements are exact /24s); unicast space
    aggregates far more.
    """
    rng = np.random.default_rng(seed)
    announcements: List[Announcement] = []
    for dep in internet.deployments:
        announcements.extend(
            announce_owned_slash24s(dep.prefixes, dep.entry.asn, rng, slash24_prob=0.4)
        )
    # Unicast space: group hosts into synthetic origin ASes of ~32 /24s and
    # aggregate aggressively.
    hosts = sorted(h.prefix for h in internet.unicast_hosts)
    fake_asn = 200_000
    for start in range(0, len(hosts), 32):
        chunk = hosts[start : start + 32]
        announcements.extend(
            announce_owned_slash24s(chunk, fake_asn, rng, slash24_prob=0.15)
        )
        fake_asn += 1
    return AnnouncementTable(announcements)
