"""Fig. 14 — nmap portscan statistics and top-10 open TCP ports.

Paper: scanning one IP per /24 of the top-100 ASes finds 812 responding
IPs in 81 ASes, 10,499 open ports, 457 well-known services (185 over SSL)
and 30 fingerprinted software implementations.  The top-10 ports ranked by
AS count are generic (53/80/443/179/22/...), while ranked by /24 count
they are flooded by CloudFlare's management ports — the class-imbalance
caveat.
"""

from conftest import write_exhibit

PAPER_STATS = {"ips": 812, "ases": 81, "ports": 10_499, "well_known": 457, "ssl": 185,
               "software": 30}
PAPER_TOP_BY_AS = [53, 80, 443, 179, 22, 8080, 8083, 3306, 1935, 5252]


def test_fig14_portscan(benchmark, paper_study, results_dir):
    report = benchmark.pedantic(lambda: paper_study.portscan, rounds=1, iterations=1)

    measured = {
        "ips": len(report.responding_hosts),
        "ases": report.n_ases,
        "ports": report.total_open_ports,
        "well_known": len(report.well_known_services()),
        "ssl": len(report.ssl_services()),
        "software": len(report.software_seen()),
    }
    lines = ["metric        paper   measured"]
    for key, paper_value in PAPER_STATS.items():
        lines.append(f"{key:12s} {paper_value:6d}   {measured[key]}")
    lines.append("")
    lines.append("top-10 by AS:     " + ", ".join(str(p) for p, _ in report.top_ports_by_as()))
    lines.append("top-10 by /24:    " + ", ".join(str(p) for p, _ in report.top_ports_by_prefix()))
    lines.append("paper top by AS:  " + ", ".join(str(p) for p in PAPER_TOP_BY_AS))
    write_exhibit(results_dir, "fig14_portscan", lines)

    # Magnitudes within the paper's ballpark.
    assert 0.75 * 812 <= measured["ips"] <= 1.3 * 812
    assert 70 <= measured["ases"] <= 100
    assert 9_000 <= measured["ports"] <= 12_500
    assert 300 <= measured["well_known"] <= 700
    assert 100 <= measured["ssl"] <= 300
    assert 15 <= measured["software"] <= 30

    # Head of the per-AS ranking is generic infrastructure ports.
    top_by_as = [p for p, _ in report.top_ports_by_as(k=5)]
    assert set(top_by_as[:3]) == {53, 80, 443}
    # Per-/24 ranking shows the CloudFlare class imbalance.
    cf_ports = {2052, 2053, 2082, 2083, 2086, 2087, 2095, 2096, 8880}
    top_by_prefix = [p for p, _ in report.top_ports_by_prefix(k=10)]
    assert len(cf_ports & set(top_by_prefix)) >= 2
