"""Ablations of the design choices DESIGN.md calls out.

1. **Disk speed constant**: fiber speed (2/3 c, the default) vs full c.
   Larger radii are more conservative: detection and enumeration recall
   can only drop.
2. **Population bias**: the paper's largest-city MLE vs an unbiased
   nearest-city classifier — the bias costs accuracy on datacenter towns
   (Ashburn) but wins on the typical metro replica.
3. **Enumeration mode**: strict (provably-conservative MIS on original
   disks) vs the paper's collapse-and-iterate recall boost — quantifies
   the recall/precision trade-off.
4. **Vantage-point count**: recall of a wide deployment as VPs grow.
"""

import numpy as np
from conftest import write_exhibit

from repro.census.analysis import analyze_matrix
from repro.census.combine import matrix_from_census
from repro.core.igreedy import IGreedyConfig
from repro.geo.cities import default_city_db
from repro.geo.disks import LIGHT_SPEED_KM_PER_MS
from repro.internet.catalog import TOP100_ENTRIES
from repro.internet.topology import InternetConfig, SyntheticInternet
from repro.measurement.campaign import CensusCampaign
from repro.measurement.platform import planetlab_platform


def small_census(n_vps=100, seed=66):
    db = default_city_db()
    internet = SyntheticInternet(
        InternetConfig(seed=seed, n_unicast_slash24=400, tail_deployments=80),
        city_db=db,
    )
    platform = planetlab_platform(count=n_vps, seed=41, city_db=db)
    campaign = CensusCampaign(internet, platform, seed=9)
    return internet, db, matrix_from_census(campaign.run_census(availability=1.0))


def test_ablation_speed_constant(benchmark, results_dir):
    internet, db, matrix = small_census()

    def run():
        fiber = analyze_matrix(matrix, city_db=db, config=IGreedyConfig())
        light = analyze_matrix(
            matrix, city_db=db,
            config=IGreedyConfig(speed_km_per_ms=LIGHT_SPEED_KM_PER_MS),
        )
        return fiber, light

    fiber, light = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "speed       anycast /24   total replicas",
        f"2/3 c       {fiber.n_anycast:11d}   {fiber.total_replicas:14d}",
        f"c           {light.n_anycast:11d}   {light.total_replicas:14d}",
    ]
    write_exhibit(results_dir, "ablation_speed", lines)

    # Full c is strictly more conservative.
    assert light.n_anycast <= fiber.n_anycast
    assert light.total_replicas <= fiber.total_replicas
    # Still no false positives either way.
    truly = {int(p) for p, a in zip(internet.prefixes, internet.is_anycast) if a}
    assert set(light.anycast_prefixes) <= truly
    assert set(fiber.anycast_prefixes) <= truly


def test_ablation_population_bias(benchmark, results_dir):
    internet, db, matrix = small_census(seed=67)
    truth_by_prefix = {
        p: {c.key for c in dep.site_cities}
        for dep in internet.deployments
        for p in dep.prefixes
    }

    def accuracy(analysis):
        hits = total = 0
        for prefix, result in analysis.results.items():
            truth = truth_by_prefix.get(prefix, set())
            for city in result.cities:
                total += 1
                hits += city.key in truth
        return hits / max(total, 1)

    def run():
        biased = analyze_matrix(matrix, city_db=db, config=IGreedyConfig())
        unbiased = analyze_matrix(
            matrix, city_db=db, config=IGreedyConfig(population_exponent=0.0)
        )
        return accuracy(biased), accuracy(unbiased)

    acc_biased, acc_unbiased = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "classifier                city-level accuracy",
        f"population MLE (paper)    {acc_biased:.2f}   (paper: ~0.75)",
        f"nearest-city (unbiased)   {acc_unbiased:.2f}",
    ]
    write_exhibit(results_dir, "ablation_population_bias", lines)

    # The paper's prior is genuinely informative: population-weighted
    # classification lands in the ~75% band on population-weighted sites.
    assert 0.5 <= acc_biased <= 0.95
    # Replicas live in populous cities here, so the bias must not lose to
    # the unbiased classifier by much, if at all.
    assert acc_biased >= acc_unbiased - 0.1


def test_ablation_enumeration_mode(benchmark, results_dir):
    internet, db, matrix = small_census(seed=68)
    sites_of = {
        p: dep.entry.n_sites for dep in internet.deployments for p in dep.prefixes
    }

    def overcount_stats(analysis):
        over = sum(
            1 for p, r in analysis.results.items()
            if r.replica_count > sites_of.get(p, 10**9)
        )
        total = sum(r.replica_count for r in analysis.results.values())
        return over, total

    def run():
        strict = analyze_matrix(matrix, city_db=db, config=IGreedyConfig())
        loose = analyze_matrix(
            matrix, city_db=db, config=IGreedyConfig(strict_enumeration=False)
        )
        return strict, loose

    strict, loose = benchmark.pedantic(run, rounds=1, iterations=1)
    s_over, s_total = overcount_stats(strict)
    l_over, l_total = overcount_stats(loose)
    lines = [
        "mode        /24 overcounting truth   total replicas",
        f"strict      {s_over:22d}   {s_total:14d}",
        f"iterative   {l_over:22d}   {l_total:14d}",
    ]
    write_exhibit(results_dir, "ablation_enumeration", lines)

    # Strict never overcounts; the iterative boost finds more replicas but
    # at a measurable precision cost.
    assert s_over == 0
    assert l_total >= s_total
    assert l_over >= s_over


def test_ablation_mis_ordering(benchmark, results_dir):
    """Increasing-radius greedy (the paper's choice) vs arbitrary order."""
    from repro.core.enumeration import greedy_mis
    from repro.geo.coords import GeoPoint
    from repro.geo.disks import Disk

    rng = np.random.default_rng(4)
    instances = []
    for _ in range(150):
        instances.append([
            Disk(
                GeoPoint(float(rng.uniform(-70, 70)), float(rng.uniform(-180, 180))),
                float(rng.uniform(50, 4000)),
            )
            for _ in range(30)
        ])

    def run():
        radius = [len(greedy_mis(d, ordering="radius")) for d in instances]
        arbitrary = [len(greedy_mis(d, ordering="arbitrary")) for d in instances]
        return np.array(radius), np.array(arbitrary)

    radius, arbitrary = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "ordering     mean |MIS|   wins   losses",
        f"radius       {radius.mean():10.2f}   {(radius > arbitrary).sum():4d}   "
        f"{(radius < arbitrary).sum():6d}",
        f"arbitrary    {arbitrary.mean():10.2f}",
    ]
    write_exhibit(results_dir, "ablation_mis_ordering", lines)

    # Smallest-radius-first finds at least as many replicas on average and
    # rarely loses to arbitrary order on an instance.
    assert radius.mean() >= arbitrary.mean()
    assert (radius < arbitrary).mean() < 0.15


def test_ablation_vp_count(benchmark, results_dir):
    db = default_city_db()
    cloudflare = next(e for e in TOP100_ENTRIES if e.name == "CLOUDFLARENET,US")
    entry = cloudflare
    internet = SyntheticInternet(
        InternetConfig(seed=70, n_unicast_slash24=0, tail_deployments=0),
        catalog=[entry],
        city_db=db,
    )
    prefix = internet.deployments[0].prefixes[0]
    counts = {}

    def run():
        for n_vps in (25, 50, 100, 200, 400):
            platform = planetlab_platform(count=n_vps, seed=41, city_db=db)
            campaign = CensusCampaign(internet, platform, seed=9)
            matrix = matrix_from_census(campaign.run_census(availability=1.0))
            analysis = analyze_matrix(matrix, city_db=db)
            counts[n_vps] = analysis.replica_count(prefix)
        return counts

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["VPs   replicas found (truth = 45)"]
    lines += [f"{n:4d}  {c}" for n, c in counts.items()]
    write_exhibit(results_dir, "ablation_vp_count", lines)

    values = list(counts.values())
    # Recall grows (weakly) with VP count and never exceeds ground truth.
    assert values[-1] > values[0]
    assert all(v <= entry.n_sites for v in values)
