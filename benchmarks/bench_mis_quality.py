"""Sec. 2.1 / [17] — greedy MIS quality vs brute force.

Paper: the greedy 5-approximation runs in O(0.1 s) per target against
O(1000 s) for the brute-force optimum, while "in practice yield[ing]
results that are very close to the optimum".
"""

import numpy as np
from conftest import write_exhibit

from repro.core.enumeration import exact_mis, greedy_mis
from repro.obs import Stopwatch
from repro.geo.coords import GeoPoint
from repro.geo.disks import Disk


def random_instance(n, seed):
    rng = np.random.default_rng(seed)
    return [
        Disk(
            GeoPoint(float(rng.uniform(-70, 70)), float(rng.uniform(-180, 180))),
            float(rng.uniform(50, 4000)),
        )
        for _ in range(n)
    ]


def test_mis_greedy_vs_exact(benchmark, results_dir):
    instances = [random_instance(18, seed) for seed in range(40)]

    def run_greedy_all():
        return [greedy_mis(disks) for disks in instances]

    greedy_results = benchmark.pedantic(run_greedy_all, rounds=1, iterations=1)

    with Stopwatch() as greedy_sw:
        for disks in instances:
            greedy_mis(disks)
    t_greedy = greedy_sw.elapsed_s
    with Stopwatch() as exact_sw:
        exact_results = [exact_mis(disks) for disks in instances]
    t_exact = exact_sw.elapsed_s

    ratios = [
        len(g) / len(e) if e else 1.0
        for g, e in zip(greedy_results, exact_results)
    ]
    optimal_share = float(np.mean([r == 1.0 for r in ratios]))
    lines = [
        "metric                         paper          measured",
        f"greedy/optimal size ratio      ~1 (close)     {np.mean(ratios):.3f} (mean)",
        f"instances solved optimally                    {optimal_share:.2f}",
        f"worst ratio                    >= 0.2 (bound) {min(ratios):.2f}",
        f"exact/greedy time ratio        ~10^4          {t_exact / max(t_greedy, 1e-9):.0f}x",
    ]
    write_exhibit(results_dir, "mis_quality", lines)

    # Greedy is near-optimal in practice and never below the 1/5 bound.
    assert np.mean(ratios) > 0.9
    assert optimal_share >= 0.6
    assert min(ratios) >= 0.2
    # And dramatically cheaper.
    assert t_exact > 5 * t_greedy
