"""VP×target scaling frontier — how far one host can push a census.

The paper's combined dataset is ~10.6M /24s × ~250 VPs; RIPE Atlas today
offers ~10k VPs.  At that product the dense planes alone are tens of GB,
so the binding constraints are *heap memory* and *wall time*, and the
Atlas-scale path exists to move both:

* the packed-key sort fold (vs the ``np.minimum.at`` scattered ufunc it
  replaced) buys fold throughput — measured here against the legacy
  formulation on identical inputs;
* streaming recordio + :class:`MatrixStore` take the journal *and* the
  output planes out of the Python heap — under a fixed heap budget the
  feasible VP×target product grows by the ratio this exhibit measures.

Two knobs bound the sweep so it ports across hosts and CI:

* ``REPRO_SCALE_TIME_BUDGET``  — seconds allowed per swept point
  (default 10); points that blow the budget stop the ladder;
* ``REPRO_MAX_SCALE_RSS_MB``   — heap-peak ceiling per point in MB
  (default 64): a point whose *tracked heap peak* exceeds it is
  infeasible.  Memmap pages intentionally do not count — spilling them
  is exactly the mechanism being exercised.

The frontier (largest feasible product per pipeline) is written as JSON
to ``benchmarks/results/scaling_frontier.json`` next to the textual
exhibit.  Acceptance gate: the streaming/store pipeline's frontier is
>= 4× the inline one-shot pipeline's under the same budgets.
"""

import io
import json
import os
import resource
import time
import tracemalloc

import numpy as np
from conftest import TINY_SCALE, write_exhibit

from repro.census.combine import (
    _fold_min_count,
    matrix_from_record_batches,
    matrix_from_records,
    reply_prefix_union,
)
from repro.measurement.recordio import (
    CensusRecords,
    iter_raw_batches,
    read_raw_checksummed,
    write_raw_checksummed,
)

#: Seconds allowed per swept point before the ladder stops.
TIME_BUDGET_S = float(os.environ.get("REPRO_SCALE_TIME_BUDGET", "10"))

#: Heap-peak ceiling per point (MB).  Inline planes count toward it;
#: memmap planes do not — that asymmetry *is* the scaling mechanism.
HEAP_BUDGET_MB = float(os.environ.get("REPRO_MAX_SCALE_RSS_MB", "64"))

#: Acceptance: streaming/store frontier over inline one-shot frontier.
MIN_FRONTIER_GAIN = 4.0

#: VP×target ladder (cells).  Each point doubles the product.
PRODUCT_LADDER = [1 << p for p in range(20, 26 if TINY_SCALE else 28)]

N_VPS = 128  # fixed roster width; targets scale the product

FOLD_RECORDS = 2_000_000 if not TINY_SCALE else 400_000


def _make_records(n_records: int, n_targets: int, n_vps: int, seed: int = 7):
    rng = np.random.default_rng(seed)
    return CensusRecords(
        census_id=1,
        vp_index=rng.integers(0, n_vps, n_records).astype(np.uint16),
        prefix=rng.integers(0, n_targets, n_records).astype(np.uint32),
        timestamp_ms=rng.uniform(0, 1e6, n_records),
        rtt_ms=rng.uniform(1.0, 300.0, n_records).astype(np.float32),
        flag=np.zeros(n_records, dtype=np.int8),
    )


# -- fold throughput: packed-key sort vs the legacy scattered ufuncs ----


def _fold_throughput():
    rng = np.random.default_rng(3)
    shape = (max(PRODUCT_LADDER[-1] // N_VPS // 8, 1), N_VPS)
    rows = rng.integers(0, shape[0], FOLD_RECORDS).astype(np.int64)
    cols = rng.integers(0, shape[1], FOLD_RECORDS).astype(np.int64)
    values = rng.uniform(1.0, 300.0, FOLD_RECORDS).astype(np.float32)

    legacy_rtt = np.full(shape, np.inf, dtype=np.float32)
    legacy_counts = np.zeros(shape, dtype=np.uint8)
    start = time.perf_counter()
    np.minimum.at(legacy_rtt, (rows, cols), values)
    np.add.at(legacy_counts, (rows, cols), 1)
    legacy_s = time.perf_counter() - start

    rtt = np.full(shape, np.inf, dtype=np.float32)
    counts = np.zeros(shape, dtype=np.uint8)
    start = time.perf_counter()
    _fold_min_count(rtt, counts, rows, cols, values)
    fold_s = time.perf_counter() - start

    assert rtt.tobytes() == legacy_rtt.tobytes(), "fold diverged from legacy bytes"
    assert counts.tobytes() == legacy_counts.tobytes()
    return {
        "records": FOLD_RECORDS,
        "legacy_s": legacy_s,
        "fold_s": fold_s,
        "speedup": legacy_s / fold_s,
        "legacy_records_per_budget": int(FOLD_RECORDS / legacy_s * TIME_BUDGET_S),
        "fold_records_per_budget": int(FOLD_RECORDS / fold_s * TIME_BUDGET_S),
    }


# -- the VP×target frontier sweep ---------------------------------------


def _measure(fn):
    """(wall seconds, tracked heap peak in MB, result) of one pipeline run."""
    tracemalloc.start()
    tracemalloc.reset_peak()
    base = tracemalloc.get_traced_memory()[0]
    start = time.perf_counter()
    result = fn()
    wall_s = time.perf_counter() - start
    peak_mb = (tracemalloc.get_traced_memory()[1] - base) / 1e6
    tracemalloc.stop()
    return wall_s, peak_mb, result


def _sweep_point(product: int, pipeline: str):
    """Run one (product, pipeline) point; returns its feasibility record.

    ``inline``   — materialize all records at once, heap output planes
                   (the classic path: everything counts against the heap);
    ``streaming``— fold bounded record batches into memmap-backed planes
                   (heap peak stays O(batch) regardless of product).
    """
    n_targets = product // N_VPS
    n_records = min(2 * n_targets, 4_000_000)
    names = [f"vp-{i:03d}" for i in range(N_VPS)]
    from repro.geo.coords import GeoPoint

    rng = np.random.default_rng(product % (2**31))
    locations = [
        GeoPoint(float(a), float(b))
        for a, b in zip(
            rng.uniform(-60, 60, N_VPS), rng.uniform(-170, 170, N_VPS)
        )
    ]

    if pipeline == "inline":
        def run():
            records = _make_records(n_records, n_targets, N_VPS)
            return matrix_from_records(records, names, locations, store="inline")
    else:
        batch = 1 << 18

        def batches():
            for lo in range(0, n_records, batch):
                yield _make_records(
                    min(batch, n_records - lo), n_targets, N_VPS, seed=lo
                )

        def run():
            prefixes = reply_prefix_union(batches())
            return matrix_from_record_batches(
                batches(), names, locations, prefixes=prefixes, store="memmap"
            )

    wall_s, peak_mb, matrix = _measure(run)
    if matrix.store is not None:
        matrix.store.close()
    return {
        "pipeline": pipeline,
        "product": product,
        "n_vps": N_VPS,
        "n_targets": n_targets,
        "n_records": n_records,
        "wall_s": round(wall_s, 3),
        "heap_peak_mb": round(peak_mb, 1),
        "feasible": wall_s <= TIME_BUDGET_S and peak_mb <= HEAP_BUDGET_MB,
    }


def _frontier(points):
    feasible = [p["product"] for p in points if p["feasible"]]
    return max(feasible) if feasible else 0


# -- streaming replay: heap peak sublinear in journal size --------------


def _replay_peaks():
    """Heap peaks of one-shot vs streaming journal replay at 1×/2×/4×."""
    out = []
    base_records = 100_000 if TINY_SCALE else 400_000
    for factor in (1, 2, 4):
        n = base_records * factor
        records = _make_records(n, n_targets=4096, n_vps=N_VPS)
        sink = io.BytesIO()
        write_raw_checksummed(records, sink)
        blob = sink.getvalue()
        del records, sink

        def one_shot():
            return read_raw_checksummed(io.BytesIO(blob))

        def streaming():
            total = 0
            for batch in iter_raw_batches(io.BytesIO(blob), batch_records=1 << 16):
                total += len(batch)
            return total

        _, one_peak, loaded = _measure(one_shot)
        del loaded
        _, stream_peak, streamed_n = _measure(streaming)
        assert streamed_n == n
        out.append(
            {
                "records": n,
                "one_shot_peak_mb": round(one_peak, 1),
                "streaming_peak_mb": round(stream_peak, 1),
            }
        )
    return out


def test_scaling_frontier(benchmark, results_dir):
    def sweep():
        fold = _fold_throughput()
        points = []
        for pipeline in ("inline", "streaming"):
            for product in PRODUCT_LADDER:
                point = _sweep_point(product, pipeline)
                points.append(point)
                if point["wall_s"] > TIME_BUDGET_S:
                    break  # the ladder only gets taller from here
        replay = _replay_peaks()
        return fold, points, replay

    fold, points, replay = benchmark.pedantic(sweep, rounds=1, iterations=1)

    inline_frontier = _frontier([p for p in points if p["pipeline"] == "inline"])
    stream_frontier = _frontier([p for p in points if p["pipeline"] == "streaming"])

    frontier = {
        "time_budget_s": TIME_BUDGET_S,
        "heap_budget_mb": HEAP_BUDGET_MB,
        "n_vps": N_VPS,
        "fold": fold,
        "points": points,
        "replay": replay,
        "inline_frontier_cells": inline_frontier,
        "streaming_frontier_cells": stream_frontier,
        "frontier_gain": (
            stream_frontier / inline_frontier if inline_frontier else float("inf")
        ),
        "ru_maxrss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024,
    }
    (results_dir / "scaling_frontier.json").write_text(
        json.dumps(frontier, indent=2) + "\n"
    )

    lines = [
        f"budgets: {TIME_BUDGET_S:.0f}s per point, {HEAP_BUDGET_MB:.0f} MB heap peak",
        f"fold: {fold['records']:,} records  legacy(minimum.at)={fold['legacy_s']:.3f}s"
        f"  packed-sort={fold['fold_s']:.3f}s  speedup={fold['speedup']:.2f}x",
        f"{'pipeline':>10s} {'cells':>12s} {'wall s':>8s} {'heap MB':>8s} {'feasible':>9s}",
    ]
    for p in points:
        lines.append(
            f"{p['pipeline']:>10s} {p['product']:12,d} {p['wall_s']:8.2f} "
            f"{p['heap_peak_mb']:8.1f} {str(p['feasible']):>9s}"
        )
    lines.append(
        f"frontier: inline={inline_frontier:,} cells  "
        f"streaming={stream_frontier:,} cells  "
        f"gain={frontier['frontier_gain'] if inline_frontier else 'inf'}"
    )
    for r in replay:
        lines.append(
            f"replay {r['records']:>9,d} records: one-shot peak "
            f"{r['one_shot_peak_mb']:6.1f} MB   streaming peak "
            f"{r['streaming_peak_mb']:6.1f} MB"
        )
    write_exhibit(results_dir, "scaling_frontier", lines)

    # -- gates ----------------------------------------------------------
    # The packed-key fold must not lose to the scattered ufuncs it
    # replaced (and should beat them well clear of noise).
    assert fold["speedup"] >= 1.2, fold

    # Streaming replay's heap peak must be sublinear in journal size:
    # 4x the records may not even double the peak (it is O(batch)).
    quad = {r["records"]: r for r in replay}
    smallest, largest = min(quad), max(quad)
    assert largest == smallest * 4
    assert (
        quad[largest]["streaming_peak_mb"]
        <= 2.0 * max(quad[smallest]["streaming_peak_mb"], 1.0)
    ), replay
    # ... while the one-shot reader's peak is ~linear (sanity that the
    # comparison measures what it claims).
    assert (
        quad[largest]["one_shot_peak_mb"]
        >= 2.0 * quad[smallest]["one_shot_peak_mb"]
    ), replay

    # The headline: under the same budgets the streaming/store pipeline
    # reaches a >= 4x larger VP×target product than inline one-shot.
    assert inline_frontier > 0, points
    assert stream_frontier >= MIN_FRONTIER_GAIN * inline_frontier, frontier

    # Optional absolute ceiling for CI: whole-process RSS stays bounded.
    if os.environ.get("REPRO_MAX_SCALE_RSS_MB"):
        assert frontier["ru_maxrss_mb"] <= HEAP_BUDGET_MB * 16, frontier
