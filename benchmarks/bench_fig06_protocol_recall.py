"""Fig. 6 — response rates seen by heterogeneous protocols.

Paper: across OpenDNS, EdgeCast, CloudFlare and Microsoft, protocols other
than ICMP have *binary* recall — near-100% when the matching service runs
on the target, near-0% otherwise — while ICMP replies everywhere, which is
why the census uses ICMP.
"""

from conftest import write_exhibit

from repro.census.protocols import ProbeProtocol, protocol_recall_table

TARGETS = ["OPENDNS,US", "EDGECAST,US", "CLOUDFLARENET,US", "MICROSOFT,US"]

# Paper's qualitative matrix (Fig. 6): which bars are high.
PAPER_HIGH = {
    ("OPENDNS,US", "ICMP"): True, ("OPENDNS,US", "TCP-53"): True,
    ("OPENDNS,US", "TCP-80"): True, ("OPENDNS,US", "DNS/UDP"): True,
    ("OPENDNS,US", "DNS/TCP"): True,
    ("EDGECAST,US", "ICMP"): True, ("EDGECAST,US", "TCP-53"): True,
    ("EDGECAST,US", "TCP-80"): True, ("EDGECAST,US", "DNS/UDP"): False,
    ("EDGECAST,US", "DNS/TCP"): False,
    ("CLOUDFLARENET,US", "ICMP"): True, ("CLOUDFLARENET,US", "TCP-53"): True,
    ("CLOUDFLARENET,US", "TCP-80"): True, ("CLOUDFLARENET,US", "DNS/UDP"): False,
    ("CLOUDFLARENET,US", "DNS/TCP"): False,
    ("MICROSOFT,US", "ICMP"): True, ("MICROSOFT,US", "TCP-53"): False,
    ("MICROSOFT,US", "TCP-80"): False, ("MICROSOFT,US", "DNS/UDP"): False,
    ("MICROSOFT,US", "DNS/TCP"): False,
}


def test_fig06_protocol_recall(benchmark, paper_study, results_dir):
    deployments = [paper_study.deployment(name) for name in TARGETS]

    table = benchmark.pedantic(
        protocol_recall_table, args=(deployments,), rounds=1, iterations=1
    )

    lines = [f"{'deployment':18s} " + " ".join(f"{p.value:>8s}" for p in ProbeProtocol)]
    for name in TARGETS:
        rates = table[name]
        lines.append(
            f"{name:18s} " + " ".join(f"{rates[p.value]:8.2f}" for p in ProbeProtocol)
        )
    write_exhibit(results_dir, "fig06_protocol_recall", lines)

    for (name, proto), high in PAPER_HIGH.items():
        rate = table[name][proto]
        if high:
            assert rate > 0.85, (name, proto, rate)
        else:
            assert rate < 0.15, (name, proto, rate)
