"""Shared state for the benchmark harness.

Every benchmark regenerates one exhibit (table or figure) of the paper.
The expensive inputs — a four-census study at near-paper anycast scale —
are computed once per session and shared; each benchmark times its own
exhibit-specific computation and writes a ``paper vs measured`` comparison
to ``benchmarks/results/<exhibit>.txt``.

Scale notes: the anycast population is the catalog's full ~1,640 /24s in
360 ASes (1:1 with the paper); the unicast haystack is 8,000 /24s instead
of 10.6M (funnel ratios are compared, not absolute counts); the platform
is 250 PlanetLab-like nodes (the paper's censuses used 240-269).
"""

from __future__ import annotations

import os
import pathlib
from typing import Sequence

import pytest

from repro.core.igreedy import IGreedyConfig
from repro.internet.topology import InternetConfig
from repro.workflow import CensusStudy, StudyConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: ``REPRO_BENCH_TINY=1`` shrinks the shared study to CI scale (a couple
#: of minutes end to end).  Benchmarks must keep their *relative* gates
#: (speedups, ratios) under this knob and guard absolute paper-scale
#: assertions (counts, extrapolated hours) behind :data:`TINY_SCALE`.
TINY_SCALE = os.environ.get("REPRO_BENCH_TINY", "") not in ("", "0")

#: Paper-scale study configuration shared by all benchmarks.
PAPER_SCALE = StudyConfig(
    internet=InternetConfig(
        seed=2015,
        n_unicast_slash24=800 if TINY_SCALE else 8_000,
        tail_deployments=40 if TINY_SCALE else 260,
    ),
    n_vantage_points=60 if TINY_SCALE else 250,
    n_censuses=2 if TINY_SCALE else 4,
    availability=0.85,
    rate_pps=1000.0,
    igreedy=IGreedyConfig(),
)


@pytest.fixture(scope="session")
def paper_study() -> CensusStudy:
    """The shared four-census study (evaluated lazily, cached per session)."""
    return CensusStudy(PAPER_SCALE)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_exhibit(results_dir: pathlib.Path, name: str, lines: Sequence[str]) -> None:
    """Persist one exhibit's paper-vs-measured comparison."""
    path = results_dir / f"{name}.txt"
    path.write_text("\n".join(lines) + "\n")
