"""Resilience overhead — guarding clean data must be nearly free.

The resilience layer sits on every stage boundary, so its clean-path
cost is paid by *every* supervised study.  The sanitizers are built for
a zero-copy fast path (a clean batch is returned as the same object), so
the guarded run must stay within a small factor of the bare run.  We
also record the chaos-path cost: a fully supervised run under a 25%
NaN-RTT poison, which exercises quarantine accounting, matrix rebuilds,
and confidence verdicts.
"""

from conftest import write_exhibit

from repro.measurement.faults import PoisonKind, PoisonPlan
from repro.obs import Stopwatch
from repro.resilience import ResiliencePolicy
from repro.workflow import small_study

ROUNDS = 3
MAX_RELATIVE_OVERHEAD = 0.05
ABSOLUTE_SLACK_S = 0.05


def _timed_run(resilience=None, poison=None) -> float:
    study = small_study(seed=2015, resilience=resilience, poison=poison)
    with Stopwatch() as sw:
        study.characterization  # force the full pipeline
    return sw.elapsed_s


def test_resilience_overhead(results_dir):
    _timed_run()  # warm up imports / allocator before timing anything

    plain, guarded, chaos = [], [], []
    for _ in range(ROUNDS):  # interleaved so drift hits all arms equally
        plain.append(_timed_run())
        guarded.append(_timed_run(resilience=ResiliencePolicy()))
        chaos.append(
            _timed_run(
                resilience=ResiliencePolicy(),
                poison=PoisonPlan.single(PoisonKind.NAN_RTT, 0.25),
            )
        )

    t_plain, t_guarded, t_chaos = min(plain), min(guarded), min(chaos)
    overhead = t_guarded - t_plain
    relative = overhead / t_plain

    probe = small_study(seed=2015, resilience=ResiliencePolicy())
    probe.characterization
    stages = len(probe.degradation_report.stages)

    lines = [
        "metric                              budget         measured",
        f"bare pipeline (best of {ROUNDS})                           {t_plain * 1000.0:.1f} ms",
        f"supervised, clean (best of {ROUNDS})                       {t_guarded * 1000.0:.1f} ms",
        f"supervised, 25% NaN poison (best of {ROUNDS})              {t_chaos * 1000.0:.1f} ms",
        f"clean-path overhead                                {overhead * 1000.0:+.1f} ms",
        f"clean-path relative overhead        < 5%           {relative * 100.0:+.2f}%",
        f"stages supervised per run                          {stages}",
        f"items quarantined on clean run      0              {probe.quarantine.total}",
    ]
    write_exhibit(results_dir, "resilience_overhead", lines)

    assert probe.quarantine.total == 0
    assert overhead <= MAX_RELATIVE_OVERHEAD * t_plain + ABSOLUTE_SLACK_S, (
        f"resilience overhead {overhead * 1000.0:.1f} ms "
        f"({relative * 100.0:.1f}%) exceeds the 5% budget"
    )
