"""Fig. 10 — censuses at a glance: the headline summary table.

Paper values (combination of four censuses):

    All            1696 IP/24   346 ASes   77 cities   38 CC   13,802 replicas
    >= 5 Replicas   897 IP/24   100 ASes   71 cities   36 CC   11,598 replicas
    /\\ CAIDA-100     19 IP/24     8 ASes   30 cities   18 CC      138 replicas
    /\\ Alexa-100k   242 IP/24    15 ASes   45 cities   29 CC    4,038 replicas

Our city/CC counts exceed the paper's because the synthetic gazetteer is
denser than PlanetLab's effective coverage; the IP/24 and AS columns are
the comparable ones.
"""

from conftest import write_exhibit

PAPER = {
    "All": (1696, 346),
    ">= 5 Replicas": (897, 100),
    "/\\ CAIDA-100": (19, 8),
    "/\\ Alexa-100k": (242, 15),
}


def test_fig10_glance_table(benchmark, paper_study, results_dir):
    # Force the expensive stages outside the timed region.
    paper_study.analysis

    rows = benchmark.pedantic(paper_study.glance_table, rounds=1, iterations=1)

    lines = [f"{'row':16s} {'paper ip24':>10s} {'ours ip24':>10s} {'paper ASes':>10s} {'ours ASes':>10s}"]
    for row in rows:
        paper_ip24, paper_ases = PAPER[row.label]
        lines.append(
            f"{row.label:16s} {paper_ip24:10d} {row.ip24:10d} {paper_ases:10d} {row.ases:10d}"
        )
        lines.append(
            f"{'':16s} cities={row.cities} cc={row.countries} replicas={row.replicas}"
        )
    write_exhibit(results_dir, "fig10_glance", lines)

    by_label = {r.label: r for r in rows}
    # Shape assertions: within ~15% of the paper on the comparable columns.
    assert abs(by_label["All"].ip24 - 1696) / 1696 < 0.15
    assert abs(by_label["All"].ases - 346) / 346 < 0.15
    assert abs(by_label[">= 5 Replicas"].ip24 - 897) / 897 < 0.15
    assert abs(by_label[">= 5 Replicas"].ases - 100) / 100 < 0.15
    # The rank intersections are exact ground-truth joins.
    assert by_label["/\\ CAIDA-100"].ip24 == 19
    assert by_label["/\\ CAIDA-100"].ases == 8
    assert by_label["/\\ Alexa-100k"].ip24 == 242
    assert by_label["/\\ Alexa-100k"].ases == 15
    # Ordering between rows must match the paper.
    assert by_label["All"].replicas > by_label[">= 5 Replicas"].replicas
    assert by_label["/\\ Alexa-100k"].replicas > by_label["/\\ CAIDA-100"].replicas
