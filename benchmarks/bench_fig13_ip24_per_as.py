"""Fig. 13 — CDF of the number of anycast IP/24s per AS.

Paper: about half of the ASes have exactly one anycast /24; ~10% employ at
least 10 subnets; the heavy hitters are Prolexic (21), EdgeCast (37),
Google (102) and CloudFlare (328).
"""

import numpy as np
from conftest import write_exhibit

PAPER_HEAVY = {32787: 21, 15133: 37, 15169: 102, 13335: 328}
NAMES = {32787: "PROLEXIC", 15133: "EDGECAST", 15169: "GOOGLE", 13335: "CLOUDFLARE"}


def test_fig13_ip24_per_as(benchmark, paper_study, results_dir):
    paper_study.analysis

    per_as = benchmark.pedantic(
        paper_study.characterization.ip24_per_as, rounds=1, iterations=1
    )

    counts = np.array(sorted(per_as.values()))
    one = float((counts == 1).mean())
    ten_plus = float((counts >= 10).mean())
    lines = [
        "metric                          paper   measured",
        f"share of ASes with exactly 1    ~0.50   {one:.2f}",
        f"share of ASes with >= 10        ~0.10   {ten_plus:.2f}",
    ]
    for asn, paper_count in PAPER_HEAVY.items():
        lines.append(
            f"{NAMES[asn]:<16s}               {paper_count:6d}   {per_as.get(asn, 0)}"
        )
    write_exhibit(results_dir, "fig13_ip24_per_as", lines)

    assert 0.30 <= one <= 0.60
    assert 0.05 <= ten_plus <= 0.20
    # Heavy hitters detected with nearly their full footprint.
    for asn, paper_count in PAPER_HEAVY.items():
        assert per_as.get(asn, 0) >= 0.9 * paper_count, NAMES[asn]
        assert per_as.get(asn, 0) <= paper_count
    # CloudFlare is by far the largest (paper Sec. 4.2).
    assert max(per_as, key=per_as.get) == 13335
