"""Fig. 11 — breakdown of AS business categories.

Paper: DNS now represents about one third of IP-anycast ASes; CDNs, cloud
providers, ISPs, security companies, social networks and a long 'other'
tail make up the rest.
"""

from conftest import write_exhibit

# Approximate paper bar heights (share of top-100 ASes).
PAPER = {"DNS": 0.34, "CDN": 0.17, "Cloud": 0.15, "ISP": 0.10,
         "Unknown": 0.07, "Security": 0.04, "Social": 0.03, "Other": 0.10}


def test_fig11_category_breakdown(benchmark, paper_study, results_dir):
    paper_study.analysis

    breakdown = benchmark.pedantic(
        paper_study.characterization.category_breakdown, rounds=1, iterations=1
    )

    lines = [f"{'category':10s} {'paper':>6s} {'ours':>6s}"]
    for cat in PAPER:
        lines.append(f"{cat:10s} {PAPER[cat]:6.2f} {breakdown.get(cat, 0.0):6.2f}")
    write_exhibit(results_dir, "fig11_categories", lines)

    assert sum(breakdown.values()) == 1.0 or abs(sum(breakdown.values()) - 1.0) < 1e-9
    # DNS about one third, and the largest single category.
    assert 0.2 <= breakdown.get("DNS", 0.0) <= 0.45
    assert breakdown["DNS"] == max(breakdown.values())
    # CDN and Cloud clearly present.
    assert breakdown.get("CDN", 0.0) >= 0.08
    assert breakdown.get("Cloud", 0.0) >= 0.08
