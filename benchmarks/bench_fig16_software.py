"""Fig. 16 — breakdown of software running on anycast replicas.

Paper: 30 fingerprinted implementations across DNS / Web / Mail / Other;
ISC BIND is by far the most adopted DNS daemon (NSD appears at Apple,
K-root and L-root, chosen for implementation diversity); nginx leads the
web servers, with Apache httpd and lighttpd ex aequo behind; Google's
mail daemons and a handful of RPC/database servers close the list.  The
software popularity ranking differs from the unicast web (low Spearman
correlation with the w3techs ranking).
"""

from conftest import write_exhibit

from repro.net.services import SOFTWARE_CATALOG, SoftwareCategory


def test_fig16_software_breakdown(benchmark, paper_study, results_dir):
    report = paper_study.portscan

    by_as = benchmark.pedantic(report.software_by_as, rounds=1, iterations=1)

    counts = {name: len(ases) for name, ases in by_as.items()}
    ranked = sorted(counts.items(), key=lambda kv: -kv[1])
    lines = [f"{'software':20s} {'category':6s} {'#ASes':>6s}"]
    for name, count in ranked:
        lines.append(
            f"{name:20s} {SOFTWARE_CATALOG[name].category.value:6s} {count:6d}"
        )
    write_exhibit(results_dir, "fig16_software", lines)

    # ISC BIND dominates DNS software.
    dns = {n: c for n, c in counts.items()
           if SOFTWARE_CATALOG[n].category is SoftwareCategory.DNS}
    assert max(dns, key=dns.get) == "ISC BIND"
    # NSD present but rare (Apple + K-root + L-root).
    assert 1 <= counts.get("NLnet Labs NSD", 0) <= 4
    # nginx leads the web servers.
    web = {n: c for n, c in counts.items()
           if SOFTWARE_CATALOG[n].category is SoftwareCategory.WEB}
    assert max(web, key=web.get) == "nginx"
    # Mail daemons (Google) and Other (SSH/DB) categories appear.
    cats = {SOFTWARE_CATALOG[n].category for n in counts}
    assert SoftwareCategory.MAIL in cats
    assert SoftwareCategory.OTHER in cats
    # Within the paper's 30-implementation universe.
    assert 15 <= len(counts) <= 30
