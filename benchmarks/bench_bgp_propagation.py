"""BGP propagation throughput — the cost of real catchments.

``routing="bgp"`` replaces the geographic catchment heuristic with
Gao-Rexford propagation over a ~1k-AS graph: one bucketed three-phase
BFS per deployment.  This exhibit times graph construction and the full
per-deployment propagation sweep at catalog scale, plus the incremental
cost of injecting an attacker announcement (the routing-chaos path),
and records routes/second so the perf trajectory tracks the routing
plane alongside the census fastpath.

Acceptance: the sweep must finish within
``REPRO_MAX_BGP_PROPAGATION_SECONDS`` (default 30; opt out by exporting
an empty value).  The gate is wall-clock on shared CI runners, so the
default leaves generous headroom — the point is catching accidental
quadratic regressions, not shaving milliseconds.
"""

from __future__ import annotations

import os
import time

from conftest import TINY_SCALE, write_exhibit

from repro.bgp import Announcement, BgpConfig, BgpRoutingPlane, build_as_graph
from repro.internet.topology import InternetConfig, SyntheticInternet

_GATE = os.environ.get("REPRO_MAX_BGP_PROPAGATION_SECONDS", "30")
MAX_SECONDS = float(_GATE) if _GATE else None


def test_bgp_propagation_throughput(results_dir):
    internet = SyntheticInternet(
        InternetConfig(
            seed=2015,
            n_unicast_slash24=400 if TINY_SCALE else 2_000,
            tail_deployments=40 if TINY_SCALE else 260,
            routing="bgp",
        )
    )

    t0 = time.perf_counter()
    graph = build_as_graph(
        BgpConfig(), seed=internet.config.seed, city_db=internet.city_db
    )
    graph_seconds = time.perf_counter() - t0

    plane = BgpRoutingPlane(graph)
    deployments = internet.deployments
    t0 = time.perf_counter()
    total_routes = 0
    for dep in deployments:
        routes = plane.deployment_routes(dep)
        total_routes += int(routes.outcome.reachable.sum())
    sweep_seconds = time.perf_counter() - t0

    # Chaos path: appending an attacker re-propagates one deployment.
    origins = set(int(a) for a in plane.site_attachments(deployments[0]))
    attacker = next(
        int(a)
        for a in graph.infrastructure_indices()
        if int(a) not in origins
    )
    t0 = time.perf_counter()
    plane.deployment_routes(
        deployments[0],
        extra=[
            Announcement(
                origin_as=attacker, site=deployments[0].site_count
            )
        ],
    )
    inject_seconds = time.perf_counter() - t0

    rate = total_routes / sweep_seconds if sweep_seconds else float("inf")
    lines = [
        f"AS graph: {graph.n_ases} ASes, "
        f"{graph.n_provider_edges} provider edges, "
        f"{graph.n_peer_edges} peer edges "
        f"(built in {graph_seconds:.2f}s)",
        f"catchment sweep: {len(deployments)} deployments, "
        f"{total_routes} routes in {sweep_seconds:.2f}s "
        f"({rate:,.0f} routes/s)",
        f"attacker injection: one re-propagation in "
        f"{inject_seconds * 1000:.1f}ms",
        f"gate: REPRO_MAX_BGP_PROPAGATION_SECONDS="
        f"{MAX_SECONDS if MAX_SECONDS is not None else 'off'}",
        f"tiny scale: {TINY_SCALE}",
    ]
    write_exhibit(results_dir, "bgp_propagation", lines)

    assert total_routes > 0
    if MAX_SECONDS is not None:
        elapsed = graph_seconds + sweep_seconds
        assert elapsed <= MAX_SECONDS, (
            f"BGP propagation took {elapsed:.1f}s "
            f"(budget {MAX_SECONDS:.0f}s)"
        )
