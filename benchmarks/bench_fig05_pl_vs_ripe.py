"""Fig. 5 — Microsoft's deployment seen from PlanetLab vs RIPE Atlas.

Paper: PlanetLab uncovers 21 replicas of Microsoft's anycast deployment;
RIPE Atlas, with an order of magnitude more (and better spread) vantage
points, uncovers 54 — and the PlanetLab replica set is a subset of RIPE's.

We instantiate Microsoft's ground truth (54 sites, per the RIPE view) and
measure it from a 260-node PlanetLab-like platform and a 1,500-node
RIPE-like platform.
"""

from conftest import write_exhibit

from repro.census.analysis import analyze_matrix
from repro.census.combine import matrix_from_census
from repro.internet.catalog import TOP100_ENTRIES
from repro.internet.topology import InternetConfig, SyntheticInternet
from repro.measurement.campaign import CensusCampaign
from repro.measurement.platform import planetlab_platform, ripe_platform

MICROSOFT = next(e for e in TOP100_ENTRIES if e.name == "MICROSOFT,US")


def enumerate_from(platform, internet, city_db):
    campaign = CensusCampaign(internet, platform, seed=55)
    census = campaign.run_census(availability=1.0)
    analysis = analyze_matrix(matrix_from_census(census), city_db=city_db)
    prefix = internet.deployments[0].prefixes[0]
    result = analysis.results.get(prefix)
    return set(result.city_names) if result else set()


def test_fig05_platform_comparison(benchmark, results_dir, city_db=None):
    from repro.geo.cities import default_city_db

    db = default_city_db()
    internet = SyntheticInternet(
        InternetConfig(seed=2015, n_unicast_slash24=0, tail_deployments=0),
        catalog=[MICROSOFT],
        city_db=db,
    )
    pl = planetlab_platform(count=260, seed=41, city_db=db)
    ripe = ripe_platform(count=1500, seed=43, city_db=db)

    def run():
        return enumerate_from(pl, internet, db), enumerate_from(ripe, internet, db)

    pl_cities, ripe_cities = benchmark.pedantic(run, rounds=1, iterations=1)

    truth = {f"{c.name},{c.country}" for c in internet.deployments[0].site_cities}
    lines = [
        "metric                      paper   measured",
        f"PlanetLab replicas             21   {len(pl_cities)}",
        f"RIPE replicas                  54   {len(ripe_cities)}",
        f"ground-truth sites             54   {len(truth)}",
        f"PL subset of RIPE            True   {pl_cities <= ripe_cities}",
        f"PL cities in truth                  {len(pl_cities & truth)}",
        f"RIPE cities in truth                {len(ripe_cities & truth)}",
    ]
    write_exhibit(results_dir, "fig05_pl_vs_ripe", lines)

    # RIPE must see substantially more of the deployment than PlanetLab.
    assert len(ripe_cities) > len(pl_cities)
    assert len(ripe_cities) >= 1.3 * len(pl_cities)
    # Both are conservative: never more replicas than ground truth.
    assert len(pl_cities) <= 54
    assert len(ripe_cities) <= 54
    # PlanetLab's view is (mostly) contained in RIPE's richer view.  The
    # comparison goes through the ground truth: of the PL replicas that are
    # *correctly named*, RIPE re-discovers the large majority (raw name
    # overlap would conflate coverage with geolocation-naming noise).
    pl_correct = pl_cities & truth
    if pl_correct:
        assert len(pl_correct & ripe_cities) / len(pl_correct) > 0.6
