"""Sec. 3.5 — the probing-rate lesson.

Paper: at fastping's native rate (>10,000 pps) the reply aggregate at the
vantage point triggers policing on some hosting networks, producing
"heterogeneous (and possibly very high) drop rates for some VPs"; slowing
the prober down by one order of magnitude (to ~1,000 pps) removes the
problem, at the cost of a ~2-hour sending time for 6.6M targets.
"""

import numpy as np
from conftest import write_exhibit

from repro.internet.topology import InternetConfig, SyntheticInternet
from repro.measurement.campaign import CensusCampaign
from repro.measurement.platform import planetlab_platform
from repro.measurement.prober import FULL_RATE_PPS, SAFE_RATE_PPS


def test_probing_rate_lesson(benchmark, results_dir):
    internet = SyntheticInternet(
        InternetConfig(seed=77, n_unicast_slash24=1500, tail_deployments=40)
    )
    platform = planetlab_platform(count=120, seed=41)

    def run_both():
        fast_campaign = CensusCampaign(internet, platform, rate_pps=FULL_RATE_PPS, seed=1)
        fast = fast_campaign.run_census(availability=1.0)
        slow_campaign = CensusCampaign(internet, platform, rate_pps=SAFE_RATE_PPS, seed=1)
        slow = slow_campaign.run_census(availability=1.0)
        return fast, slow

    fast, slow = benchmark.pedantic(run_both, rounds=1, iterations=1)

    fast_drops = fast.vp_drop_rate
    slow_drops = slow.vp_drop_rate
    lines = [
        "metric                            fast (10k pps)   slow (1k pps)",
        f"VPs with any drops                {(fast_drops > 0).mean():14.2f}   {(slow_drops > 0).mean():13.2f}",
        f"max per-VP drop rate              {fast_drops.max():14.2f}   {slow_drops.max():13.2f}",
        f"drop-rate std across VPs          {fast_drops.std():14.2f}   {slow_drops.std():13.2f}",
        f"median completion (h, at 6.6M targets scale)",
        f"  fast: {np.median(fast.vp_duration_hours) * 6_600_000 / internet.n_targets:.2f}"
        f"   slow: {np.median(slow.vp_duration_hours) * 6_600_000 / internet.n_targets:.2f}",
    ]
    write_exhibit(results_dir, "probing_rate", lines)

    # Fast scanning: a sizeable minority of VPs drop heavily and drop rates
    # are heterogeneous (the paper's observation).
    assert (fast_drops > 0.2).mean() > 0.1
    assert fast_drops.std() > 0.1
    # Slow scanning: clean.
    assert slow_drops.max() == 0.0
    # The price: 10x the sending time.
    assert np.median(slow.vp_duration_hours) > 5 * np.median(fast.vp_duration_hours)
