"""Parallel scaling — pool speedup over the serial census loop.

The paper's four censuses each probed ~10.6M /24s from ~250 vantage
points; at that scale the scan phase only makes sense sharded across
workers.  This exhibit runs one census of a mid-size study serially and
on the supervised pool at 1/2/4 workers, checks the hard invariant
(byte-identical output at every worker count), and records the speedup
curve to seed the perf trajectory.

The >=2x-at-4-workers acceptance gate is asserted only where the host
actually has >= 4 CPUs: the pool cannot beat physics on a 1-core
container, but the curve is still measured and written so the numbers
travel with the repo either way.
"""

import os
import time

from conftest import write_exhibit

from repro.exec import ExecutionPolicy
from repro.exec.pool import fork_available
from repro.internet.topology import InternetConfig, SyntheticInternet
from repro.measurement.campaign import CensusCampaign
from repro.measurement.platform import planetlab_platform

WORKER_COUNTS = [1, 2, 4]

#: Acceptance: 4 workers must be at least this much faster than serial —
#: enforced only on hosts with >= 4 CPUs.
MIN_SPEEDUP_AT_4 = 2.0


def _campaign(internet, platform, executor=None):
    campaign = CensusCampaign(internet, platform, seed=600, executor=executor)
    campaign.run_precensus()
    return campaign


def _timed_census(campaign):
    start = time.perf_counter()
    census = campaign.run_census(availability=0.85)
    return census, time.perf_counter() - start


def test_parallel_scaling_speedup(benchmark, results_dir):
    # Big enough that one serial census takes ~1s of pure scan compute:
    # fork + IPC overhead must be amortized for the curve to mean anything.
    internet = SyntheticInternet(
        InternetConfig(seed=2015, n_unicast_slash24=12_000, tail_deployments=150)
    )
    platform = planetlab_platform(count=128, seed=23)

    def sweep():
        out = {}
        out["serial"] = _timed_census(_campaign(internet, platform))
        for workers in WORKER_COUNTS:
            policy = ExecutionPolicy(workers=workers, submit_seed=workers)
            out[workers] = _timed_census(
                _campaign(internet, platform, executor=policy)
            )
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    serial_census, serial_s = results["serial"]
    lines = [
        f"host CPUs: {os.cpu_count()}   fork: {fork_available()}",
        f"{'engine':>10s} {'wall s':>8s} {'speedup':>8s} {'checksum match':>15s}",
        f"{'serial':>10s} {serial_s:8.2f} {1.0:8.2f}x {'—':>15s}",
    ]
    speedups = {}
    for workers in WORKER_COUNTS:
        census, wall_s = results[workers]
        speedups[workers] = serial_s / wall_s
        identical = census.records.checksum() == serial_census.records.checksum()
        lines.append(
            f"{workers:9d}w {wall_s:8.2f} {speedups[workers]:8.2f}x "
            f"{str(identical):>15s}"
        )
        # The invariant the whole engine exists to uphold: bytes never
        # depend on the worker count.
        assert identical, f"workers={workers} diverged from serial bytes"
    write_exhibit(results_dir, "parallel_scaling", lines)

    if fork_available() and (os.cpu_count() or 1) >= 4:
        assert speedups[4] >= MIN_SPEEDUP_AT_4, speedups
