"""Roster churn — a VP sitting out a day must not force a cold run.

Before per-VP column signatures, any roster motion (one node down for
maintenance, one rejoining) changed every target's signature and pushed
the whole epoch through a cold recompute.  With roster-free signatures
plus multi-epoch baseline history, an epoch under mild churn recomputes
only the rows the moving VPs actually measured and recovers
pre-disconnect targets from history.

The benchmark replays the validated churn scenario (20 VPs, 5% keyed
per-epoch dropout, ``roster_seed=11``), picks the committed epoch whose
plan leaned hardest on copy/recovery, and times the *analysis stage* of
that epoch both ways on the identical matrix:

* ``cold``        — every target re-analyzed from scratch;
* ``incremental`` — churn-surviving targets copied or recovered.

Gates:

* the two analysis paths must produce *identical* result documents;
* incremental time <= ``REPRO_MAX_ROSTER_CHURN_RATIO`` (default 0.25)
  of cold time.  The budget is looser than the stable-roster gate
  (``bench_incremental_census``): a joining VP legitimately touches
  every target it measured.

``REPRO_BENCH_TINY=1`` shrinks the world; the relative gate holds.
"""

from __future__ import annotations

import os

from conftest import TINY_SCALE, write_exhibit

from repro.census.combine import matrix_from_census
from repro.measurement.campaign import CensusCampaign
from repro.obs import Stopwatch
from repro.service import CensusService, ServiceConfig, plan_delta, target_signatures

ROUNDS = 3
EPOCHS = 8
MAX_RATIO = float(os.environ.get("REPRO_MAX_ROSTER_CHURN_RATIO", "0.25"))


def build_service(tmp_path) -> CensusService:
    return CensusService(
        ServiceConfig(
            archive_root=str(tmp_path / "archive"),
            n_unicast=150 if TINY_SCALE else 600,
            tail_deployments=4 if TINY_SCALE else 12,
            n_vps=20,
            roster_churn_prob=0.05,
            roster_seed=11,
            baseline_depth=4,
        )
    )


def rebuild_matrix(service: CensusService, epoch: int):
    """The epoch's matrix, bit-identical to what ``run_epoch`` saw
    (everything is keyed: world, roster dropout, campaign noise)."""
    cfg = service.config
    internet = service.internet_for(epoch)
    campaign = CensusCampaign(
        internet,
        service.platform_for(epoch),
        seed=cfg.campaign_seed,
        degraded_fraction=cfg.degraded_fraction,
        noise=cfg.noise,
    )
    campaign.run_precensus()
    census = campaign.run_census(availability=cfg.availability)
    return internet, matrix_from_census(census)


def test_roster_churn_incremental_ratio(tmp_path, results_dir):
    service = build_service(tmp_path)
    outcomes = [service.run_epoch(e) for e in range(EPOCHS)]

    rosters = {
        tuple(
            vp["name"] for vp in service.archive.read_manifest(e)["vantage_points"]
        )
        for e in range(EPOCHS)
    }
    assert len(rosters) > 1, "the churn scenario kept a frozen roster"

    # The epoch that leaned hardest on the churn machinery: incremental
    # despite roster motion, most targets copied or recovered.
    candidates = [
        o for o in outcomes[1:] if o.mode == "incremental" and o.n_copied > 0
    ]
    assert candidates, "no churned epoch stayed incremental"
    target = max(candidates, key=lambda o: o.n_copied + o.n_recovered)
    epoch = target.epoch

    internet, matrix = rebuild_matrix(service, epoch)
    signatures = target_signatures(matrix)

    baseline_epoch = epoch - 1
    baseline_doc = service.archive.read_results(baseline_epoch)
    baseline_signatures = service._baseline_signatures(baseline_doc)
    history_docs = {}
    history = []
    older = [e for e in service.archive.epochs() if e < baseline_epoch]
    for old_epoch in older[-service.config.baseline_depth :]:
        doc = service.archive.read_results(old_epoch)
        history_docs[old_epoch] = doc
        history.append((old_epoch, service._baseline_signatures(doc)))

    plan_incremental = plan_delta(
        signatures,
        baseline_signatures,
        baseline_epoch=baseline_epoch,
        churn_threshold=service.config.churn_threshold,
        history=history,
    )
    plan_cold = plan_delta(signatures, None)
    assert plan_incremental.mode == "incremental"

    cold_times, incremental_times = [], []
    for _ in range(ROUNDS):  # interleaved so drift hits both arms equally
        with Stopwatch() as sw:
            cold_doc, n_cold, _, _ = service._analyze(
                matrix, internet, signatures, plan_cold, None, epoch
            )
        cold_times.append(sw.elapsed_s)
        with Stopwatch() as sw:
            incremental_doc, n_inc, n_copied, n_recovered = service._analyze(
                matrix,
                internet,
                signatures,
                plan_incremental,
                baseline_doc,
                epoch,
                history_docs=history_docs,
            )
        incremental_times.append(sw.elapsed_s)

    # Safety: whatever mix of copy/recover/recompute, byte-identical.
    assert incremental_doc == cold_doc, "incremental analysis diverged from cold"
    assert incremental_doc == service.archive.read_results(epoch)

    t_cold, t_incremental = min(cold_times), min(incremental_times)
    ratio = t_incremental / t_cold

    lines = [
        "metric                              budget          measured",
        f"targets                                             {len(signatures)}",
        f"distinct rosters over {EPOCHS} epochs                        {len(rosters)}",
        f"benchmarked epoch                                   {epoch}",
        f"targets re-analyzed                                 {n_inc}"
        f" (copied {n_copied}, recovered {n_recovered})",
        f"cold analysis (best of {ROUNDS})                          {t_cold * 1000.0:.1f} ms",
        f"incremental analysis (best of {ROUNDS})                   {t_incremental * 1000.0:.1f} ms",
        f"incremental / cold                  <= {MAX_RATIO:.2f}         {ratio:.3f}",
        "identical result documents          required        yes",
    ]
    write_exhibit(results_dir, "vp_churn", lines)
    print()
    print("\n".join(lines))

    assert sum(o.n_recovered for o in outcomes) > 0, "history recovery never fired"
    assert ratio <= MAX_RATIO, (
        f"churned incremental cost {ratio:.3f} of cold, budget {MAX_RATIO}"
    )
