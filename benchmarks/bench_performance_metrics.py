"""Anycast performance metrics over the census population.

Complements the census with the metric toolkit of the paper's related work
(Sec. 2.2): proximity [9,10,19,34,43], affinity [9-11,13], availability
[10,32,43].  Expected shapes:

* most clients of a mature deployment reach a near-optimal replica, with a
  heavy detour tail from BGP policy;
* affinity is high on census timescales (the premise behind combining
  censuses measured days apart);
* globally-announced deployments are fully available; regionally-scoped
  tails strand remote clients on the distant primary.
"""

import numpy as np
from conftest import write_exhibit

from repro.census.performance import affinity, availability, proximity


def test_performance_metrics(benchmark, paper_study, results_dir):
    internet = paper_study.internet
    platform = paper_study.platform
    top = [d for d in internet.deployments if d.entry.rank <= 20]
    scoped = [d for d in internet.deployments if d.local_scope_km is not None][:40]

    def run():
        prox = [proximity(d, platform) for d in top]
        aff = [affinity(d, platform, rounds=8, flap_prob=0.02, seed=d.entry.asn) for d in top]
        avail_global = [availability(d, platform, max_distance_km=5000.0) for d in top]
        avail_scoped = [availability(d, platform, max_distance_km=5000.0) for d in scoped]
        return prox, aff, avail_global, avail_scoped

    prox, aff, avail_global, avail_scoped = benchmark.pedantic(run, rounds=1, iterations=1)

    optimal = np.mean([p.optimal_fraction for p in prox])
    median_penalty = np.median([p.median_penalty_km for p in prox])
    mean_affinity = np.mean([a.mean_affinity for a in aff])
    lines = [
        "metric                                   measured",
        f"clients at nearest replica (top-20)      {optimal:.2f}",
        f"median proximity penalty (km)            {median_penalty:.0f}",
        f"mean affinity (8 rounds, 2% flaps)       {mean_affinity:.3f}",
        f"availability <= 5000 km, global deps     {np.mean(avail_global):.2f}",
        f"availability <= 5000 km, scoped tails    {np.mean(avail_scoped):.2f}",
    ]
    write_exhibit(results_dir, "performance_metrics", lines)

    # Geography dominates routing, with a policy tail.
    assert 0.4 <= optimal <= 0.95
    assert median_penalty < 2000
    # BGP stability on census timescales.
    assert mean_affinity > 0.95
    # Scoping depresses availability relative to global announcements.
    assert np.mean(avail_scoped) < np.mean(avail_global)
