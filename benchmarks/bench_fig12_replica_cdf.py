"""Fig. 12 — CDF of geographically distinct replicas per anycast /24.

Paper: individual censuses produce near-identical CDFs; combining censuses
(minimum RTT per VP-target pair) both tightens disks (higher per-/24
counts) and uncovers ~200 more anycast /24s than the average individual
census.
"""

import numpy as np
from conftest import write_exhibit

from repro.census.analysis import analyze_matrix
from repro.census.combine import combine_censuses
from repro.census.report import empirical_cdf


def test_fig12_replica_cdf(benchmark, paper_study, results_dir):
    censuses = paper_study.censuses
    combined_analysis = paper_study.analysis  # combination of all censuses

    def single_census_analyses():
        return [
            analyze_matrix(combine_censuses([c]), city_db=paper_study.city_db)
            for c in censuses[:2]
        ]

    singles = benchmark.pedantic(single_census_analyses, rounds=1, iterations=1)

    combined_counts = np.array(
        [r.replica_count for r in combined_analysis.results.values()]
    )
    lines = ["series                    n_anycast  median  p90"]
    for i, single in enumerate(singles, start=1):
        counts = np.array([r.replica_count for r in single.results.values()])
        lines.append(
            f"census {i} ({censuses[i-1].n_vps} VPs)      {single.n_anycast:9d}  "
            f"{np.median(counts):6.1f}  {np.percentile(counts, 90):4.0f}"
        )
    lines.append(
        f"combination               {combined_analysis.n_anycast:9d}  "
        f"{np.median(combined_counts):6.1f}  {np.percentile(combined_counts, 90):4.0f}"
    )
    gain = combined_analysis.n_anycast - int(np.mean([s.n_anycast for s in singles]))
    lines.append(f"combination gain over avg single census: +{gain} /24s (paper: ~+200)")
    write_exhibit(results_dir, "fig12_replica_cdf", lines)

    # Individual censuses are consistent with each other (curves overlap).
    n_single = [s.n_anycast for s in singles]
    assert max(n_single) - min(n_single) < 0.1 * max(n_single)
    # The combination increases recall.
    assert combined_analysis.n_anycast >= max(n_single)
    assert gain > 0
    # Deployments average O(10) replicas (paper abstract).
    assert 3 <= np.mean(combined_counts) <= 40
