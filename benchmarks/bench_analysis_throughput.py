"""Sec. 3.5 — analysis throughput, reference vs array-native engine.

Paper: the per-target running time of the technique is O(0.1 s) (vs
O(1000 s) for brute force), and after optimization a whole census analyzes
"in under three hours, i.e., about the same timescale of the census
duration, so that in principle we could perform a continuous analysis".
The paper's key optimization is structural — the disk centers are the
fixed vantage-point set, so the expensive geometry can be computed once
and shared across all targets.

This benchmark measures both of our implementations of that idea
side by side on the same matrix:

* **reference** — the per-sample object pipeline (``LatencySample`` /
  ``Disk`` per matrix cell, fresh haversines per target);
* **fast** — the array-native engine (:mod:`repro.census.fastpath`):
  VP-gap matrix computed once, per-target overlap as slice + radii outer
  sum, batched cached classification.

Both engines produce equivalent results (enforced by the equivalence
suite); the gate here is the speedup of the enumeration+geolocation
phase, which must be at least ``REPRO_MIN_ANALYSIS_SPEEDUP`` (default 2x;
the development target is 3x+ at paper scale).
"""

import os

from conftest import TINY_SCALE, write_exhibit

from repro.census.analysis import analyze_matrix
from repro.core.igreedy import IGreedyConfig
from repro.obs import Stopwatch

MIN_SPEEDUP = float(os.environ.get("REPRO_MIN_ANALYSIS_SPEEDUP", "2.0"))


def test_analysis_throughput(benchmark, paper_study, results_dir):
    matrix = paper_study.matrix

    def run_fast():
        return analyze_matrix(
            matrix, city_db=paper_study.city_db, config=IGreedyConfig(engine="fast")
        )

    # Detection phase in isolation: it scans every responding target
    # (scales with the haystack) while enumeration/geolocation only
    # touches the ~constant anycast population.  Both engines share this
    # exact code, so one measurement serves both.
    from repro.core.detection import detection_mask, radius_matrix

    with Stopwatch() as detection_sw:
        vp_dist = matrix.vp_distance_matrix()
        radii = radius_matrix(matrix.rtt_ms)
        detection_mask(vp_dist, radii)
    detection_elapsed = detection_sw.elapsed_s

    with Stopwatch() as reference_sw:
        reference = analyze_matrix(
            matrix,
            city_db=paper_study.city_db,
            config=IGreedyConfig(engine="reference"),
        )
    reference_elapsed = reference_sw.elapsed_s

    with Stopwatch() as fast_sw:
        analysis = benchmark.pedantic(run_fast, rounds=1, iterations=1)
    fast_elapsed = fast_sw.elapsed_s

    assert analysis.n_anycast == reference.n_anycast
    assert list(analysis.results.keys()) == list(reference.results.keys())

    # Enumeration+geolocation = total minus the shared detection phase.
    ref_enum = max(reference_elapsed - detection_elapsed, 1e-9)
    fast_enum = max(fast_elapsed - detection_elapsed, 1e-9)
    speedup = ref_enum / fast_enum

    n_targets = matrix.n_targets
    detection_per_target_ms = detection_elapsed / n_targets * 1000.0
    full_scale_hours = (
        detection_per_target_ms * 6_600_000 / 1000.0 + fast_enum
    ) / 3600.0
    lines = [
        "metric                              paper          measured",
        f"census targets analyzed                            {n_targets}",
        f"anycast /24 fully analyzed                         {analysis.n_anycast}",
        f"detection per target                O(0.1 s)       {detection_per_target_ms:.3f} ms",
        "",
        "enumeration+geolocation phase       reference       fast",
        f"  wall time                         {ref_enum:8.1f} s     {fast_enum:.1f} s",
        f"  per anycast target                {ref_enum / max(analysis.n_anycast, 1) * 1000:8.1f} ms    "
        f"{fast_enum / max(analysis.n_anycast, 1) * 1000:.1f} ms",
        f"  speedup (fast vs reference)                        {speedup:.1f}x",
        "",
        f"fast-engine census wall time                       {fast_elapsed:.1f} s",
        f"extrapolated 6.6M-target run        < 3 h          {full_scale_hours:.2f} h",
    ]
    write_exhibit(results_dir, "analysis_throughput", lines)

    # The shared-geometry engine must clearly beat the per-object path.
    assert speedup >= MIN_SPEEDUP, (
        f"enum+geoloc speedup {speedup:.2f}x below the {MIN_SPEEDUP:.1f}x gate "
        f"(reference {ref_enum:.1f} s, fast {fast_enum:.1f} s)"
    )
    if not TINY_SCALE:
        # Paper-scale bars: faster than the census itself (the paper's
        # continuous-analysis argument) over a realistic anycast count.
        assert full_scale_hours < 3.0
        assert analysis.n_anycast > 1000
