"""Sec. 3.5 — analysis throughput.

Paper: the per-target running time of the technique is O(0.1 s) (vs
O(1000 s) for brute force), and after optimization a whole census analyzes
"in under three hours, i.e., about the same timescale of the census
duration, so that in principle we could perform a continuous analysis".

We measure our vectorized implementation's wall time per census and per
target, and extrapolate to the paper's 6.6M-target census.
"""

from conftest import write_exhibit

from repro.census.analysis import analyze_matrix
from repro.census.combine import combine_censuses
from repro.obs import Stopwatch


def test_analysis_throughput(benchmark, paper_study, results_dir):
    censuses = paper_study.censuses
    matrix = paper_study.matrix

    def run():
        return analyze_matrix(matrix, city_db=paper_study.city_db)

    with Stopwatch() as total_sw:
        analysis = benchmark.pedantic(run, rounds=1, iterations=1)
    elapsed = total_sw.elapsed_s

    # Phase split: detection scans every responding target (scales with
    # the haystack); enumeration/geolocation only touches the ~constant
    # anycast population.  Extrapolation must respect that split.
    from repro.core.detection import detection_mask, radius_matrix

    with Stopwatch() as detection_sw:
        vp_dist = matrix.vp_distance_matrix()
        radii = radius_matrix(matrix.rtt_ms)
        detection_mask(vp_dist, radii)
    detection_elapsed = detection_sw.elapsed_s
    enumeration_elapsed = max(elapsed - detection_elapsed, 0.0)

    n_targets = matrix.n_targets
    detection_per_target_ms = detection_elapsed / n_targets * 1000.0
    full_scale_hours = (
        detection_per_target_ms * 6_600_000 / 1000.0 + enumeration_elapsed
    ) / 3600.0
    lines = [
        "metric                              paper          measured",
        f"census targets analyzed                            {n_targets}",
        f"analysis wall time                                 {elapsed:.1f} s",
        f"detection per target                O(0.1 s)       {detection_per_target_ms:.3f} ms",
        f"enumeration+geolocation (const)                    {enumeration_elapsed:.1f} s",
        f"extrapolated 6.6M-target run        < 3 h          {full_scale_hours:.2f} h",
        f"anycast /24 fully analyzed                         {analysis.n_anycast}",
    ]
    write_exhibit(results_dir, "analysis_throughput", lines)

    # Faster than the census itself (the paper's continuous-analysis bar).
    assert full_scale_hours < 3.0
    assert analysis.n_anycast > 1000
