"""Fig. 9 — bird's-eye view of the top-100 anycast ASes.

The paper ranks the 100 ASes with >= 5 detected replicas by geographical
footprint and annotates each with its IP/24 footprint, open ports, CAIDA
and Alexa ranks, and business category.  Headline observations we verify:

* ~100 ASes pass the >= 5-replica cut;
* 25 ASes have >= 10 replicas distributed around the globe;
* the top of the table contains the expected big fishes (CloudFlare among
  CDNs, root servers among DNS, Hurricane among ISPs, Microsoft/Google
  among cloud);
* geographical footprint and IP/24 footprint are essentially uncorrelated
  (paper: Pearson 0.35).
"""

import numpy as np
from conftest import write_exhibit


def test_fig09_top100_ases(benchmark, paper_study, results_dir):
    paper_study.analysis

    top = benchmark.pedantic(
        paper_study.characterization.top_ases, kwargs={"k": 100}, rounds=1, iterations=1
    )

    lines = [f"{'#':>3s} {'AS':14s} {'cat':10s} {'ip24':>5s} {'replicas':>9s} {'cities':>7s}"]
    for i, fp in enumerate(top[:25], start=1):
        lines.append(
            f"{i:3d} {fp.autonomous_system.whois_label:14s} "
            f"{fp.autonomous_system.category.coarse:10s} {fp.n_ip24:5d} "
            f"{fp.mean_replicas:9.1f} {len(fp.cities):7d}"
        )
    names = [fp.autonomous_system.name for fp in top]
    wide = sum(1 for fp in top if fp.mean_replicas >= 10)
    lines.append("")
    lines.append(f"ASes with >= 5 replicas: {len(top)} (paper: 100)")
    lines.append(f"ASes with >= 10 replicas: {wide} (paper: 25)")
    ip24 = np.array([fp.n_ip24 for fp in top])
    reps = np.array([fp.mean_replicas for fp in top])
    corr = float(np.corrcoef(ip24, reps)[0, 1])
    lines.append(f"Pearson(ip24, replicas): {corr:.2f} (paper: 0.35)")
    write_exhibit(results_dir, "fig09_top100", lines)

    assert 80 <= len(top) <= 110
    assert 15 <= wide <= 60
    # Big fishes visible near the top (top-30 of the ranking).
    head = set(names[:30])
    for expected in ("CLOUDFLARENET,US", "MICROSOFT,US", "ISC-AS,US", "HURRICANE,US"):
        assert expected in set(names), expected
    assert head & {"CLOUDFLARENET,US", "MICROSOFT,US", "ISC-AS,US"}
    # Footprints decorrelated, as in the paper.
    assert abs(corr) < 0.6
