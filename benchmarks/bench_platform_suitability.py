"""Sec. 3.2 — why PlanetLab (and not Atlas, Ark, or a Zmap box).

The paper's platform discussion, made executable:

* **RIPE Atlas**: a full census (6.6M targets x hundreds of probes) blows
  any credit budget; refining the detected O(10^3) prefixes fits easily;
* **Archipelago**: <= 3 monitors per /24, random in-prefix IPs with ~6%
  hit rate — detection needs at least two same-target disks, so recall
  collapses to zero on Ark-style data;
* **PlanetLab**: 300 programmable nodes at O(10^3-10^4) pps complete a
  census in hours.
"""

from conftest import write_exhibit

from repro.census.analysis import analyze_matrix
from repro.census.combine import RttMatrix
from repro.geo.cities import default_city_db
from repro.internet.topology import InternetConfig, SyntheticInternet
from repro.measurement.ark import ark_round
from repro.measurement.atlas import campaign_cost, census_feasible
from repro.measurement.platform import planetlab_platform

import numpy as np


def test_platform_suitability(benchmark, results_dir):
    db = default_city_db()
    internet = SyntheticInternet(
        InternetConfig(seed=9, n_unicast_slash24=1000, tail_deployments=40),
        city_db=db,
    )
    platform = planetlab_platform(count=80, seed=41, city_db=db)

    def run():
        # Zmap design point: one high-rate vantage point — a single disk
        # per target can never witness a speed-of-light violation.
        from repro.census.combine import matrix_from_census
        from repro.measurement.campaign import CensusCampaign

        zmap_box = planetlab_platform(count=1, seed=50, city_db=db)
        zmap_campaign = CensusCampaign(internet, zmap_box, seed=51, rate_pps=1e6)
        zmap_census = zmap_campaign.run_census(availability=1.0)
        zmap_analysis = analyze_matrix(matrix_from_census(zmap_census), city_db=db)
        assert zmap_analysis.n_anycast == 0

        # Atlas feasibility numbers.
        full = campaign_cost(6_600_000, 300)
        followup = campaign_cost(1_700, 300)
        # Ark-style dataset and its detection recall.
        dataset = ark_round(internet, platform, seed=5)
        prefixes = np.unique(dataset.records.prefix)
        rtt = np.full((len(prefixes), len(platform)), np.nan, dtype=np.float32)
        rows = np.searchsorted(prefixes, dataset.records.prefix)
        rtt[rows, dataset.records.vp_index] = dataset.records.rtt_ms
        matrix = RttMatrix(
            prefixes=prefixes,
            vp_names=[vp.name for vp in platform.vantage_points],
            vp_locations=[vp.location for vp in platform.vantage_points],
            rtt_ms=rtt,
            sample_count=(~np.isnan(rtt)).astype(np.uint8),
        )
        ark_analysis = analyze_matrix(matrix, city_db=db)
        return full, followup, dataset, ark_analysis

    full, followup, dataset, ark_analysis = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "platform        verdict (paper)          measured",
        f"RIPE Atlas      full census infeasible   {full.days_at_daily_cap:.0f} days at the credit cap",
        f"RIPE Atlas      follow-up feasible       {followup.days_at_daily_cap * 24:.1f} hours for detected /24s",
        f"Archipelago     <= 3 monitors per /24    {dataset.monitors_per_target:.1f} monitors/target/round",
        f"Archipelago     hit rate ~6%             {len(set(dataset.records.prefix.tolist())) / internet.n_targets:.2f}",
        f"Archipelago     census impossible        {ark_analysis.n_anycast} anycast /24s detected",
        f"Zmap (1 box)    cannot detect anycast    0 anycast /24s (1 disk per target)",
        f"PlanetLab       census in < 5 hours      (see fig08_completion)",
    ]
    write_exhibit(results_dir, "platform_suitability", lines)

    assert not census_feasible(6_600_000, 300, deadline_days=7.0)
    assert census_feasible(1_700, 300, deadline_days=1.0)
    assert ark_analysis.n_anycast == 0
    assert dataset.monitors_per_target <= 3.0
