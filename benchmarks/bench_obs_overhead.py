"""Observability overhead — tracing must be effectively free.

The obs layer exists so every paper exhibit can ship with a run manifest;
that is only viable if instrumentation never distorts the measurement it
documents.  We run the same end-to-end small study with observability off
and on (interleaved, best-of-N to shed scheduler noise) and require the
traced run to stay within 5% of the plain run (plus a small absolute
slack so sub-second runs don't fail on timer jitter).

The traced arm carries the *whole* telemetry PR: tracer + metrics +
structured event log during the run, then the Prometheus and Chrome
trace-event exporters over the results — all inside the same budget.
"""

import json

from conftest import write_exhibit

from repro.obs import Stopwatch, to_chrome_trace, to_prometheus
from repro.workflow import small_study

ROUNDS = 3
MAX_RELATIVE_OVERHEAD = 0.05
ABSOLUTE_SLACK_S = 0.05


def _timed_run(obs: bool) -> float:
    study = small_study(seed=2015, trace=obs, metrics=obs, events=obs)
    with Stopwatch() as sw:
        study.characterization  # force the full pipeline
        if obs:
            # Telemetry post-processing the service does per epoch:
            # serialize the event log and export both interchange formats.
            study.events.to_lines()
            to_prometheus(study.metrics.snapshot())
            json.dumps(to_chrome_trace(study.tracer.to_dicts()))
    return sw.elapsed_s


def test_obs_overhead(results_dir):
    # Warm up imports / allocator before timing anything.
    _timed_run(obs=False)

    plain, traced = [], []
    for _ in range(ROUNDS):  # interleaved so drift hits both arms equally
        plain.append(_timed_run(obs=False))
        traced.append(_timed_run(obs=True))

    t_plain, t_traced = min(plain), min(traced)
    overhead = t_traced - t_plain
    relative = overhead / t_plain

    probe = small_study(seed=2015, trace=True, metrics=True, events=True)
    probe.characterization
    span_count = probe.tracer.n_spans
    event_count = probe.events.snapshot()["n_events"]

    lines = [
        "metric                              budget         measured",
        f"plain pipeline (best of {ROUNDS})                          {t_plain * 1000.0:.1f} ms",
        f"traced pipeline (best of {ROUNDS})                         {t_traced * 1000.0:.1f} ms",
        f"absolute overhead                                  {overhead * 1000.0:+.1f} ms",
        f"relative overhead                   < 5%           {relative * 100.0:+.2f}%",
        f"spans recorded per run                             {span_count}",
        f"events recorded per run                            {event_count}",
    ]
    write_exhibit(results_dir, "obs_overhead", lines)

    assert overhead <= MAX_RELATIVE_OVERHEAD * t_plain + ABSOLUTE_SLACK_S, (
        f"observability overhead {overhead * 1000.0:.1f} ms "
        f"({relative * 100.0:.1f}%) exceeds the 5% budget"
    )
