"""Observability overhead — tracing must be effectively free.

The obs layer exists so every paper exhibit can ship with a run manifest;
that is only viable if instrumentation never distorts the measurement it
documents.  We run the same end-to-end small study with observability off
and on (interleaved, best-of-N to shed scheduler noise) and require the
traced run to stay within 5% of the plain run (plus a small absolute
slack so sub-second runs don't fail on timer jitter).
"""

from conftest import write_exhibit

from repro.obs import Stopwatch
from repro.workflow import small_study

ROUNDS = 3
MAX_RELATIVE_OVERHEAD = 0.05
ABSOLUTE_SLACK_S = 0.05


def _timed_run(trace: bool) -> float:
    study = small_study(seed=2015, trace=trace, metrics=trace)
    with Stopwatch() as sw:
        study.characterization  # force the full pipeline
    return sw.elapsed_s


def test_obs_overhead(results_dir):
    # Warm up imports / allocator before timing anything.
    _timed_run(trace=False)

    plain, traced = [], []
    for _ in range(ROUNDS):  # interleaved so drift hits both arms equally
        plain.append(_timed_run(trace=False))
        traced.append(_timed_run(trace=True))

    t_plain, t_traced = min(plain), min(traced)
    overhead = t_traced - t_plain
    relative = overhead / t_plain

    n_spans = small_study(seed=2015, trace=True, metrics=True)
    n_spans.characterization
    span_count = n_spans.tracer.n_spans

    lines = [
        "metric                              budget         measured",
        f"plain pipeline (best of {ROUNDS})                          {t_plain * 1000.0:.1f} ms",
        f"traced pipeline (best of {ROUNDS})                         {t_traced * 1000.0:.1f} ms",
        f"absolute overhead                                  {overhead * 1000.0:+.1f} ms",
        f"relative overhead                   < 5%           {relative * 100.0:+.2f}%",
        f"spans recorded per run                             {span_count}",
    ]
    write_exhibit(results_dir, "obs_overhead", lines)

    assert overhead <= MAX_RELATIVE_OVERHEAD * t_plain + ABSOLUTE_SLACK_S, (
        f"observability overhead {overhead * 1000.0:.1f} ms "
        f"({relative * 100.0:.1f}%) exceeds the 5% budget"
    )
