"""Fig. 4 — anycast census at a glance: the magnitude funnel.

Paper (per census, per VP): 6.6M hitlist targets -> "less than half send a
reply" -> O(10^5) ICMP errors feeding a greylist -> O(10^6) targets with
valid replies -> O(10^3) anycast /24s (~0.1 permille of the IPv4 space).

Our unicast haystack is scaled down, so the funnel is compared in
*ratios*: reply ratio below one half (plus the anycast minority), error
ratio in the low percent, anycast share of replying targets well under 1%
of a full-scale census... the anycast share here is inflated by design
(the haystack is 8k, not 10.6M) and reported for transparency.
"""

from conftest import write_exhibit

from repro.census.analysis import census_funnel


def test_fig04_census_funnel(benchmark, paper_study, results_dir):
    paper_study.analysis  # force pipeline

    funnels = benchmark.pedantic(paper_study.funnels, rounds=1, iterations=1)

    lines = ["stage                              census1  (ratios vs hitlist)"]
    funnel = funnels[0]
    for stage, count in funnel.rows():
        lines.append(f"{stage:32s} {count:10d}  ({count / funnel.targets:.4f})")
    lines.append("")
    lines.append(f"paper: reply ratio < 0.5 of 6.6M; errors O(1e5); anycast O(1e3)")
    uni_targets = paper_study.internet.n_targets - paper_study.internet.n_anycast_slash24
    lines.append(f"ours:  unicast reply ratio = "
                 f"{(funnel.valid_targets - funnel.anycast_found) / uni_targets:.3f}")
    write_exhibit(results_dir, "fig04_funnel", lines)

    for funnel in funnels:
        # Less than half of the unicast haystack replies.
        unicast_replies = funnel.valid_targets - funnel.anycast_found
        assert unicast_replies / uni_targets < 0.55
        # Anycast found is O(10^3), as in the paper (absolute scale kept).
        assert 1000 <= funnel.anycast_found <= 2000
        # Errors are a small fraction of probes, greylist smaller still.
        assert funnel.icmp_errors < 0.1 * funnel.echo_replies
    # Greylist shrinks census over census (blacklist absorbs error hosts).
    assert funnels[-1].greylisted <= funnels[0].greylisted
