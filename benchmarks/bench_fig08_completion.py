"""Fig. 8 — CDF of per-vantage-point census completion time.

Paper: probing 6.6M targets at ~1,000 pps takes just under two hours of
pure sending time; ~40% of PlanetLab nodes complete within that timeframe
and 95% finish in under 5 hours, the straggler tail being due to load on
the shared PlanetLab hosts.

The simulated per-VP durations follow nominal-time x host-load; we rescale
the simulated census to the paper's 6.6M-target size to compare the CDF
points directly.
"""

import numpy as np
from conftest import write_exhibit

from repro.census.report import quantile_at

PAPER_TARGETS = 6_600_000
PAPER_RATE_PPS = 1_000.0


def test_fig08_completion_cdf(benchmark, paper_study, results_dir):
    censuses = paper_study.censuses

    def rescaled_durations():
        # host_load is the census-invariant part; rescale nominal time to
        # the paper's target count.
        nominal_hours = PAPER_TARGETS / PAPER_RATE_PPS / 3600.0
        out = []
        for census in censuses:
            probes = census.records  # durations already include load
            scale = nominal_hours / (
                census.vp_duration_hours / np.array(
                    [vp.host_load for vp in census.platform.vantage_points]
                )
            ).mean()
            out.append(census.vp_duration_hours * scale)
        return np.concatenate(out)

    durations = benchmark.pedantic(rescaled_durations, rounds=1, iterations=1)

    within_2h = quantile_at(durations, 2.0)
    within_5h = quantile_at(durations, 5.0)
    lines = [
        "point                paper   measured",
        f"P(completion <= 2h)   0.40   {within_2h:.2f}",
        f"P(completion <= 5h)   0.95   {within_5h:.2f}",
        f"median (h)                   {np.median(durations):.2f}",
        f"max (h)                      {durations.max():.2f}",
    ]
    write_exhibit(results_dir, "fig08_completion", lines)

    assert 0.25 <= within_2h <= 0.60
    assert within_5h >= 0.90
    assert durations.min() >= PAPER_TARGETS / PAPER_RATE_PPS / 3600.0 - 1e-6
