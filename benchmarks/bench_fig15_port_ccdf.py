"""Fig. 15 — complementary CDF of open TCP ports per AS.

Paper: roughly half of the top-100 ASes expose at least one open TCP
port... of those, ~10% expose >= 5 ports; the tail is extreme — Incapsula
with 313 open ports and OVH with 10,148 (seedbox ecosystem).  HTTP and
HTTPS are used by over 20% of ASes.
"""

import numpy as np
from conftest import write_exhibit

from repro.census.report import empirical_ccdf


def test_fig15_open_port_ccdf(benchmark, paper_study, results_dir):
    report = paper_study.portscan

    per_as = benchmark.pedantic(report.open_ports_per_as, rounds=1, iterations=1)

    counts = np.array(sorted(per_as.values()))
    x, p = empirical_ccdf(counts)
    at_least_5 = float((counts >= 5).mean())
    lines = [
        "metric                         paper    measured",
        f"responding ASes                 ~81     {len(counts)}",
        f"share with >= 5 open ports     ~0.10    {at_least_5:.2f}",
        f"max (OVH)                     10148     {counts.max()}",
        f"2nd (Incapsula)                 313     {counts[-2] if len(counts) > 1 else 0}",
    ]
    http_ases = sum(1 for ports in report.ports_by_as().values() if 80 in ports)
    https_ases = sum(1 for ports in report.ports_by_as().values() if 443 in ports)
    lines.append(f"ASes with HTTP (80)            >20%     {http_ases / len(counts):.2f}")
    lines.append(f"ASes with HTTPS (443)          >20%     {https_ases / len(counts):.2f}")
    write_exhibit(results_dir, "fig15_port_ccdf", lines)

    # CCDF is a proper survival curve.
    assert p[0] == 1.0
    assert (np.diff(p) <= 1e-12).all()
    # The two heavy tails of the paper.
    assert counts.max() > 9_000
    assert 200 <= counts[-2] <= 400
    # >= 5 open ports: a small share of ASes.
    assert 0.05 <= at_least_5 <= 0.35
    # HTTP/HTTPS adoption above the paper's 20% floor.
    assert http_ases / len(counts) > 0.2
    assert https_ases / len(counts) > 0.2
