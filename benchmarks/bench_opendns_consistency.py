"""Sec. 3.4 — OpenDNS consistency check and the Philadelphia anecdote.

Paper: OpenDNS publishes 24 datacenter locations; applying the analysis
to latency measurements gathered with any of the five probe protocols
yields 15-17 instances, all geolocated to the correct city except one —
the Ashburn, VA replica is classified as Philadelphia (33x more populous,
260 km / 2.6 ms away), a deliberate consequence of the population prior.
"""

from conftest import write_exhibit

from repro.core.geolocation import classify_disk
from repro.geo.cities import default_city_db
from repro.geo.disks import Disk


def test_opendns_consistency(benchmark, paper_study, results_dir):
    paper_study.analysis
    dep = paper_study.deployment("OPENDNS,US")
    truth = {f"{c.name},{c.country}" for c in dep.site_cities}

    def per_prefix_instances():
        out = {}
        for prefix in dep.prefixes:
            result = paper_study.analysis.results.get(prefix)
            if result is not None:
                out[prefix] = set(result.city_names)
        return out

    instances = benchmark.pedantic(per_prefix_instances, rounds=1, iterations=1)

    counts = sorted(len(c) for c in instances.values())
    correct = {
        prefix: len(cities & truth) / len(cities)
        for prefix, cities in instances.items() if cities
    }
    lines = [
        "metric                                paper   measured",
        f"published locations                      24   {dep.entry.n_sites}",
        f"instances found per protocol/prefix   15-17   {counts}",
        f"city-level accuracy                   ~0.94   "
        f"{sum(correct.values()) / len(correct):.2f}",
    ]

    # The Philadelphia anecdote, reproduced in isolation: a small disk
    # around the Ashburn datacenter classifies to Philadelphia.
    db = default_city_db()
    ashburn = db.get("Ashburn", "US")
    disk = Disk(ashburn.location, 260.0)  # 2.6 ms of propagation delay
    replica = classify_disk(disk, db)
    lines.append(f"Ashburn classified as              Philadelphia   {replica.city.name}")
    write_exhibit(results_dir, "opendns_consistency", lines)

    assert replica.city.name == "Philadelphia"
    # Consistency: every analyzed prefix finds a similar instance count,
    # bounded by the published-location ground truth.
    assert instances
    for cities in instances.values():
        assert 5 <= len(cities) <= dep.entry.n_sites
    assert max(counts) - min(counts) <= 4
    # Most classified cities are correct (the paper's small-case accuracy
    # is higher; ours pays for BGP-policy catchment noise).
    assert sum(correct.values()) / len(correct) > 0.45
