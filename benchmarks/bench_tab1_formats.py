"""Tab. 1 — textual vs binary census formats.

Paper: the textual format weighed 270 MB/node (79 GB/census) and took
>3 days to analyze; the stripped-down binary format (timestamp, delay,
ICMP flag) weighs ~21 MB/node (6 GB/census) and analyzes in ~3 hours.

We serialize one VP's records both ways, compare sizes and parse
throughput, and extrapolate per-node sizes to the paper's 6.6M targets.
"""

import io

from conftest import write_exhibit

from repro.measurement.recordio import CensusRecords

PAPER_TARGETS = 6_600_000


def test_tab1_binary_vs_textual(benchmark, paper_study, results_dir):
    census = paper_study.censuses[0]
    # One VP's slice of the census.
    vp0 = census.records.select(census.records.vp_index == 0)
    n = len(vp0)

    binary_buf = io.BytesIO()
    vp0.write_binary(binary_buf)
    csv_buf = io.StringIO()
    vp0.write_csv(csv_buf)
    binary_size = binary_buf.tell()
    csv_size = len(csv_buf.getvalue())

    def parse_both():
        binary_buf.seek(0)
        a = CensusRecords.read_binary(binary_buf)
        csv_buf.seek(0)
        b = CensusRecords.read_csv(csv_buf)
        return a, b

    from repro.obs import Stopwatch

    with Stopwatch() as binary_sw:
        binary_buf.seek(0)
        CensusRecords.read_binary(binary_buf)
    t_binary = binary_sw.elapsed_s
    with Stopwatch() as csv_sw:
        csv_buf.seek(0)
        CensusRecords.read_csv(csv_buf)
    t_csv = csv_sw.elapsed_s

    benchmark.pedantic(parse_both, rounds=1, iterations=1)

    # Extrapolate to a paper-size census (records scale with reply count).
    scale = PAPER_TARGETS / paper_study.internet.n_targets
    lines = [
        "metric                         paper        measured",
        f"records per node                            {n}",
        f"binary bytes/record                         {binary_size / n:.1f}",
        f"textual bytes/record                        {csv_size / n:.1f}",
        f"textual/binary size ratio      12.9x        {csv_size / binary_size:.1f}x",
        f"binary per node @6.6M targets  21 MB        {binary_size * scale / 1e6:.0f} MB",
        f"textual per node @6.6M targets 270 MB       {csv_size * scale / 1e6:.0f} MB",
        f"textual/binary parse-time ratio >24x        {t_csv / max(t_binary, 1e-9):.0f}x",
    ]
    write_exhibit(results_dir, "tab1_formats", lines)

    assert csv_size > 2.5 * binary_size
    assert t_csv > 3.0 * t_binary
    # Binary per-node extrapolation lands in the paper's order of magnitude.
    assert 5e6 < binary_size * scale < 1.5e8
