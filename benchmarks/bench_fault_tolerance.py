"""Fault tolerance — detection recall under injected node faults.

The paper's censuses survived a shared-testbed reality: of ~308
PlanetLab hosts only 261/255/269/240 were usable per census, and Fig. 8
shows a long straggler tail.  This exhibit stresses the supervised
campaign the same way: crash+hang+corruption injected at increasing
per-VP rates, with the supervisor retrying, salvaging partial batches
and dropping corrupt ones.  Anycast detection recall must stay within
tolerance of the fault-free run — redundancy across ~80 VPs means losing
or truncating a few scans barely dents the speed-of-light evidence.
"""

from conftest import write_exhibit

from repro.census.analysis import analyze_matrix
from repro.census.combine import combine_censuses
from repro.internet.topology import InternetConfig, SyntheticInternet
from repro.measurement.campaign import CensusCampaign
from repro.measurement.faults import FaultPlan, RetryPolicy
from repro.measurement.platform import planetlab_platform

FAULT_RATES = [0.0, 0.1, 0.2, 0.3]

#: Recall at 20% faults may trail the fault-free recall by at most this.
RECALL_TOLERANCE = 0.05


def _run_study(internet, platform, rate: float):
    nominal_hours = internet.n_targets / 1000.0 / 3600.0
    campaign = CensusCampaign(
        internet,
        platform,
        seed=500,
        fault_plan=FaultPlan.uniform(rate, seed=13, flap_prob=rate / 6.0),
        retry=RetryPolicy(max_attempts=3, timeout_hours=nominal_hours * 20.0),
        min_vp_quorum=10,
    )
    censuses = campaign.run(n_censuses=2, availability=0.85)
    analysis = analyze_matrix(combine_censuses(censuses))
    return censuses, analysis


def _recall(analysis, truth: set) -> float:
    detected = set(analysis.anycast_prefixes)
    return len(detected & truth) / len(truth)


def test_fault_tolerance_recall(benchmark, results_dir):
    internet = SyntheticInternet(
        InternetConfig(seed=2015, n_unicast_slash24=1500, tail_deployments=40)
    )
    platform = planetlab_platform(count=80, seed=41)
    truth = {int(p) for dep in internet.deployments for p in dep.prefixes}

    def sweep():
        out = {}
        for rate in FAULT_RATES:
            censuses, analysis = _run_study(internet, platform, rate)
            out[rate] = (censuses, analysis)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        f"{'fault rate':>10s} {'recall':>7s} {'faults':>7s} {'retries':>8s} "
        f"{'salvaged':>9s} {'dropped':>8s} {'failed VPs':>11s} {'degraded':>9s}"
    ]
    recalls = {}
    for rate in FAULT_RATES:
        censuses, analysis = results[rate]
        recalls[rate] = _recall(analysis, truth)
        faults = sum(c.health.n_faults for c in censuses)
        retries = sum(c.health.retries for c in censuses)
        salvaged = sum(c.health.records_salvaged for c in censuses)
        dropped = sum(c.health.records_dropped_corrupt for c in censuses)
        failed = sum(c.health.n_vps_failed for c in censuses)
        degraded = any(c.health.degraded for c in censuses)
        lines.append(
            f"{rate:10.2f} {recalls[rate]:7.3f} {faults:7d} {retries:8d} "
            f"{salvaged:9d} {dropped:8d} {failed:11d} {str(degraded):>9s}"
        )
    write_exhibit(results_dir, "fault_tolerance", lines)

    # Fault-free run must be clean; faulted runs must see faults.
    clean_censuses, _ = results[0.0]
    assert all(not c.health.degraded for c in clean_censuses)
    faulted_censuses, _ = results[0.2]
    assert sum(c.health.n_faults for c in faulted_censuses) > 0
    assert any(c.health.degraded for c in faulted_censuses)

    # Detection recall survives 20% per-VP faults within tolerance.
    assert recalls[0.2] >= recalls[0.0] - RECALL_TOLERANCE, recalls
