"""Incremental recompute — a low-churn day must be nearly free.

The longitudinal service's value proposition: on a quiet day (~1-2% of
targets changed), re-analyzing the census must cost a small fraction of
a cold run, because every unchanged target's archived result is copied
verbatim instead of re-entering the iGreedy engine.

This benchmark runs day 0 cold, measures day 1's census once, then
times the *analysis stage* both ways on the identical matrix:

* ``cold``        — every target re-analyzed from scratch;
* ``incremental`` — only signature-changed targets re-analyzed.

Gates:

* the two analysis paths must produce *identical* result documents
  (the safety half of the contract, asserted on every benchmark run);
* incremental time <= ``REPRO_MAX_INCREMENTAL_RATIO`` (default 0.15)
  of cold time (the cheapness half).

``REPRO_BENCH_TINY=1`` shrinks the world to CI scale; the relative gate
is unchanged.
"""

from __future__ import annotations

import os

from conftest import TINY_SCALE, write_exhibit

from repro.census.combine import matrix_from_census
from repro.census.longitudinal import EvolutionConfig
from repro.internet.catalog import full_catalog
from repro.measurement.campaign import CensusCampaign
from repro.obs import Stopwatch
from repro.service import CensusService, ServiceConfig, plan_delta, target_signatures
from repro.service.delta import REASON_DELTA

ROUNDS = 3
MAX_RATIO = float(os.environ.get("REPRO_MAX_INCREMENTAL_RATIO", "0.15"))

#: Gentle day-over-day drift: a percent or two of targets move.
GENTLE = EvolutionConfig(
    growth_prob=0.02, max_new_sites=1, shrink_prob=0.01, new_adopters=1
)


def build_service(tmp_path) -> CensusService:
    n_entries = 12 if TINY_SCALE else 60
    return CensusService(
        ServiceConfig(
            archive_root=str(tmp_path / "archive"),
            n_unicast=120 if TINY_SCALE else 400,
            tail_deployments=0,
            base_catalog=full_catalog(tail_count=40, seed=2015)[:n_entries],
            evolution=GENTLE,
            n_vps=20 if TINY_SCALE else 40,
        )
    )


def test_incremental_census_ratio(tmp_path, results_dir):
    service = build_service(tmp_path)
    cfg = service.config

    with Stopwatch() as sw_day0:
        service.run_epoch(0)

    # Day 1's measurement, once; both analysis arms share the matrix.
    internet = service.internet_for(1)
    campaign = CensusCampaign(
        internet,
        service.platform,
        seed=cfg.campaign_seed,
        degraded_fraction=cfg.degraded_fraction,
        noise=cfg.noise,
    )
    campaign.run_precensus()
    with Stopwatch() as sw_measure:
        census = campaign.run_census(availability=cfg.availability)
    matrix = matrix_from_census(census)

    signatures = target_signatures(matrix)
    baseline_doc = service.archive.read_results(0)
    baseline_signatures = {
        int(prefix): entry["signature"]
        for prefix, entry in baseline_doc["targets"].items()
    }
    plan_incremental = plan_delta(
        signatures, baseline_signatures, baseline_epoch=0, churn_threshold=1.0
    )
    plan_cold = plan_delta(signatures, None)
    assert plan_incremental.reason == REASON_DELTA

    cold_times, incremental_times = [], []
    for _ in range(ROUNDS):  # interleaved so drift hits both arms equally
        with Stopwatch() as sw:
            cold_doc, n_cold, _, _ = service._analyze(
                matrix, internet, signatures, plan_cold, None, 1
            )
        cold_times.append(sw.elapsed_s)
        with Stopwatch() as sw:
            incremental_doc, n_inc, n_copied, _ = service._analyze(
                matrix, internet, signatures, plan_incremental, baseline_doc, 1
            )
        incremental_times.append(sw.elapsed_s)

    # Safety: the cheap path must be *identical*, not merely close.
    assert incremental_doc == cold_doc, "incremental analysis diverged from cold"

    t_cold, t_incremental = min(cold_times), min(incremental_times)
    ratio = t_incremental / t_cold
    churn = plan_incremental.churn_fraction

    lines = [
        "metric                              budget          measured",
        f"targets                                             {len(signatures)}",
        f"day-over-day churn                  ~1-2%           {churn * 100.0:.1f}%",
        f"targets re-analyzed                                 {n_inc} (copied {n_copied})",
        f"cold analysis (best of {ROUNDS})                          {t_cold * 1000.0:.1f} ms",
        f"incremental analysis (best of {ROUNDS})                   {t_incremental * 1000.0:.1f} ms",
        f"incremental / cold                  <= {MAX_RATIO:.2f}         {ratio:.3f}",
        f"day-0 end to end                                    {sw_day0.elapsed_s * 1000.0:.0f} ms",
        f"day-1 measurement (not gated)                       {sw_measure.elapsed_s * 1000.0:.0f} ms",
        "identical result documents          required        yes",
    ]
    write_exhibit(results_dir, "incremental_census", lines)
    print()
    print("\n".join(lines))

    assert churn < 0.10, f"evolution drifted too hard for the gate: {churn:.3f}"
    assert ratio <= MAX_RATIO, (
        f"incremental analysis cost {ratio:.3f} of cold, budget {MAX_RATIO}"
    )
