"""Sec. 5 — cross-platform refinement of detected deployments.

Paper: "an intriguing direction is to combine both platforms, e.g., by
refining via RIPE the geolocation of anycast /24 detected via PL", which
would "lead to a better characterization of large deployments (increase
the recall), as well as possibly assist in confirming/discarding
suspicious deployments (those for which we detected 2 replicas from PL)".

The benchmark detects from a PlanetLab-like platform, refines with a
RIPE-like one restricted to the detected /24s, and reports recall gains.
"""

import numpy as np
from conftest import write_exhibit

from repro.census.analysis import analyze_matrix
from repro.census.combine import matrix_from_census
from repro.census.refine import refine_detected
from repro.geo.cities import default_city_db
from repro.internet.topology import InternetConfig, SyntheticInternet
from repro.measurement.campaign import CensusCampaign
from repro.measurement.platform import planetlab_platform, ripe_platform


def test_cross_platform_refinement(benchmark, results_dir):
    db = default_city_db()
    internet = SyntheticInternet(
        InternetConfig(seed=21, n_unicast_slash24=800, tail_deployments=60),
        city_db=db,
    )
    pl = planetlab_platform(count=150, seed=41, city_db=db)
    ripe = ripe_platform(count=400, seed=43, city_db=db)

    campaign = CensusCampaign(internet, pl, seed=11)
    base_matrix = matrix_from_census(campaign.run_census(availability=1.0))
    base = analyze_matrix(base_matrix, city_db=db)

    report = benchmark.pedantic(
        refine_detected,
        args=(base, base_matrix, internet, ripe),
        kwargs={"city_db": db},
        rounds=1,
        iterations=1,
    )

    gains = np.array([r.replicas_gained for r in report.refined.values()])
    suspicious = [r for r in report.refined.values() if r.was_suspicious]
    lines = [
        f"prefixes refined:                 {report.n_prefixes}",
        f"total replica gain:               +{report.total_gain}",
        f"prefixes improved:                {len(report.improved)} "
        f"({len(report.improved) / report.n_prefixes:.0%})",
        f"mean gain where improved:         "
        f"{gains[gains > 0].mean():.1f}" if (gains > 0).any() else "n/a",
        f"suspicious (<=2 replicas from PL): {len(suspicious)}",
        f"  confirmed by RIPE:              {len(report.suspicious_confirmed())}",
        f"  discarded:                      {len(report.suspicious_discarded())}",
    ]
    write_exhibit(results_dir, "refinement", lines)

    # The second platform increases recall on a meaningful share of /24s.
    assert report.total_gain > 0
    assert len(report.improved) / report.n_prefixes > 0.3
    # No genuine detection is lost.
    assert not report.suspicious_discarded() or (
        len(report.suspicious_discarded()) < 0.2 * max(len(suspicious), 1)
    )
    # Conservativeness survives refinement.
    for prefix, refinement in report.refined.items():
        dep = internet.deployment_of(prefix)
        assert refinement.after.replica_count <= dep.entry.n_sites
