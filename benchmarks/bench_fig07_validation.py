"""Fig. 7 — validation against CloudFlare and EdgeCast HTTP ground truth.

Paper: city-level agreement of 77% for CloudFlare and 65% for EdgeCast
(the paper labels this "TPR", though the quantity — matched fraction of
the *predicted* cities — is precision); median geolocation error on
misclassifications of 434 km and 287 km respectively; GT/PAI high for
CloudFlare, lower for EdgeCast.
"""

from conftest import write_exhibit

PAPER = {
    "CLOUDFLARENET,US": {"precision": 0.77, "median_error_km": 434.0},
    "EDGECAST,US": {"precision": 0.65, "median_error_km": 287.0},
}


def test_fig07_ground_truth_validation(benchmark, paper_study, results_dir):
    paper_study.analysis  # force pipeline outside the timed region

    def run():
        return {name: paper_study.validate(name) for name in PAPER}

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'AS':18s} {'paper TPR':>9s} {'our TPR':>8s} {'paper err':>9s} "
             f"{'our err':>8s} {'GT/PAI':>7s}"]
    for name, paper in PAPER.items():
        report = reports[name]
        lines.append(
            f"{name:18s} {paper['precision']:9.2f} {report.precision_mean:8.2f} "
            f"{paper['median_error_km']:9.0f} {report.median_error_km:8.0f} "
            f"{report.gt_pai:7.2f}"
        )
    write_exhibit(results_dir, "fig07_validation", lines)

    for name, paper in PAPER.items():
        report = reports[name]
        # Precision in the paper's band: clearly better than chance, not
        # perfect.
        assert 0.5 <= report.precision_mean <= 0.98, name
        assert report.precision_mean >= paper["precision"] - 0.25, name
        # Median error has the paper's magnitude: hundreds of km, not
        # tens (same metro) nor thousands (wrong continent).
        if report.all_errors_km:
            assert 50 <= report.median_error_km <= 1200, name
        # The platform sees a meaningful share of the advertised footprint.
        assert report.gt_pai > 0.4, name
